"""Tests for the cross-iteration geometry cache (`repro.gaussians.geom_cache`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_sequence
from repro.gaussians import (
    GaussianCloud,
    GeomCacheConfig,
    GeometryCache,
    ensure_flat_arena,
    rasterize,
    rasterize_batch,
)
from repro.slam import Frame, MappingConfig, StreamingMapper
from repro.testing.scenarios import DEFAULT_LIBRARY

EXACT = GeomCacheConfig(tolerance_px=0.0, refine_margin=0.0, termination_margin=0.0)


def _spec(name: str = "dense_random"):
    return DEFAULT_LIBRARY.get(name).build()


def _deep_stack_spec(n: int = 64, opacity: float = 0.99):
    """A deep stack of near-opaque full-frame splats: early termination bites.

    Every pixel's transmittance collapses within a few fragments while the
    per-tile lists hold ``n``, so termination-depth truncation has real work.
    """
    from repro.gaussians import Camera, SE3
    from repro.testing.scenarios import SceneSpec

    points = np.zeros((n, 3))
    points[:, 2] = np.linspace(-0.3, 0.5, n)
    rng = np.random.default_rng(7)
    colors = rng.uniform(0.1, 0.9, size=(n, 3))
    # Wide splats: even the image corners sit within ~1.5 sigma, so every
    # pixel's transmittance collapses well before the list ends.
    cloud = GaussianCloud.from_points(points, colors, scale=1.0, opacity=opacity)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=SE3.look_at(
            np.array([0.0, 0.0, -2.0]), np.array([0.0, 0.0, 0.0]), up=(0, 1, 0)
        ),
        background=np.array([0.1, 0.1, 0.1]),
    )


def _render(cloud, spec, cache=None):
    return rasterize(
        cloud,
        spec.camera,
        spec.pose_cw,
        background=spec.background,
        tile_size=spec.tile_size,
        subtile_size=spec.subtile_size,
        backend="flat",
        cache=cache,
    )


def _assert_bitwise_equal(a, b):
    for name in ("image", "depth", "alpha", "fragments_per_pixel"):
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name))


class TestCloudEpochs:
    def test_parameter_step_bumps_epoch_and_accumulates_movement(self):
        spec = _spec()
        cloud = spec.cloud.copy()
        epoch = cloud.epoch
        structure = cloud.structure_epoch
        step = np.full((len(cloud), 3), 0.25)
        cloud.apply_parameter_step(d_positions=step)
        assert cloud.epoch == epoch + 1
        assert cloud.structure_epoch == structure
        assert cloud.cum_position_delta == pytest.approx(0.25)
        cloud.apply_parameter_step(d_positions=step, d_log_scales=0.5 * step)
        assert cloud.cum_position_delta == pytest.approx(0.5)
        assert cloud.cum_log_scale_delta == pytest.approx(0.125)

    def test_noop_parameter_step_does_not_bump(self):
        cloud = _spec().cloud.copy()
        epoch = cloud.epoch
        cloud.apply_parameter_step()
        assert cloud.epoch == epoch

    def test_structural_mutations_bump_structure_epoch(self):
        cloud = _spec().cloud.copy()
        for mutate in (
            lambda: cloud.extend(
                GaussianCloud.from_points(np.zeros((1, 3)), np.full((1, 3), 0.5))
            ),
            lambda: cloud.mask(np.array([0])),
            lambda: cloud.unmask_all(),
            lambda: cloud.remove(np.array([0])),
            lambda: cloud.keep_only(np.ones(len(cloud), dtype=bool)),
        ):
            before = cloud.structure_epoch
            mutate()
            assert cloud.structure_epoch > before
            assert cloud.epoch == cloud.structure_epoch

    def test_manual_bump_invalidates_but_cache_recovers(self):
        """bump_epoch forces a rebuild of prior entries without lasting damage."""
        spec = _spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(EXACT)
        _render(cloud, spec, cache)
        # Direct array edit: no movement bound, so the entry must not be
        # served from any reuse tier — not even refresh.
        cloud.positions[0] += 0.5
        cloud.bump_epoch()
        after_bump = _render(cloud, spec, cache)
        assert after_bump.cache_status == "miss"
        _assert_bitwise_equal(after_bump, _render(cloud, spec))
        # Entries built after the bump regain the full tier ladder.
        cloud.apply_parameter_step(d_colors=np.full((len(cloud), 3), 0.01))
        assert _render(cloud, spec, cache).cache_status == "refresh"

    def test_manual_structural_bump_invalidates(self):
        spec = _spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(EXACT)
        _render(cloud, spec, cache)
        cloud.bump_epoch(structural=True)
        assert _render(cloud, spec, cache).cache_status == "miss"

    def test_copy_gets_fresh_identity(self):
        cloud = _spec().cloud.copy()
        other = cloud.copy()
        assert other.uid != cloud.uid
        assert other.epoch == 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="refine_margin"):
            GeomCacheConfig(refine_margin=0.5)
        with pytest.raises(ValueError, match="tolerance_px"):
            GeomCacheConfig(tolerance_px=-1.0)
        with pytest.raises(ValueError, match="termination_margin"):
            GeomCacheConfig(termination_margin=-0.1)
        with pytest.raises(ValueError, match="max_entries"):
            GeomCacheConfig(max_entries=0)


class TestArenaRecycling:
    def test_reuse_when_large_enough(self):
        arena = ensure_flat_arena(None, 100)
        assert ensure_flat_arena(arena, 60) is arena
        assert ensure_flat_arena(arena, 100) is arena

    def test_growth_keeps_headroom(self):
        arena = ensure_flat_arena(None, 100)
        grown = ensure_flat_arena(arena, 101)
        assert grown is not arena
        # The high-water mark grows by the headroom factor, so the next few
        # slightly-larger windows fit without reallocating.
        assert grown.n_fragments >= 125
        assert ensure_flat_arena(grown, grown.n_fragments) is grown

    def test_batch_arena_grow_only_across_window_sizes(self):
        spec = _spec()
        poses = spec.view_poses(3)
        small = rasterize_batch(spec.cloud, [spec.camera], poses[:1])
        bigger = rasterize_batch(
            spec.cloud, [spec.camera] * 3, poses, arena=small.arena
        )
        assert bigger.arena.n_fragments >= 3 * small.views[0].n_fragments or (
            bigger.arena.n_fragments >= sum(v.n_fragments for v in bigger.views)
        )
        # Shrinking back reuses the high-water-mark buffer outright.
        again_small = rasterize_batch(
            spec.cloud, [spec.camera], poses[:1], arena=bigger.arena
        )
        assert again_small.arena is bigger.arena


class TestCacheTiers:
    def test_statuses_and_bitwise_equality(self):
        spec = _spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(EXACT)
        first = _render(cloud, spec, cache)
        assert first.cache_status == "miss"
        _assert_bitwise_equal(first, _render(cloud, spec))
        second = _render(cloud, spec, cache)
        assert second.cache_status == "hit"
        _assert_bitwise_equal(second, _render(cloud, spec))
        cloud.apply_parameter_step(d_colors=np.full((len(cloud), 3), 0.01))
        third = _render(cloud, spec, cache)
        assert third.cache_status == "refresh"
        _assert_bitwise_equal(third, _render(cloud, spec))
        cloud.apply_parameter_step(d_positions=np.full((len(cloud), 3), 1e-4))
        fourth = _render(cloud, spec, cache)
        assert fourth.cache_status == "miss"  # tolerance 0: geometry moved
        _assert_bitwise_equal(fourth, _render(cloud, spec))
        assert cache.stats.as_dict()["reuse_fraction"] == pytest.approx(0.5)

    def test_incremental_tier_within_tolerance(self):
        spec = _spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(GeomCacheConfig(tolerance_px=2.0, refine_margin=0.0))
        _render(cloud, spec, cache)
        cloud.apply_parameter_step(d_positions=np.full((len(cloud), 3), 1e-4))
        stale = _render(cloud, spec, cache)
        assert stale.cache_status == "incremental"
        exact = _render(cloud, spec)
        # Stale geometry: approximate, bounded by the (generous) tolerance.
        assert float(np.max(np.abs(stale.image - exact.image))) < 0.05
        # A move past the tolerance falls back to a full rebuild.
        cloud.apply_parameter_step(d_positions=np.full((len(cloud), 3), 0.5))
        rebuilt = _render(cloud, spec, cache)
        assert rebuilt.cache_status == "miss"
        _assert_bitwise_equal(rebuilt, _render(cloud, spec))

    def test_different_cloud_same_epoch_misses(self):
        spec = _spec()
        cloud_a = spec.cloud.copy()
        cloud_b = spec.cloud.copy()
        cache = GeometryCache(EXACT)
        _render(cloud_a, spec, cache)
        assert _render(cloud_b, spec, cache).cache_status == "miss"

    def test_lru_eviction(self):
        from repro.gaussians import SE3

        spec = _spec("single_gaussian")
        cloud = spec.cloud.copy()
        cache = GeometryCache(GeomCacheConfig(tolerance_px=0.0, max_entries=2))
        poses = [
            SE3.exp(k * np.array([0.01, 0.0, 0.0, 0.02, 0.0, 0.0])) @ spec.pose_cw
            for k in range(3)
        ]
        for pose in poses:
            rasterize(cloud, spec.camera, pose, backend="flat", cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest view was evicted; rendering it again is a miss.
        again = rasterize(cloud, spec.camera, poses[0], backend="flat", cache=cache)
        assert again.cache_status == "miss"

    def test_clear_drops_entries(self):
        spec = _spec("single_gaussian")
        cloud = spec.cloud.copy()
        cache = GeometryCache(EXACT)
        _render(cloud, spec, cache)
        cache.clear()
        assert len(cache) == 0
        assert _render(cloud, spec, cache).cache_status == "miss"

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        scale=st.sampled_from([1e-4, 1e-3, 1e-2, 0.1]),
    )
    def test_property_exact_mode_always_bitwise(self, seed, scale):
        """Any parameter step under tolerance 0 yields bit-identical renders."""
        spec = _spec("overlapping_opaque")
        cloud = spec.cloud.copy()
        cache = GeometryCache(EXACT)
        rng = np.random.default_rng(seed)
        _render(cloud, spec, cache)
        n = len(cloud)
        cloud.apply_parameter_step(
            d_positions=rng.normal(0.0, scale, size=(n, 3)),
            d_log_scales=rng.normal(0.0, scale, size=(n, 3)),
            d_opacity_logits=rng.normal(0.0, scale, size=n),
            d_colors=rng.normal(0.0, scale, size=(n, 3)),
        )
        _assert_bitwise_equal(_render(cloud, spec, cache), _render(cloud, spec))


class TestRefinement:
    def test_refined_rerender_matches_dense(self):
        spec = _spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(GeomCacheConfig(tolerance_px=0.0, refine_margin=8.0))
        first = _render(cloud, spec, cache)
        second = _render(cloud, spec, cache)  # hit, on the refined tile lists
        assert second.cache_status == "hit"
        # Dropped pairs composite to exactly zero; only BLAS summation order
        # can differ.
        np.testing.assert_allclose(second.image, first.image, atol=1e-12)
        np.testing.assert_allclose(second.depth, first.depth, atol=1e-12)
        # Refined renders process no more fragments than dense ones.
        assert second.n_fragments <= first.n_fragments

    def test_termination_truncation_exact_counts(self):
        spec = _deep_stack_spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(
            GeomCacheConfig(tolerance_px=0.0, refine_margin=0.0, termination_margin=0.25)
        )
        first = _render(cloud, spec, cache)
        second = _render(cloud, spec, cache)
        assert second.cache_status == "hit"
        # Truncation strips only fragments no pixel processed, so the
        # workload counts stay exact (and the compositing values identical).
        np.testing.assert_array_equal(
            second.fragments_per_pixel, first.fragments_per_pixel
        )
        np.testing.assert_allclose(second.image, first.image, atol=1e-12)
        (entry,) = cache._entries.values()
        assert entry.refined is not None
        assert entry.refined.n_fragments < entry.fragments.n_fragments

    def test_truncation_fallback_on_opacity_collapse(self):
        """A capped tile whose occluders vanish must re-render densely."""
        spec = _deep_stack_spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(
            GeomCacheConfig(tolerance_px=0.0, refine_margin=0.0, termination_margin=0.25)
        )
        _render(cloud, spec, cache)
        (entry,) = cache._entries.values()
        if not entry.capped_tile_ids:
            pytest.skip("scenario produced no capped tiles")
        # Collapse every opacity: fragments past the old termination depth
        # now matter, so the capped schedule under-terminates.  (Logit drop
        # keeps the refinement-validity headroom: only opacity *increases*
        # can resurrect refined-away pairs, but truncation must catch this.)
        cloud.apply_parameter_step(d_opacity_logits=np.full(len(cloud), -6.0))
        refreshed = _render(cloud, spec, cache)
        assert cache.stats.truncation_fallbacks == 1
        _assert_bitwise_equal(refreshed, _render(cloud, spec))

    def test_opacity_surge_voids_refinement(self):
        spec = _spec()
        cloud = spec.cloud.copy()
        margin = 8.0
        cache = GeometryCache(GeomCacheConfig(tolerance_px=0.0, refine_margin=margin))
        _render(cloud, spec, cache)
        (entry,) = cache._entries.values()
        assert entry.refined is not None
        # A logit surge past the margin's headroom could push dropped pairs
        # over the cutoff, so the cache must fall back to the full lists.
        cloud.apply_parameter_step(
            d_opacity_logits=np.full(len(cloud), np.log(margin) + 0.5)
        )
        refreshed = _render(cloud, spec, cache)
        assert refreshed.cache_status == "refresh"
        _assert_bitwise_equal(refreshed, _render(cloud, spec))


class TestBatchCache:
    def test_batch_served_from_cache_matches_uncached(self):
        spec = _spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(EXACT)
        poses = spec.view_poses(3)
        cameras = [spec.camera] * 3
        first = rasterize_batch(cloud, cameras, poses, cache=cache)
        assert [view.cache_status for view in first.views] == ["miss"] * 3
        assert first.shared is not None
        second = rasterize_batch(cloud, cameras, poses, cache=cache)
        assert [view.cache_status for view in second.views] == ["hit"] * 3
        assert second.shared is None  # nothing needed rebuilding
        plain = rasterize_batch(cloud, cameras, poses)
        for cached_view, plain_view in zip(second.views, plain.views):
            _assert_bitwise_equal(cached_view, plain_view)

    def test_batch_arena_is_cache_arena(self):
        spec = _spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(EXACT)
        poses = spec.view_poses(2)
        batch = rasterize_batch(cloud, [spec.camera] * 2, poses, cache=cache)
        assert batch.arena is cache._arena
        # The cache's grow-only arena is shared across windows: a later
        # single-view cached render (needing fewer fragments than the batch)
        # recycles the same buffer instead of allocating.
        _render(cloud, spec, cache)
        assert cache._arena is batch.arena


class TestMapperIntegration:
    @pytest.fixture(scope="class")
    def sequence(self):
        return make_sequence("tum", n_frames=6, resolution_scale=0.35)

    def _seeded(self, sequence, mapper, n_keyframes=3):
        cloud = GaussianCloud.empty()
        keyframes = []
        for index in range(n_keyframes):
            observation = sequence.frame(index)
            keyframes.append(
                Frame.from_rgbd(observation).with_pose(observation.gt_pose_cw)
            )
        mapper.initialize_map(cloud, keyframes[0], stride=6)
        return cloud, keyframes

    def test_window_iterations_reuse_after_densify_miss(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=4, batch_views=2))
        assert mapper.engine.cache is not None
        cloud, keyframes = self._seeded(sequence, mapper)
        result = mapper.map(cloud, keyframes)
        statuses = [s.cache_status for s in result.snapshots]
        # Densify mutates the cloud structurally, so iteration 0 rebuilds;
        # later iterations of the window are served from the cache.
        assert statuses[0] == "miss"
        assert any(s in ("hit", "refresh", "incremental") for s in statuses[2:])
        assert all(np.isfinite(loss) for loss in result.losses)

    def test_geom_cache_config_escape_hatch(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=1, geom_cache=False))
        assert mapper.engine.cache is None
        cloud, keyframes = self._seeded(sequence, mapper)
        result = mapper.map(cloud, keyframes)
        assert all(s.cache_status == "uncached" for s in result.snapshots)

    def test_geom_cache_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_GEOM_CACHE", "0")
        assert StreamingMapper(MappingConfig()).engine.cache is None
        monkeypatch.setenv("REPRO_GEOM_CACHE", "1")
        assert StreamingMapper(MappingConfig()).engine.cache is not None

    def test_notify_removed_clears_cache(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=2, batch_views=2))
        cloud, keyframes = self._seeded(sequence, mapper)
        mapper.map(cloud, keyframes)
        assert len(mapper.engine.cache) > 0
        keep = np.ones(cloud.n_total, dtype=bool)
        keep[::2] = False
        cloud.keep_only(keep)
        mapper.notify_removed(keep)
        assert len(mapper.engine.cache) == 0
        follow_up = mapper.map(cloud, keyframes)
        assert np.isfinite(follow_up.losses[0])

    def test_prune_clears_cache(self, sequence):
        mapper = StreamingMapper(
            MappingConfig(n_iterations=1, batch_views=2, opacity_prune_threshold=0.02)
        )
        cloud, keyframes = self._seeded(sequence, mapper)
        mapper.map(cloud, keyframes)
        cloud.opacity_logits[::2] = -12.0
        result = mapper.map(cloud, keyframes)
        assert result.n_pruned > 0
        assert len(mapper.engine.cache) == 0

    def test_covisibility_overlaps_match_intersect1d(self):
        rng = np.random.default_rng(3)
        newest = np.unique(rng.integers(0, 500, size=200))
        pool_rows = [
            np.unique(rng.integers(0, 500, size=rng.integers(0, 300))),
            None,
            np.zeros(0, dtype=np.int64),
            np.unique(rng.integers(0, 500, size=50)),
        ]
        overlaps = StreamingMapper._covisibility_overlaps(newest, pool_rows)
        for overlap, rows in zip(overlaps, pool_rows):
            if rows is None:
                assert overlap == -1
            else:
                assert overlap == np.intersect1d(rows, newest).size
        assert np.array_equal(
            StreamingMapper._covisibility_overlaps(None, pool_rows),
            np.full(len(pool_rows), -1),
        )


class TestModelAndProfiling:
    def test_cached_iteration_latency_cheaper(self):
        from dataclasses import replace

        from repro.hardware.gpu_model import EdgeGPUModel
        from repro.slam.records import WorkloadSnapshot

        spec = _spec()
        cloud = spec.cloud.copy()
        render = _render(cloud, spec)
        snapshot = WorkloadSnapshot.from_iteration(
            render,
            None,
            stage="mapping",
            frame_index=0,
            iteration=0,
            is_keyframe=True,
            loss=1.0,
            n_gaussians_total=cloud.n_total,
            n_gaussians_active=cloud.n_active,
        )
        model = EdgeGPUModel("onx")
        uncached = model.iteration_latency(snapshot)
        hit = model.iteration_latency(replace(snapshot, cache_status="hit"))
        refresh = model.iteration_latency(replace(snapshot, cache_status="refresh"))
        assert hit.preprocessing < refresh.preprocessing < uncached.preprocessing
        assert hit.sorting < uncached.sorting
        assert hit.rendering == uncached.rendering

    def test_batch_amortization_report_counts_cache(self):
        from repro.profiling import batch_amortization_report

        spec = _spec()
        cloud = spec.cloud.copy()
        cache = GeometryCache(EXACT)
        snapshots = []
        from repro.slam.records import WorkloadSnapshot

        for iteration in range(3):
            render = _render(cloud, spec, cache)
            snapshots.append(
                WorkloadSnapshot.from_iteration(
                    render,
                    None,
                    stage="mapping",
                    frame_index=0,
                    iteration=iteration,
                    is_keyframe=True,
                    loss=1.0,
                    n_gaussians_total=cloud.n_total,
                    n_gaussians_active=cloud.n_active,
                )
            )
        report = batch_amortization_report(snapshots)
        assert report["cache_misses"] == 1
        assert report["cache_hits"] == 2
        assert report["step12_amortization"] > 1.0
        assert report["speedup"] > 1.0
