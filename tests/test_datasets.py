"""Tests for scenes, trajectories, RGB-D sequences and the dataset registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_REGISTRY,
    SceneConfig,
    SyntheticScene,
    TrajectoryConfig,
    available_datasets,
    dataset_scenes,
    generate_trajectory,
    make_sequence,
)
from repro.datasets.trajectory import pose_velocity


class TestScene:
    def test_generation_is_deterministic(self):
        a = SyntheticScene.generate(SceneConfig(seed=5))
        b = SyntheticScene.generate(SceneConfig(seed=5))
        assert np.allclose(a.cloud.positions, b.cloud.positions)
        assert np.allclose(a.cloud.colors, b.cloud.colors)

    def test_different_seeds_differ(self):
        a = SyntheticScene.generate(SceneConfig(seed=1))
        b = SyntheticScene.generate(SceneConfig(seed=2))
        assert len(a.cloud) != len(b.cloud) or not np.allclose(
            a.cloud.positions[: min(len(a.cloud), len(b.cloud))],
            b.cloud.positions[: min(len(a.cloud), len(b.cloud))],
        )

    def test_points_inside_room(self):
        config = SceneConfig(room_size=(4.0, 3.0, 2.5), seed=3)
        scene = SyntheticScene.generate(config)
        half = np.asarray(config.room_size) / 2.0
        assert np.all(np.abs(scene.cloud.positions) <= half + 0.7)

    def test_objects_stay_off_the_camera_orbit(self):
        config = SceneConfig(room_size=(4.0, 3.0, 2.5), seed=9, n_objects=8)
        scene = SyntheticScene.generate(config)
        lateral = np.linalg.norm(scene.object_centres[:, :2], axis=1)
        # Orbit radii used by the registry are >= 0.75 * min(half extents) ~ 1.1.
        assert np.all(lateral < 0.9)

    def test_colors_in_unit_range(self):
        scene = SyntheticScene.generate(SceneConfig(seed=4))
        assert np.all(scene.cloud.colors >= 0.0) and np.all(scene.cloud.colors <= 1.0)


class TestTrajectory:
    def test_length_and_smoothness(self):
        config = TrajectoryConfig(n_frames=30, seed=2)
        poses = generate_trajectory(config)
        assert len(poses) == 30
        velocity = pose_velocity(poses)
        assert velocity.shape == (29, 2)
        # Per-frame motion should be small and consistent (smooth trajectory).
        assert velocity[:, 0].max() < 0.3
        assert velocity[:, 1].max() < 0.2

    def test_constant_per_frame_motion_regardless_of_length(self):
        short = generate_trajectory(TrajectoryConfig(n_frames=5, seed=1))
        long = generate_trajectory(TrajectoryConfig(n_frames=40, seed=1))
        v_short = pose_velocity(short)[:, 1].mean()
        v_long = pose_velocity(long)[:4, 1].mean()
        assert v_short == pytest.approx(v_long, rel=0.2)

    def test_invalid_frame_count(self):
        with pytest.raises(ValueError):
            generate_trajectory(TrajectoryConfig(n_frames=0))


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        assert set(available_datasets()) == {"tum", "replica", "scannet", "scannetpp"}

    def test_scene_lists_match_paper_table(self):
        assert len(dataset_scenes("replica")) == 7
        assert len(dataset_scenes("tum")) == 3
        assert len(dataset_scenes("scannetpp")) == 2

    def test_resolution_ordering_matches_paper(self):
        pixels = {
            name: np.prod(config.resolution) for name, config in DATASET_REGISTRY.items()
        }
        assert pixels["tum"] < pixels["replica"] < pixels["scannet"] < pixels["scannetpp"]

    def test_unknown_dataset_and_scene_raise(self):
        with pytest.raises(ValueError):
            make_sequence("kitti")
        with pytest.raises(ValueError):
            make_sequence("tum", scene="does_not_exist")


class TestSequence:
    def test_frames_render_and_cache(self, tiny_sequence):
        frame = tiny_sequence.frame(0)
        assert frame.image.shape[2] == 3
        assert frame.depth.shape == frame.image.shape[:2]
        assert tiny_sequence.frame(0) is frame  # cached
        tiny_sequence.clear_cache()
        assert tiny_sequence.frame(0) is not frame

    def test_depth_range_is_room_scale(self, tiny_sequence):
        depth = tiny_sequence.frame(1).depth
        valid = depth[depth > 0]
        assert valid.min() > 0.2
        assert valid.max() < 6.0

    def test_consecutive_frames_similar(self, tiny_sequence):
        a = tiny_sequence.frame(0).image
        b = tiny_sequence.frame(1).image
        assert np.mean(np.abs(a - b)) < 0.15

    def test_out_of_range_index(self, tiny_sequence):
        with pytest.raises(IndexError):
            tiny_sequence.frame(len(tiny_sequence))

    def test_ground_truth_poses_length(self, tiny_sequence):
        assert len(tiny_sequence.ground_truth_poses()) == len(tiny_sequence)
