"""Tests for image, trajectory and performance metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import SE3
from repro.metrics import (
    FPSMeter,
    align_trajectories,
    ate_rmse,
    cumulative_ate,
    gaussian_memory_gb,
    psnr,
    rmse,
    ssim,
)
from repro.metrics.performance import geometric_mean, speedup


class TestImageMetrics:
    def test_identical_images(self):
        image = np.random.default_rng(0).uniform(0, 1, (16, 20, 3))
        assert rmse(image, image) == 0.0
        assert psnr(image, image) == float("inf")
        assert ssim(image, image) == pytest.approx(1.0, abs=1e-6)

    def test_psnr_known_value(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 0.1)
        assert psnr(a, b) == pytest.approx(20.0, abs=1e-6)

    def test_ssim_decreases_with_noise(self):
        rng = np.random.default_rng(1)
        image = rng.uniform(0.3, 0.7, (24, 24))
        slight = np.clip(image + rng.normal(0, 0.02, image.shape), 0, 1)
        heavy = np.clip(image + rng.normal(0, 0.3, image.shape), 0, 1)
        assert ssim(image, slight) > ssim(image, heavy)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse(np.zeros((4, 4)), np.zeros((5, 5)))

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.01, 0.5, allow_nan=False))
    def test_psnr_monotone_in_error(self, magnitude):
        base = np.zeros((10, 10))
        assert psnr(base, base + magnitude) > psnr(base, base + 2 * magnitude)


class TestTrajectoryMetrics:
    def test_perfect_trajectory_zero_ate(self):
        poses = [SE3.exp(np.array([0.1 * i, 0, 0, 0, 0.01 * i, 0])) for i in range(10)]
        assert ate_rmse(poses, poses) == pytest.approx(0.0, abs=1e-9)

    def test_constant_offset_removed_by_alignment(self):
        gt = np.random.default_rng(2).uniform(-1, 1, (12, 3))
        estimated = gt + np.array([0.5, -0.2, 0.1])
        assert ate_rmse(estimated, gt, align=True) == pytest.approx(0.0, abs=1e-6)
        assert ate_rmse(estimated, gt, align=False) > 1.0

    def test_alignment_recovers_rotation(self):
        rng = np.random.default_rng(3)
        gt = rng.uniform(-1, 1, (20, 3))
        rotation = SE3.exp(np.array([0, 0, 0, 0.1, 0.3, -0.2])).rotation
        estimated = gt @ rotation.T + np.array([1.0, 2.0, 3.0])
        aligned, _, _ = align_trajectories(estimated, gt)
        assert np.allclose(aligned, gt, atol=1e-8)

    def test_cumulative_ate_monotone_for_growing_error(self):
        gt = np.zeros((10, 3))
        estimated = np.zeros((10, 3))
        estimated[:, 0] = np.linspace(0, 0.5, 10)
        curve = cumulative_ate(estimated, gt)
        assert curve.shape == (10,)
        assert np.all(np.diff(curve) >= -1e-12)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ate_rmse(np.zeros((3, 3)), np.zeros((4, 3)))


class TestPerformanceMetrics:
    def test_fps_meter_accumulates(self):
        meter = FPSMeter()
        for _ in range(10):
            meter.add_frame(tracking=0.02, mapping=0.03)
        assert meter.tracking_fps == pytest.approx(50.0)
        assert meter.overall_fps == pytest.approx(20.0)
        breakdown = meter.latency_breakdown()
        assert breakdown["tracking"] == pytest.approx(0.4)

    def test_gaussian_memory_scales_linearly(self):
        assert gaussian_memory_gb(2_000_000) == pytest.approx(2 * gaussian_memory_gb(1_000_000))

    def test_speedup_and_geometric_mean(self):
        assert speedup(2.0, 0.5) == pytest.approx(4.0)
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
