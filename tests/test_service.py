"""Tests for the multi-tenant render service (:mod:`repro.service`).

Covers admission control (session cap, queued-unit cap, slots freed by
close), weighted-fair scheduling (deterministic interleaving, weight shares,
the starvation bound), graceful close (drain vs cancel), cross-session
geometry-cache byte budgets (global and per-session LRU eviction, evicted
sessions re-plan and stay bitwise), the differential service phase
(interleaved sessions bitwise vs solo engines, cache off/on and under an
injected fault schedule), per-tenant attribution (session-stamped snapshots
and the ``batch_amortization_report`` per-session rollup), and running a
whole ``SLAMPipeline`` as one service tenant.

Pool-touching tests share the process-wide 2-worker pool with the sharded
tests, so the spawn cost is paid once per pytest session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ArenaInUseError, EngineConfig, RenderEngine
from repro.profiling.latency import batch_amortization_report
from repro.service import AdmissionError, RenderService, SessionClosedError
from repro.slam import SLAMPipeline, mono_gs
from repro.testing.differential import DifferentialRunner
from repro.testing.scenarios import DEFAULT_LIBRARY

N_WORKERS = 2

# Exact cache configuration: cached sessions stay bitwise against uncached.
_EXACT = dict(
    cache_tolerance_px=0.0, cache_refine_margin=0.0, cache_termination_margin=0.0
)


def _spec(name: str = "dense_random"):
    return DEFAULT_LIBRARY.get(name).build()


def _window(spec, n_views: int = 4):
    return (
        spec.cloud,
        [spec.camera] * n_views,
        spec.view_poses(n_views),
    ), dict(backgrounds=[spec.background] * n_views)


def _service(geom_cache: bool = False, **kwargs) -> RenderService:
    extra = _EXACT if geom_cache else {}
    return RenderService(
        EngineConfig(
            backend="sharded",
            geom_cache=geom_cache,
            shard_workers=N_WORKERS,
            **extra,
        ),
        round_quantum=2,
        **kwargs,
    )


def _solo_engine(geom_cache: bool = False) -> RenderEngine:
    extra = _EXACT if geom_cache else {}
    return RenderEngine(
        EngineConfig(
            backend="sharded",
            geom_cache=geom_cache,
            shard_workers=N_WORKERS,
            **extra,
        )
    )


def _assert_batches_equal(batch, reference):
    assert len(batch.views) == len(reference.views)
    for view, ref in zip(batch.views, reference.views):
        for name in ("image", "depth", "alpha"):
            np.testing.assert_array_equal(
                getattr(view, name), getattr(ref, name), err_msg=name
            )
        assert np.array_equal(view.fragments_per_pixel, ref.fragments_per_pixel)


class TestAdmission:
    def test_session_cap_and_close_frees_the_slot(self):
        service = _service(max_sessions=2)
        first = service.open_session("first")
        service.open_session("second")
        with pytest.raises(AdmissionError, match="REPRO_SERVICE_MAX_SESSIONS"):
            service.open_session("third")
        first.close()
        third = service.open_session("third")
        assert third.session_id in service.sessions
        service.close()

    def test_queued_unit_cap(self):
        spec = _spec("single_gaussian")
        args, kwargs = _window(spec, n_views=4)
        service = _service(max_queued_units=4)
        session = service.open_session("tenant")
        job = session.submit(*args, **kwargs)
        with pytest.raises(AdmissionError, match="max_queued_units"):
            session.submit(spec.cloud, [spec.camera], [spec.pose_cw])
        job.result()  # draining the queue frees the units
        session.submit(spec.cloud, [spec.camera], [spec.pose_cw]).result()
        service.close()

    def test_duplicate_session_id_rejected(self):
        service = _service()
        service.open_session("tenant")
        with pytest.raises(ValueError, match="already open"):
            service.open_session("tenant")
        service.close()

    def test_submit_after_close_raises(self):
        spec = _spec("single_gaussian")
        service = _service()
        session = service.open_session("tenant")
        session.close()
        with pytest.raises(SessionClosedError):
            session.submit(spec.cloud, [spec.camera], [spec.pose_cw])
        service.close()
        with pytest.raises(SessionClosedError):
            service.open_session("late")

    def test_cached_session_schedules_one_job_at_a_time(self):
        spec = _spec("single_gaussian")
        args, kwargs = _window(spec, n_views=2)
        service = _service(geom_cache=True)
        session = service.open_session("tenant")
        job = session.submit(*args, **kwargs)
        # A second submission while the first is still queued is rejected by
        # admission; once the first is consumed (its arena claim released by
        # the backward pass) submission works again.
        with pytest.raises(AdmissionError, match="one job at a time"):
            session.submit(*args, **kwargs)
        batch = job.result()
        with pytest.raises(ArenaInUseError):
            session.submit(*args, **kwargs)
        session.backward_batch(
            batch, spec.cloud, [np.zeros_like(v.image) for v in batch.views]
        )
        session.submit(*args, **kwargs).result()
        session.engine.release()
        service.close()


class TestFairScheduling:
    def test_interleaving_is_fair_and_deterministic(self):
        spec = _spec("single_gaussian")

        def run_once():
            service = _service()
            sessions = {
                sid: service.open_session(sid, weight=weight)
                for sid, weight in (("light", 1.0), ("heavy", 2.0), ("other", 1.0))
            }
            args, kwargs = _window(spec, n_views=8)
            jobs = [sessions[sid].submit(*args, **kwargs) for sid in sessions]
            for job in jobs:
                job.result()
            log = list(service.dispatch_log)
            service.close()
            return log

        log = run_once()
        units = {}
        for sid, count in log:
            units[sid] = units.get(sid, 0) + count
        assert units == {"light": 8, "heavy": 8, "other": 8}
        # The weight-2 session is elected twice as often while all three are
        # backlogged, so it holds a strict lead at the halfway mark and
        # finishes its backlog before either weight-1 session.
        first_half = log[: len(log) // 2]

        def dispatched(sid, window):
            return sum(count for s, count in window if s == sid)

        assert dispatched("heavy", first_half) > dispatched("light", first_half)
        assert dispatched("heavy", first_half) > dispatched("other", first_half)
        last_turn = {
            sid: max(i for i, (s, _) in enumerate(log) if s == sid) for sid in units
        }
        assert last_turn["heavy"] < last_turn["light"]
        assert last_turn["heavy"] < last_turn["other"]
        # Every session is interleaved, not run to completion in one turn.
        for sid in units:
            turns = [i for i, (s, _) in enumerate(log) if s == sid]
            assert turns[-1] - turns[0] >= len(turns)  # others ran in between
        # Stride election is deterministic: the same workload replays the
        # exact same dispatch log.
        assert run_once() == log

    def test_starvation_bound_holds_for_a_light_session(self):
        spec = _spec("single_gaussian")
        service = _service()
        light = service.open_session("light", weight=1.0)
        heavies = [
            service.open_session(f"heavy-{i}", weight=8.0) for i in range(2)
        ]
        args, kwargs = _window(spec, n_views=16)
        jobs = [
            session.submit(*args, **kwargs) for session in (light, *heavies)
        ]
        bound = service.starvation_bound_units(light)
        for job in jobs:
            job.result()
        log = service.dispatch_log
        light_turns = [i for i, (sid, _) in enumerate(log) if sid == "light"]
        assert light_turns, "the light session was never scheduled"
        worst = 0
        for previous, current in zip(light_turns, light_turns[1:]):
            between = sum(count for sid, count in log[previous + 1 : current])
            worst = max(worst, between)
        assert worst <= bound, (
            f"{worst} units dispatched between the light session's turns "
            f"exceeds the starvation bound {bound}"
        )
        service.close()


class TestGracefulClose:
    def test_drain_completes_pending_work(self):
        spec = _spec("single_gaussian")
        args, kwargs = _window(spec, n_views=4)
        service = _service()
        leaving = service.open_session("leaving")
        staying = service.open_session("staying")
        leaving_job = leaving.submit(*args, **kwargs)
        staying_job = staying.submit(*args, **kwargs)
        leaving.close(drain=True)
        assert leaving_job.done
        batch = leaving_job.result()  # completed before the close finished
        assert batch.n_views == 4
        assert "leaving" not in service.sessions
        _assert_batches_equal(staying_job.result(), batch)
        service.close()

    def test_cancel_drops_pending_units(self):
        spec = _spec("single_gaussian")
        args, kwargs = _window(spec, n_views=4)
        service = _service()
        session = service.open_session("tenant")
        job = session.submit(*args, **kwargs)
        session.close(drain=False)
        assert service.queued_units() == 0
        with pytest.raises(SessionClosedError, match="cancelled"):
            job.result()

    def test_service_close_cancels_every_session(self):
        spec = _spec("single_gaussian")
        args, kwargs = _window(spec, n_views=4)
        service = _service()
        jobs = [
            service.open_session(f"tenant-{i}").submit(*args, **kwargs)
            for i in range(2)
        ]
        service.close(drain=False)
        assert not service.sessions
        for job in jobs:
            with pytest.raises(SessionClosedError):
                job.result()


class TestCacheBudgets:
    def _consume(self, session, spec, batch):
        """Release the cached batch's arena claim through its backward pass."""
        session.backward_batch(
            batch, spec.cloud, [np.zeros_like(v.image) for v in batch.views]
        )

    def _session_bytes(self, spec, args, kwargs) -> int:
        """Resident cache bytes of one 4-view window, measured on a probe."""
        probe = _service(geom_cache=True)
        session = probe.open_session("probe")
        self._consume(session, spec, session.submit(*args, **kwargs).result())
        resident = probe._budget.total_bytes()
        probe.close()
        assert resident > 0
        return resident

    def test_global_budget_evicts_the_coldest_session_cross_tenant(self):
        spec = _spec()
        args, kwargs = _window(spec, n_views=4)
        one_session = self._session_bytes(spec, args, kwargs)
        # Room for ~1.5 windows: the second tenant's misses must push the
        # first tenant's (globally coldest) entries out.
        service = _service(geom_cache=True, cache_budget_bytes=one_session * 3 // 2)
        alpha = service.open_session("alpha")
        beta = service.open_session("beta")
        self._consume(alpha, spec, alpha.submit(*args, **kwargs).result())
        self._consume(beta, spec, beta.submit(*args, **kwargs).result())
        report = service.cache_report()
        assert report["total_bytes"] <= report["global_budget_bytes"]
        evicted_sessions = {sid for sid, _key in report["evictions"]}
        assert "alpha" in evicted_sessions, report["evictions"]
        assert report["sessions"]["alpha"]["budget_evictions"] > 0
        # The evicted tenant re-plans (misses) and stays bitwise identical
        # to a solo engine with a private, unbudgeted cache.
        replay = alpha.submit(*args, **kwargs).result()
        assert "miss" in [view.cache_status for view in replay.views]
        solo = _solo_engine(geom_cache=True)
        reference = solo.render_batch(*args, **kwargs)
        _assert_batches_equal(replay, reference)
        self._consume(alpha, spec, replay)
        solo.release(reference)
        service.close()

    def test_per_session_budget_is_enforced_independently(self):
        spec = _spec()
        args, kwargs = _window(spec, n_views=4)
        service = _service(geom_cache=True)
        # A 1-byte budget can never hold an entry: every enforce() pass
        # empties the session's cache, every round re-plans, and the other
        # tenant's cache is untouched.
        capped = service.open_session("capped", cache_budget_bytes=1)
        free = service.open_session("free")
        self._consume(capped, spec, capped.submit(*args, **kwargs).result())
        self._consume(free, spec, free.submit(*args, **kwargs).result())
        report = service.cache_report()
        assert report["sessions"]["capped"]["resident_bytes"] == 0.0
        assert report["sessions"]["capped"]["budget_evictions"] >= 1
        assert report["sessions"]["free"]["resident_bytes"] > 0.0
        assert report["sessions"]["free"]["budget_evictions"] == 0.0
        # Still bitwise: evicted entries only cost rebuilds.
        replay = capped.submit(*args, **kwargs).result()
        assert [view.cache_status for view in replay.views] == ["miss"] * 4
        solo = _solo_engine(geom_cache=True)
        reference = solo.render_batch(*args, **kwargs)
        _assert_batches_equal(replay, reference)
        self._consume(capped, spec, replay)
        solo.release(reference)
        service.close()


class TestDifferentialServicePhase:
    def test_interleaved_sessions_bitwise_vs_solo(self):
        runner = DifferentialRunner(
            n_shard_workers=N_WORKERS, n_service_sessions=3
        )
        spec = _spec()
        diffs, failures = runner.verify_service(spec)
        assert not failures, failures
        assert all(value == 0.0 for value in diffs.values()), diffs

    def test_interleaved_sessions_bitwise_under_faults(self):
        runner = DifferentialRunner(
            n_shard_workers=N_WORKERS,
            n_service_sessions=3,
            fault_schedule="random:97:0.35",
            fault_deadline_s=10.0,
        )
        spec = _spec()
        diffs, failures = runner.verify_service(spec)
        assert not failures, failures
        assert diffs["service_fault_events"] >= 1  # the schedule demonstrably fired
        assert diffs["service_fault"] == 0.0

    def test_phase_is_skipped_by_default(self):
        runner = DifferentialRunner(n_shard_workers=N_WORKERS)
        diffs, failures = runner.verify_service(_spec("single_gaussian"))
        assert not failures
        assert all(value == 0.0 for value in diffs.values())


class TestAttribution:
    def test_snapshots_and_amortization_report_roll_up_per_session(self):
        spec = _spec("single_gaussian")
        args, kwargs = _window(spec, n_views=4)
        service = _service()
        snapshots = []
        for sid in ("tenant-a", "tenant-b"):
            session = service.open_session(sid)
            batch = session.submit(*args, **kwargs).result()
            sharding = batch.sharding
            assert sharding.session_id == sid
            assert len(sharding.view_queue_wait_seconds) == 4
            assert all(s >= 0.0 for s in sharding.view_queue_wait_seconds)
            assert all(s > 0.0 for s in sharding.view_service_seconds)
            for index, view in enumerate(batch.views):
                snapshot = session.snapshot(
                    view,
                    stage="mapping",
                    frame_index=0,
                    iteration=index,
                    is_keyframe=True,
                    loss=0.0,
                    n_gaussians_total=len(spec.cloud),
                    n_gaussians_active=len(spec.cloud),
                    batch_size=4,
                    view_index=index,
                    batch=batch,
                )
                assert snapshot.session_id == sid
                assert snapshot.service_seconds > 0.0
                snapshots.append(snapshot)
        report = batch_amortization_report(snapshots)
        assert set(report["sessions"]) == {"tenant-a", "tenant-b"}
        for rollup in report["sessions"].values():
            assert rollup["n_views"] == 4.0
            assert rollup["service_s"] > 0.0
            assert rollup["modelled_s"] > 0.0
        # Snapshots without a session id keep the legacy report shape.
        engine = _solo_engine()
        plain = engine.render_batch(*args, **kwargs, managed=False)
        legacy_snapshot = engine.snapshot(
            plain.views[0],
            stage="mapping",
            frame_index=0,
            iteration=0,
            is_keyframe=True,
            loss=0.0,
            n_gaussians_total=len(spec.cloud),
            n_gaussians_active=len(spec.cloud),
        )
        assert "sessions" not in batch_amortization_report([legacy_snapshot])
        service.close()

    def test_session_stats_track_dispatches(self):
        spec = _spec("single_gaussian")
        args, kwargs = _window(spec, n_views=4)
        service = _service()
        session = service.open_session("tenant")
        session.submit(*args, **kwargs).result()
        assert session.stats.units_done == 4
        assert session.stats.rounds == 2  # quantum 2 over 4 units
        assert session.stats.service_seconds > 0.0
        service.close()


class TestPipelineIntegration:
    def test_slam_pipeline_runs_as_a_session(self, tiny_sequence):
        config = mono_gs(fast=True)
        config.tracking.n_iterations = 2
        config.mapping.n_iterations = 2
        service = _service()
        session = service.open_session("slam")
        pipeline = SLAMPipeline(config, session=session)
        assert pipeline.engine is session.engine
        result = pipeline.run(tiny_sequence, n_frames=2)
        assert len(result.estimated_trajectory) == 2
        assert np.isfinite(result.ate())
        service.close()

    def test_engine_and_session_are_mutually_exclusive(self):
        service = _service()
        session = service.open_session("slam")
        with pytest.raises(ValueError, match="engine= or session="):
            SLAMPipeline(
                mono_gs(fast=True),
                engine=RenderEngine(EngineConfig(backend="flat")),
                session=session,
            )
        # Passing the session's own engine is redundant but consistent.
        pipeline = SLAMPipeline(
            mono_gs(fast=True), engine=session.engine, session=session
        )
        assert pipeline.engine is session.engine
        service.close()
