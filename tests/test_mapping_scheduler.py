"""Tests for the multi-keyframe mapping scheduler (`StreamingMapper`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_sequence
from repro.gaussians import GaussianCloud
from repro.slam import Adam, Frame, MappingConfig, StreamingMapper


@pytest.fixture(scope="module")
def sequence():
    return make_sequence("tum", n_frames=6, resolution_scale=0.35)


def _keyframe(sequence, index: int) -> Frame:
    observation = sequence.frame(index)
    return Frame.from_rgbd(observation).with_pose(observation.gt_pose_cw)


def _seeded(sequence, mapper: StreamingMapper, n_keyframes: int = 3):
    cloud = GaussianCloud.empty()
    keyframes = [_keyframe(sequence, index) for index in range(n_keyframes)]
    mapper.initialize_map(cloud, keyframes[0], stride=6)
    return cloud, keyframes


class TestBatchedScheduler:
    def test_map_renders_full_window_per_iteration(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=2, batch_views=3))
        cloud, keyframes = _seeded(sequence, mapper)
        for count in range(1, 4):
            result = mapper.map(cloud, keyframes[:count])
            assert len(result.losses) == 2
            assert result.batch_sizes == [min(count, 3)] * 2
            assert result.max_batch_size == min(count, 3)

    def test_snapshots_carry_batch_metadata(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=2, batch_views=2))
        cloud, keyframes = _seeded(sequence, mapper)
        result = mapper.map(cloud, keyframes)
        # one snapshot per view per iteration
        assert len(result.snapshots) == 2 * 2
        for snapshot in result.snapshots:
            assert snapshot.stage == "mapping"
            assert snapshot.batch_size == 2
            assert snapshot.view_index in (0, 1)
            assert snapshot.includes_backward

    def test_covisible_window_preferred_over_recency(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=1, batch_views=2))
        cloud, keyframes = _seeded(sequence, mapper)
        newest = keyframes[-1]
        n = cloud.n_total
        # Fake visibility caches: keyframe 0 overlaps the newest almost fully,
        # keyframe 1 (more recent) barely at all.
        mapper._keyframe_visibility = {
            newest.index: np.arange(n),
            keyframes[0].index: np.arange(n - 1),
            keyframes[1].index: np.array([0]),
        }
        window = mapper._select_window(keyframes)
        assert [frame.index for frame in window] == [keyframes[0].index, newest.index]

    def test_unknown_covisibility_falls_back_to_recency(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=1, batch_views=2))
        cloud, keyframes = _seeded(sequence, mapper)
        mapper._keyframe_visibility = {}
        window = mapper._select_window(keyframes)
        assert [frame.index for frame in window] == [
            keyframes[1].index,
            keyframes[2].index,
        ]

    def test_batch_views_inherits_keyframe_window(self, sequence):
        # Widening keyframe_window keeps its pre-scheduler meaning: it sizes
        # the jointly-optimised window when batch_views is left unset.
        mapper = StreamingMapper(MappingConfig(n_iterations=1, keyframe_window=2))
        cloud, keyframes = _seeded(sequence, mapper)
        result = mapper.map(cloud, keyframes)
        assert result.batch_sizes == [2]
        explicit = StreamingMapper(
            MappingConfig(n_iterations=1, keyframe_window=2, batch_views=3)
        )
        cloud2, keyframes2 = _seeded(sequence, explicit)
        assert explicit.map(cloud2, keyframes2).batch_sizes == [3]

    def test_losses_decrease_on_single_keyframe(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=3))
        cloud, keyframes = _seeded(sequence, mapper, n_keyframes=1)
        result = mapper.map(cloud, keyframes)
        assert result.losses[-1] <= result.losses[0]

    def test_legacy_round_robin_escape_hatch(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=4, batched=False))
        cloud, keyframes = _seeded(sequence, mapper)
        result = mapper.map(cloud, keyframes)
        assert result.batch_sizes == [1, 1, 1, 1]
        assert len(result.snapshots) == 4


class TestPruneRemapRegression:
    """Pruning mid-window must remap every cached per-keyframe row index."""

    def _populate(self, sequence, mapper):
        cloud, keyframes = _seeded(sequence, mapper)
        mapper.map(cloud, keyframes)
        assert mapper._keyframe_visibility  # cache populated by the window renders
        return cloud, keyframes

    def test_remap_rewrites_rows_to_surviving_gaussians(self, sequence):
        mapper = StreamingMapper(MappingConfig())
        mapper._keyframe_visibility = {
            0: np.array([0, 2, 5, 7]),
            1: np.array([1, 2, 3]),
            2: np.zeros(0, dtype=int),
        }
        keep = np.array([True, False, True, True, False, False, True, True])
        mapper._remap_cached_rows(keep)
        # Old rows {0,2,5,7} -> kept {0,2,7} -> new indices {0,1,4}.
        np.testing.assert_array_equal(mapper._keyframe_visibility[0], [0, 1, 4])
        # Old rows {1,2,3} -> kept {2,3} -> new indices {1,2}.
        np.testing.assert_array_equal(mapper._keyframe_visibility[1], [1, 2])
        np.testing.assert_array_equal(mapper._keyframe_visibility[2], [])

    def test_prune_transparent_remaps_visibility_cache(self, sequence):
        mapper = StreamingMapper(
            MappingConfig(n_iterations=1, batch_views=3, opacity_prune_threshold=0.02)
        )
        cloud, keyframes = self._populate(sequence, mapper)
        cloud.opacity_logits[::3] = -12.0

        result = mapper.map(cloud, keyframes)  # prunes at the end of the call

        assert result.n_pruned > 0
        assert cloud.n_total > 0
        for rows in mapper._keyframe_visibility.values():
            assert rows.size == 0 or rows.max() < cloud.n_total
        # A batched iteration right after the prune must not index stale rows.
        follow_up = mapper.map(cloud, keyframes)
        assert np.isfinite(follow_up.losses[0])

    def test_notify_removed_remaps_and_next_map_runs(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=1, batch_views=3))
        cloud, keyframes = self._populate(sequence, mapper)
        # An external pruner (the RTGS tracking hook) removes rows mid-window.
        keep = np.ones(cloud.n_total, dtype=bool)
        keep[::2] = False
        cloud.keep_only(keep)
        mapper.notify_removed(keep)

        for rows in mapper._keyframe_visibility.values():
            assert rows.size == 0 or rows.max() < cloud.n_total
        # A batched iteration right after the prune must not index stale rows.
        result = mapper.map(cloud, keyframes)
        assert len(result.losses) == 1
        assert np.isfinite(result.losses[0])

    def test_stale_mask_without_remap_raises_in_optimizer(self):
        adam = Adam()
        adam.step("positions", np.zeros((10, 3)), 1e-3)
        with pytest.raises(ValueError, match="out of sync"):
            adam.keep_rows("positions", np.ones(7, dtype=bool))

    def test_densify_then_external_prune_keeps_optimizer_aligned(self, sequence):
        mapper = StreamingMapper(MappingConfig(n_iterations=1, batch_views=2))
        cloud, keyframes = self._populate(sequence, mapper)
        before = cloud.n_total
        keep = np.ones(before, dtype=bool)
        keep[before // 2 :] = False
        cloud.keep_only(keep)
        mapper.notify_removed(keep)
        # The optimiser state now matches the shrunken cloud, so a further
        # map() (which densifies and resizes) must run cleanly.
        result = mapper.map(cloud, keyframes)
        assert np.isfinite(result.losses[0])
        for name in ("positions", "log_scales", "opacity_logits", "colors"):
            state = mapper._optimizer._m.get(name)
            assert state is None or state.shape[0] == cloud.n_total
