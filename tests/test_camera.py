"""Tests for the pinhole camera model and resolution scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import Camera


def test_from_fov_principal_point_centred():
    camera = Camera.from_fov(64, 48, fov_x_degrees=90.0)
    assert camera.cx == pytest.approx(32.0)
    assert camera.cy == pytest.approx(24.0)
    # 90 degree horizontal FOV: fx = width / 2.
    assert camera.fx == pytest.approx(32.0)


def test_project_unproject_roundtrip():
    camera = Camera.from_fov(64, 48)
    points = np.array([[0.2, -0.1, 2.0], [-0.4, 0.3, 1.5], [0.0, 0.0, 3.0]])
    pixels = camera.project(points)
    recovered = camera.unproject(pixels, points[:, 2])
    assert np.allclose(recovered, points, atol=1e-9)


def test_pixel_grid_shape_and_centres():
    camera = Camera.from_fov(8, 6)
    grid = camera.pixel_grid()
    assert grid.shape == (6, 8, 2)
    assert grid[0, 0, 0] == pytest.approx(0.5)
    assert grid[5, 7, 1] == pytest.approx(5.5)


def test_downscale_reduces_pixel_count_by_factor():
    camera = Camera.from_fov(64, 48)
    reduced = camera.downscale(16.0)
    assert reduced.n_pixels == pytest.approx(camera.n_pixels / 16.0, rel=0.2)
    # The field of view is preserved: fx scales with width.
    assert reduced.fx / reduced.width == pytest.approx(camera.fx / camera.width, rel=0.05)


def test_downscale_validates_factor():
    camera = Camera.from_fov(64, 48)
    with pytest.raises(ValueError):
        camera.downscale(0.5)


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        Camera(0, 10, 5.0, 5.0, 0.0, 0.0)


@settings(max_examples=30, deadline=None)
@given(
    st.floats(0.1, 3.0, allow_nan=False),
    st.floats(-1.0, 1.0, allow_nan=False),
    st.floats(-1.0, 1.0, allow_nan=False),
)
def test_projection_depth_consistency(depth, x, y):
    camera = Camera.from_fov(60, 40)
    point = np.array([[x, y, depth + 0.2]])
    pixel = camera.project(point)
    recovered = camera.unproject(pixel, point[:, 2])
    assert np.allclose(recovered, point, atol=1e-8)
