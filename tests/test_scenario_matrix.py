"""The cross-backend scenario matrix: every cell individually, plus mechanics.

``test_matrix_cell`` parametrizes over every fast-tier cell of
:class:`repro.testing.matrix.ScenarioMatrix`, so each (scenario, backend,
cache, batch, mapping) point is an individually reportable test: executed
cells must match their flat reference within the cell's documented tolerance,
and skipped cells must carry a machine-readable reason (capability or
availability) — an unexplained skip is a failure, not a skip.

The mechanics tests pin the matrix subsystem itself: axis coverage (>= 10
scenarios x three backends x cache on/off), deterministic skip planning,
filter parsing, the markdown summary and the ``python -m repro.testing.matrix``
CLI.  The hypothesis property test closes the loop with the golden machinery:
*any* matrix scene — adversarial library included — round-trips through
``save_golden``/``load_golden``/``compare_to_golden`` (the same comparison
``regold --check`` runs) without drift.
"""

from __future__ import annotations

import json
import re
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.testing.golden import (
    compare_to_golden,
    load_golden,
    render_reference,
    save_golden,
)
from repro.testing.matrix import (
    AXES,
    MatrixCell,
    ScenarioMatrix,
    main,
    parse_filters,
    summarize,
    summary_table,
)
from repro.testing.scenarios import ADVERSARIAL_LIBRARY, DEFAULT_LIBRARY, matrix_library

# One module-level matrix: engines, scenario specs, reference renders and
# reference mapper runs are memoized across all parametrized cells.
MATRIX = ScenarioMatrix()
FAST_CELLS = MATRIX.cells(tier="fast")

SKIP_REASON = re.compile(r"^(capability|backend-unavailable):")


@pytest.mark.parametrize("cell", FAST_CELLS, ids=[cell.id for cell in FAST_CELLS])
def test_matrix_cell(cell):
    result = MATRIX.run_cell(cell)
    if result.status == "skip":
        assert result.skip_reason and SKIP_REASON.match(result.skip_reason), (
            f"unexplained or malformed skip for {cell.id}: {result.skip_reason!r}"
        )
        pytest.skip(result.skip_reason)
    assert result.passed, (
        f"{cell.id}: max diff {result.max_abs_diff:.3e} "
        f"(tolerance {result.tolerance:.1e}): " + "; ".join(result.failures)
    )


class TestMatrixCoverage:
    def test_required_axis_coverage(self):
        # Acceptance floor: >= 10 scenarios crossed with all three backends
        # and both cache settings, every combination enumerated.
        cells = MATRIX.cells(tier="all")
        scenarios = {cell.scenario for cell in cells}
        assert len(scenarios) >= 10
        assert scenarios >= set(DEFAULT_LIBRARY.names())
        assert scenarios >= set(ADVERSARIAL_LIBRARY.names())
        for backend in ("tile", "flat", "sharded"):
            for cache in ("off", "on"):
                covered = {
                    cell.scenario
                    for cell in cells
                    if cell.backend == backend and cell.cache == cache
                }
                assert covered == scenarios, f"{backend}/cache-{cache} misses scenarios"

    def test_every_scenario_has_executed_cells(self):
        # Each scenario must actually execute on flat (all 8 cells), the tile
        # reference (single render) and sharded (all 8 cells — cache-on cells
        # run against the worker-resident geometry caches).
        for name in matrix_library().names():
            executed = {
                (cell.backend, cell.cache, cell.batch, cell.mapping)
                for cell in MATRIX.cells(tier="all", filters={"scenario": {name}})
                if MATRIX.plan_cell(cell) is None
            }
            assert ("tile", "off", "single", "render") in executed
            assert sum(1 for key in executed if key[0] == "flat") == 8
            assert sum(1 for key in executed if key[0] == "sharded") == 8

    def test_no_unexplained_skips_anywhere(self):
        for cell in MATRIX.cells(tier="all"):
            reason = MATRIX.plan_cell(cell)
            if reason is not None:
                assert SKIP_REASON.match(reason), f"{cell.id}: malformed reason {reason!r}"

    def test_tier_partition(self):
        fast = {cell.scenario for cell in MATRIX.cells(tier="fast")}
        long = {cell.scenario for cell in MATRIX.cells(tier="long")}
        assert "long_trajectory" in long and "long_trajectory" not in fast
        assert fast and not (fast & long)
        everything = {cell.scenario for cell in MATRIX.cells(tier="all")}
        assert everything == fast | long


class TestSkipPlanning:
    def test_tile_batch_cells_skip_instead_of_silently_running_flat(self):
        reason = MATRIX.plan_cell(
            MatrixCell("single_gaussian", "tile", "off", "multi", "render")
        )
        assert reason is not None and reason.startswith("capability:no-batch-support")
        assert "silently substitute" in reason

    def test_cache_cells_skip_on_cacheless_backends(self):
        # Only the tile reference lacks cache support now: the sharded
        # backend composes with the geometry cache via worker-resident
        # entries, so its cache-on cells execute instead of skipping.
        reason = MATRIX.plan_cell(
            MatrixCell("single_gaussian", "tile", "on", "single", "render")
        )
        assert reason is not None and reason.startswith("capability:no-cache-support")

    def test_sharded_cache_cells_execute(self):
        for batch in ("single", "multi"):
            cell = MatrixCell("single_gaussian", "sharded", "on", batch, "render")
            assert MATRIX.plan_cell(cell) is None, f"{cell.id} should execute"

    def test_underprovisioned_sharded_workers_skip_with_core_count(self):
        starved = ScenarioMatrix(shard_workers=1)
        reason = starved.plan_cell(
            MatrixCell("single_gaussian", "sharded", "off", "multi", "render")
        )
        assert reason is not None
        assert reason.startswith("backend-unavailable:workers:1<2")
        assert "cpu_count=" in reason

    def test_unknown_backend_skips_with_reason(self):
        exotic = ScenarioMatrix(backends=("flat", "cuda"))
        reason = exotic.plan_cell(
            MatrixCell("single_gaussian", "cuda", "off", "single", "render")
        )
        assert reason is not None and "unknown-backend" in reason


class TestFiltersAndReporting:
    def test_parse_filters(self):
        filters = parse_filters(["backend=sharded", "scenario=one_pixel,empty_cloud"])
        assert filters == {
            "backend": {"sharded"},
            "scenario": {"one_pixel", "empty_cloud"},
        }
        with pytest.raises(ValueError, match="key=value"):
            parse_filters(["backend"])
        with pytest.raises(ValueError, match="unknown filter axis"):
            parse_filters(["gpu=on"])

    def test_cells_honour_filters(self):
        cells = MATRIX.cells(
            tier="all", filters={"backend": {"sharded"}, "mapping": {"mapper"}}
        )
        assert cells
        assert all(
            cell.backend == "sharded" and cell.mapping == "mapper" for cell in cells
        )

    def test_cell_ids_are_stable_and_unique(self):
        ids = [cell.id for cell in MATRIX.cells(tier="all")]
        assert len(ids) == len(set(ids))
        assert "single_gaussian/sharded/cache-off/multi/render" in ids

    def test_summary_table_lists_every_cell(self):
        results = MATRIX.run(
            filters={"scenario": {"single_gaussian"}, "backend": {"flat", "tile"}}
        )
        table = summary_table(results)
        assert "| scenario | backend | cache |" in table
        assert "| plan_site |" in table
        assert table.count("| single_gaussian |") == len(results)
        counts = summarize(results)
        assert counts["unexplained_skips"] == 0
        assert counts["pass"] > 0 and counts["fail"] == 0

    def test_summary_table_attributes_the_plan_site(self):
        # Sharded multi-view cells plan inside the workers; flat cells plan
        # in the parent — and the per-cell report says which.
        results = MATRIX.run(
            filters={
                "scenario": {"single_gaussian"},
                "backend": {"flat", "sharded"},
                "batch": {"multi"},
                "mapping": {"render"},
            }
        )
        by_backend = {
            (result.cell.backend, result.cell.cache): result for result in results
        }
        for cache in ("off", "on"):
            assert by_backend[("sharded", cache)].plan_site == "worker"
            assert by_backend[("flat", cache)].plan_site == "parent"
            assert by_backend[("sharded", cache)].to_json()["attribution"]["plan_site"] == "worker"
        table = summary_table(results)
        assert "| worker |" in table and "| parent |" in table

    def test_cell_results_serialize(self):
        result = MATRIX.run_cell(
            MatrixCell("single_gaussian", "flat", "off", "single", "render")
        )
        payload = result.to_json()
        assert payload["status"] == "pass"
        assert payload["tolerance"] == 0.0
        assert payload["attribution"]["n_snapshots"] == 1
        json.dumps(payload)  # JSON-serializable end to end


class TestCLI:
    def test_cli_runs_a_filtered_slice(self, tmp_path, capsys):
        json_path = tmp_path / "matrix.json"
        markdown_path = tmp_path / "matrix.md"
        exit_code = main(
            [
                "--filter",
                "scenario=single_gaussian",
                "--filter",
                "backend=flat",
                "--json",
                str(json_path),
                "--markdown",
                str(markdown_path),
            ]
        )
        assert exit_code == 0
        printed = capsys.readouterr().out
        assert "0 failed" in printed and "0 unexplained" in printed
        cells = json.loads(json_path.read_text())
        assert len(cells) == 8  # flat executes every cache/batch/mapping combination
        assert all(cell["status"] == "pass" for cell in cells)
        assert markdown_path.read_text().startswith("**Scenario matrix**")

    def test_cli_list(self, capsys):
        assert main(["--list", "--tier", "all", "--filter", "backend=tile"]) == 0
        printed = capsys.readouterr().out
        assert "long_trajectory/tile/cache-off/single/render" in printed

    def test_cli_rejects_unknown_filter_axis(self, capsys):
        with pytest.raises(SystemExit):
            main(["--filter", "gpu=on"])
        assert "unknown filter axis" in capsys.readouterr().err

    def test_axes_constant_matches_cell_fields(self):
        assert set(AXES) == {"backend", "cache", "batch", "mapping"}


# -- golden round-trip property (satellite of the matrix harness) -------------
@given(name=st.sampled_from(sorted(matrix_library().names())))
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_any_matrix_scene_roundtrips_through_golden_machinery(name):
    """Every matrix scene survives the exact ``regold --check`` comparison.

    Save a fresh fixture to a temporary directory, load it back, re-render
    with the reference backend and compare with the committed-golden
    tolerance: any nondeterminism in a scenario builder (adversarial library
    included, which has no committed fixtures) or any asymmetry in the
    save/load/compare machinery shows up as drift here.
    """
    scenario = matrix_library().get(name)
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        save_golden(scenario, directory=directory)
        golden = load_golden(name, directory=directory)
        mismatches = compare_to_golden(render_reference(scenario.build()), golden)
        assert mismatches == [], f"{name}: {'; '.join(mismatches)}"
