"""Tests for the plan/execute batch pipeline and the `sharded` backend.

Covers: work-unit self-containment (pickling round-trip, out-of-order
execution, disjoint arena reservations), the sharded backend's bitwise
equivalence to the flat path (forward + fused backward), its graceful
degradations (workers<=1, cached batches, single views), worker-side batch
eviction, the shard attribution threaded through ``StreamingMapper``
snapshots, and the self-healing dispatch: injected crash/hang/slow/poison
faults (``repro.engine.faults``) must never lose a batch — every schedule
completes bitwise-identical to the healthy flat path, with retries,
quarantines, respawns and serial escalations surfaced on the attribution.
The ``_no_shm_leak`` fixture additionally pins every failure path to "no
shared-memory segment left behind in /dev/shm".

All sharded tests run on a small shared 2-worker pool (pools are shared
process-wide per worker count), so the spawn cost is paid once per session.
Fault tests use engines with short deadlines/backoffs so injected hangs
cost seconds; the pool they share self-heals before each dispatch, so
leaving it quarantined never poisons a later test.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineConfig,
    RenderEngine,
    ShardWorkerError,
    fault_plan,
)
from repro.gaussians.batch import (
    RenderPlan,
    execute_plan,
    execute_view,
    plan_batch_views,
    rasterize_batch_views,
)
from repro.gaussians.fast_raster import allocate_flat_arena
from repro.gaussians.geom_cache import GeomCacheConfig, GeometryCache
from repro.testing.scenarios import DEFAULT_LIBRARY

N_WORKERS = 2

GRADIENT_FIELDS = (
    "positions",
    "log_scales",
    "rotations",
    "opacity_logits",
    "colors",
    "cov3d",
    "pose_twist",
    "per_gaussian_pose",
)


def _spec(name: str = "dense_random"):
    return DEFAULT_LIBRARY.get(name).build()


def _batch_args(spec, n_views: int = 3):
    poses = spec.view_poses(n_views)
    return (
        spec.cloud,
        [spec.camera] * n_views,
        poses,
    ), dict(
        backgrounds=[spec.background] * n_views,
        tile_size=spec.tile_size,
        subtile_size=spec.subtile_size,
    )


def _flat_engine() -> RenderEngine:
    return RenderEngine(EngineConfig(backend="flat", geom_cache=False))


def _sharded_engine(workers: int = N_WORKERS) -> RenderEngine:
    return RenderEngine(
        EngineConfig(backend="sharded", geom_cache=False, shard_workers=workers)
    )


def _assert_views_equal(views_a, views_b):
    for index, (a, b) in enumerate(zip(views_a, views_b)):
        np.testing.assert_array_equal(a.image, b.image, err_msg=f"image {index}")
        np.testing.assert_array_equal(a.depth, b.depth, err_msg=f"depth {index}")
        np.testing.assert_array_equal(a.alpha, b.alpha, err_msg=f"alpha {index}")
        assert np.array_equal(a.fragments_per_pixel, b.fragments_per_pixel), index


def _shm_segments() -> set[str] | None:
    """Names of the POSIX shared-memory segments currently backing /dev/shm.

    Returns ``None`` where /dev/shm does not exist (non-Linux); the leak
    fixture degrades to a no-op there.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return None
    return {entry.name for entry in shm_dir.iterdir() if entry.name.startswith("psm_")}


@pytest.fixture
def _no_shm_leak():
    """Fail the test if it leaves a shared-memory segment behind.

    Every dispatch creates one segment and must unlink it on *every* path —
    healthy, faulted, escalated.  Unlink is parent-side and immediate, but a
    short grace loop absorbs segments owned by a concurrently-respawning
    worker handshake.
    """
    before = _shm_segments()
    yield
    if before is None:
        return
    leaked: set[str] = set()
    for _ in range(50):
        leaked = (_shm_segments() or set()) - before
        if not leaked:
            return
        time.sleep(0.1)
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


class TestPlanExecute:
    def test_plan_reserves_disjoint_cumulative_slices(self):
        spec = _spec()
        args, kwargs = _batch_args(spec)
        plan = plan_batch_views(*args, **kwargs)
        base = 0
        for unit in plan.units:
            assert unit.base == base
            base += unit.n_fragments
        assert plan.total_fragments == base

    def test_uncached_units_pickle_round_trip_and_execute_bitwise(self):
        """Work units are self-contained: a pickled copy renders identically."""
        spec = _spec()
        args, kwargs = _batch_args(spec)
        direct = rasterize_batch_views(*args, **kwargs)
        plan = plan_batch_views(*args, **kwargs)
        units = [pickle.loads(pickle.dumps(unit)) for unit in plan.units]
        rehydrated = RenderPlan(
            units=units,
            shared=plan.shared,
            shared_seconds=plan.shared_seconds,
            total_fragments=plan.total_fragments,
        )
        _assert_views_equal(execute_plan(rehydrated).views, direct.views)

    def test_out_of_order_execution_stitches_in_view_order(self):
        spec = _spec()
        args, kwargs = _batch_args(spec)
        plan = plan_batch_views(*args, **kwargs)
        shuffled = RenderPlan(
            units=list(reversed(plan.units)),
            shared=plan.shared,
            shared_seconds=plan.shared_seconds,
            total_fragments=plan.total_fragments,
        )
        stitched = execute_plan(shuffled)
        direct = rasterize_batch_views(*args, **kwargs)
        _assert_views_equal(stitched.views, direct.views)
        # per-view timing attribution follows the stitch order too
        assert len(stitched.view_seconds) == len(plan.units)

    def test_units_execute_independently_into_private_arenas(self):
        """Each unit can rasterize alone into its own arena at base 0."""
        spec = _spec()
        args, kwargs = _batch_args(spec, n_views=2)
        plan = plan_batch_views(*args, **kwargs)
        direct = rasterize_batch_views(*args, **kwargs)
        for unit, expected in zip(plan.units, direct.views):
            solo_unit = pickle.loads(pickle.dumps(unit))
            solo_unit.base = 0
            arena = allocate_flat_arena(solo_unit.n_fragments)
            result = execute_view(solo_unit, arena)
            np.testing.assert_array_equal(result.image, expected.image)

    def test_cached_units_require_their_cache(self):
        spec = _spec()
        cache = GeometryCache()
        args, kwargs = _batch_args(spec, n_views=2)
        plan = plan_batch_views(*args, **kwargs, cache=cache)
        assert plan.cache is cache
        arena = cache.ensure_arena(plan.total_fragments)
        with pytest.raises(ValueError, match="geometry cache"):
            execute_view(plan.units[0], arena, cache=None)

    def test_cached_plan_execution_matches_legacy_batch(self):
        spec = _spec()
        args, kwargs = _batch_args(spec, n_views=2)
        uncached = rasterize_batch_views(*args, **kwargs)
        cached = rasterize_batch_views(*args, **kwargs, cache=GeometryCache())
        _assert_views_equal(cached.views, uncached.views)


class TestShardedBackend:
    def test_forward_and_fused_backward_bitwise_match_flat(self):
        spec = _spec()
        args, kwargs = _batch_args(spec)
        flat_engine, sharded_engine = _flat_engine(), _sharded_engine()
        flat = flat_engine.render_batch(*args, **kwargs)
        sharded = sharded_engine.render_batch(*args, **kwargs)
        _assert_views_equal(sharded.views, flat.views)
        assert all(view.backend == "sharded" for view in sharded.views)

        rng = np.random.default_rng(5)
        dL_dimages = [rng.uniform(-1, 1, size=v.image.shape) for v in flat.views]
        dL_ddepths = [rng.uniform(-1, 1, size=v.depth.shape) for v in flat.views]
        flat_grads = flat_engine.backward_batch(
            flat, spec.cloud, dL_dimages, dL_ddepths, compute_pose_gradient=True
        )
        sharded_grads = sharded_engine.backward_batch(
            sharded, spec.cloud, dL_dimages, dL_ddepths, compute_pose_gradient=True
        )
        for name in GRADIENT_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(sharded_grads.cloud, name)),
                np.asarray(getattr(flat_grads.cloud, name)),
                err_msg=name,
            )
        np.testing.assert_array_equal(
            sharded_grads.per_view_pose_twists, flat_grads.per_view_pose_twists
        )
        # per-view screen gradients kept separable, traces intact
        assert len(sharded_grads.screen) == len(flat_grads.screen)
        for sharded_screen, flat_screen in zip(sharded_grads.screen, flat_grads.screen):
            assert (
                sharded_screen.trace.total_pixel_level_updates
                == flat_screen.trace.total_pixel_level_updates
            )

    def test_single_view_backward_through_worker_matches_flat(self):
        spec = _spec()
        args, kwargs = _batch_args(spec, n_views=2)
        flat_engine, sharded_engine = _flat_engine(), _sharded_engine()
        flat = flat_engine.render_batch(*args, **kwargs)
        sharded = sharded_engine.render_batch(*args, **kwargs)
        rng = np.random.default_rng(11)
        dL_dimage = rng.uniform(-1, 1, size=flat.views[0].image.shape)
        flat_grads = flat_engine.backward(flat.views[0], spec.cloud, dL_dimage)
        sharded_grads = sharded_engine.backward(sharded.views[0], spec.cloud, dL_dimage)
        for name in GRADIENT_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(sharded_grads, name)),
                np.asarray(getattr(flat_grads, name)),
                err_msg=name,
            )

    def test_attribution_covers_every_view_and_worker(self):
        spec = _spec()
        args, kwargs = _batch_args(spec)
        batch = _sharded_engine().render_batch(*args, **kwargs)
        sharding = batch.sharding
        assert sharding is not None
        assert sharding.n_workers == N_WORKERS
        assert len(sharding.worker_ids) == batch.n_views
        assert set(sharding.worker_ids) <= set(range(N_WORKERS))
        assert len(sharding.view_shard_seconds) == batch.n_views
        assert all(seconds >= 0.0 for seconds in sharding.view_shard_seconds)
        assert sharding.stitch_seconds >= 0.0 and sharding.dispatch_seconds >= 0.0
        timings = batch.timings()
        assert timings["n_shard_workers"] == N_WORKERS

    def test_workers_leq_one_degrades_to_serial_flat(self):
        spec = _spec()
        args, kwargs = _batch_args(spec, n_views=2)
        for workers in (0, 1):
            engine = _sharded_engine(workers)
            batch = engine.render_batch(*args, **kwargs)
            assert batch.sharding is None
            assert all(view.backend == "flat" for view in batch.views)
            assert batch.arena is not None  # serial path keeps a recyclable arena
            engine.release(batch)

    def test_single_view_batches_stay_serial(self):
        spec = _spec()
        args, kwargs = _batch_args(spec, n_views=1)
        engine = _sharded_engine()
        batch = engine.render_batch(*args, **kwargs)
        assert batch.sharding is None
        engine.release(batch)

    def test_cache_carrying_requests_shard_with_worker_resident_entries(self):
        """Cached batches shard: planning and cache entries live in the workers."""
        spec = _spec()
        args, kwargs = _batch_args(spec, n_views=2)
        engine = _sharded_engine()
        # Exact configuration: every tier is bitwise against uncached (the
        # default refinement drops zero-contribution pairs, a documented
        # 1-ulp regrouping shared with the parent-resident cache).
        cache = GeometryCache(
            GeomCacheConfig(tolerance_px=0.0, refine_margin=0.0, termination_margin=0.0)
        )
        batch = engine.render_batch(*args, **kwargs, cache=cache, managed=False)
        assert batch.sharding is not None
        assert batch.sharding.plan_site == "worker"
        assert [view.cache_status for view in batch.views] == ["miss", "miss"]
        uncached = rasterize_batch_views(*args, **kwargs)
        _assert_views_equal(batch.views, uncached.views)
        # Parent-side stats mirror the worker-reported statuses, and the
        # repeat window is served from the worker-resident entries.
        assert cache.stats.misses == 2
        repeat = engine.render_batch(*args, **kwargs, cache=cache, managed=False)
        assert [view.cache_status for view in repeat.views] == ["hit", "hit"]
        assert cache.stats.hits == 2
        _assert_views_equal(repeat.views, uncached.views)

    def test_sharded_capabilities_are_honest(self):
        engine = _sharded_engine()
        capabilities = engine.capabilities("sharded")
        assert capabilities.batch
        assert capabilities.cache
        assert capabilities.distributed_planning
        assert capabilities.worker_resident_cache
        assert not capabilities.reference

    def test_worker_side_eviction_heals_via_parent_recompute(self):
        """Backward on a batch evicted from its workers recomputes locally.

        Workers retain a bounded window of batches; the pool mirrors that
        rotation parent-side, so a handle whose token rotated out reads
        unusable and backward falls back to the bitwise parent-recompute
        path (logged as ``stale-handle``) instead of surfacing the worker's
        residency error.  Interleaved tenants on the shared pool hit this
        constantly — see ``repro.service``.
        """
        spec = _spec("single_gaussian")
        args, kwargs = _batch_args(spec, n_views=2)
        engine = _sharded_engine()
        flat_engine = _flat_engine()
        stale = engine.render_batch(*args, **kwargs, managed=False)
        flat = flat_engine.render_batch(*args, **kwargs, managed=False)
        assert stale.sharding is not None
        # Render enough newer batches to push the first out of every
        # worker's retention window.
        for _ in range(3):
            engine.render_batch(*args, **kwargs, managed=False)
        fresh = engine.render_batch(*args, **kwargs, managed=False)
        pool = fresh.views[0].shard_info.pool
        assert not any(v.shard_info.usable() for v in stale.views)
        rng = np.random.default_rng(11)
        dL_dimages = [rng.uniform(-1, 1, size=v.image.shape) for v in stale.views]
        grads = engine.backward_batch(stale, spec.cloud, dL_dimages)
        flat_grads = flat_engine.backward_batch(flat, spec.cloud, dL_dimages)
        for name in GRADIENT_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(grads.cloud, name)),
                np.asarray(getattr(flat_grads.cloud, name)),
                err_msg=name,
            )
        events = [
            event["event"]
            for event in stale.sharding.fault_events
            if event["phase"] == "backward"
        ]
        assert events.count("stale-handle") == len(stale.views)
        # Healing is local: the shared pool survives and still-resident
        # batches keep their fast worker-side backward path.
        assert not pool.broken
        grads = engine.backward_batch(
            fresh, spec.cloud, [np.zeros_like(view.image) for view in fresh.views]
        )
        assert fresh.views[0].shard_info.pool is pool
        assert not any(
            event["phase"] == "backward" for event in fresh.sharding.fault_events
        )
        assert np.isfinite(grads.cloud.positions).all()

    def test_worker_crash_before_render_heals_and_completes(self):
        """Externally killed workers are respawned, not surfaced as errors.

        One dead slot: the pre-dispatch health check (``ensure_workers``)
        respawns it in place — same pool, a ``respawn`` event, no ``died``
        because no request was lost mid-flight.  Every slot dead: the shared
        pool reads ``broken`` and is replaced wholesale.  Either way the
        batch completes bitwise-identical to flat.
        """
        spec = _spec("single_gaussian")
        args, kwargs = _batch_args(spec, n_views=2)
        engine = _sharded_engine()
        flat = _flat_engine().render_batch(*args, **kwargs, managed=False)
        warm = engine.render_batch(*args, **kwargs, managed=False)
        pool = warm.views[0].shard_info.pool

        # -- one worker killed: in-place respawn keeps the pool ------------
        pool._workers[0].process.terminate()
        pool._workers[0].process.join(timeout=5.0)
        healed = engine.render_batch(*args, **kwargs, managed=False)
        sharding = healed.sharding
        assert sharding is not None
        _assert_views_equal(healed.views, flat.views)
        events = [event["event"] for event in sharding.fault_events]
        assert events == ["respawn"]
        assert sharding.fault_respawned_workers == [0]
        assert sharding.fault_retries == 0
        assert not sharding.escalated_views
        assert healed.views[0].shard_info.pool is pool
        assert sorted(pool.live_worker_ids()) == list(range(N_WORKERS))

        # -- every worker killed: the broken pool is replaced wholesale ----
        for worker in pool._workers:
            worker.process.terminate()
            worker.process.join(timeout=5.0)
        replaced = engine.render_batch(*args, **kwargs, managed=False)
        assert replaced.sharding is not None
        _assert_views_equal(replaced.views, flat.views)
        fresh_pool = replaced.views[0].shard_info.pool
        assert fresh_pool is not pool
        assert sorted(fresh_pool.live_worker_ids()) == list(range(N_WORKERS))

    def test_worker_crash_during_backward_recomputes_in_parent(self):
        """A managed batch whose workers died still completes its backward.

        The worker handles read unusable (dead process), so every view falls
        back to the parent-side recompute path — gradients stay bitwise
        against flat, the stale handles are logged, and the successful
        backward consumes the managed claim exactly as on the serial path.
        """
        spec = _spec("single_gaussian")
        args, kwargs = _batch_args(spec, n_views=2)
        engine = _sharded_engine()
        flat_engine = _flat_engine()
        batch = engine.render_batch(*args, **kwargs)  # managed: claims ownership
        assert batch.sharding is not None
        flat = flat_engine.render_batch(*args, **kwargs, managed=False)
        _assert_views_equal(batch.views, flat.views)
        pool = batch.views[0].shard_info.pool
        for worker in pool._workers:
            worker.process.terminate()
            worker.process.join(timeout=5.0)
        rng = np.random.default_rng(7)
        dL_dimages = [rng.uniform(-1, 1, size=v.image.shape) for v in flat.views]
        grads = engine.backward_batch(batch, spec.cloud, dL_dimages)
        flat_grads = flat_engine.backward_batch(flat, spec.cloud, dL_dimages)
        for name in GRADIENT_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(grads.cloud, name)),
                np.asarray(getattr(flat_grads.cloud, name)),
                err_msg=name,
            )
        events = [
            event["event"]
            for event in batch.sharding.fault_events
            if event["phase"] == "backward"
        ]
        assert events.count("stale-handle") == 2
        # The successful backward released the arena claim: the next managed
        # batch renders without an explicit release.
        fresh = engine.render_batch(*args, **kwargs)
        assert fresh.n_views == 2
        engine.release(fresh)

    def test_backward_on_detached_sharded_result_raises(self):
        """A sharded view stripped of its worker handle fails loudly, not with
        silently-empty gradients."""
        spec = _spec("single_gaussian")
        args, kwargs = _batch_args(spec, n_views=2)
        engine = _sharded_engine()
        batch = engine.render_batch(*args, **kwargs, managed=False)
        view = batch.views[0]
        del view.shard_info
        with pytest.raises(ShardWorkerError, match="no worker handle"):
            engine.backward(view, spec.cloud, np.zeros_like(view.image))
        # A batch with a mix of detached and attached views fails just as
        # cleanly instead of dying on the missing handle.
        with pytest.raises(ShardWorkerError, match="no worker handle"):
            engine.backward_batch(
                batch, spec.cloud, [np.zeros_like(v.image) for v in batch.views]
            )


class TestFaultInjection:
    """Deterministic chaos: injected faults must never lose a batch.

    Every schedule — crash, hang, slow, poison, sticky total loss — must
    leave ``render_batch``/``backward_batch`` total: same bits as the
    healthy flat path, fault events on the attribution, no leaked shared
    memory, no leaked processes.
    """

    def _engine(
        self,
        deadline: float = 10.0,
        backoff: float = 0.5,
        retries: int = 2,
    ) -> RenderEngine:
        return RenderEngine(
            EngineConfig(
                backend="sharded",
                geom_cache=False,
                shard_workers=N_WORKERS,
                shard_deadline_s=deadline,
                shard_backoff_s=backoff,
                shard_retry_limit=retries,
            )
        )

    @pytest.mark.parametrize(
        "schedule, expected_event, heals",
        [
            ("crash@0.*", "died", True),
            ("hang@0.*:delay=30", "timeout", True),
            ("slow@1.*:delay=0.2", "slow", False),
            ("poison@0.*", "poisoned", True),
        ],
    )
    def test_render_faults_heal_bitwise(
        self, schedule, expected_event, heals, _no_shm_leak
    ):
        spec = _spec()
        args, kwargs = _batch_args(spec)
        flat = _flat_engine().render_batch(*args, **kwargs, managed=False)
        engine = self._engine(deadline=3.0, backoff=0.2)
        with fault_plan(schedule):
            batch = engine.render_batch(*args, **kwargs, managed=False)
        _assert_views_equal(batch.views, flat.views)
        sharding = batch.sharding
        events = [event["event"] for event in sharding.fault_events]
        assert expected_event in events
        assert not sharding.escalated_views  # healed in-batch, never serial
        if heals:
            # The faulted worker was quarantined, respawned, and the lost
            # views redispatched within the same batch.
            assert sharding.fault_retries >= 1
            assert 0 in sharding.fault_quarantined_workers
            assert 0 in sharding.fault_respawned_workers
        else:
            # A slow worker is an observation, not a failure: no retry.
            assert sharding.fault_retries == 0
            assert not sharding.fault_quarantined_workers

    @pytest.mark.parametrize(
        "schedule, expected_event",
        [
            ("crash@*.*:phase=backward", "died"),
            ("poison@0.*:phase=backward", "poisoned"),
        ],
    )
    def test_backward_faults_recompute_bitwise(
        self, schedule, expected_event, _no_shm_leak
    ):
        spec = _spec()
        args, kwargs = _batch_args(spec)
        flat_engine = _flat_engine()
        flat = flat_engine.render_batch(*args, **kwargs, managed=False)
        engine = self._engine(deadline=5.0, backoff=0.2)
        batch = engine.render_batch(*args, **kwargs, managed=False)
        _assert_views_equal(batch.views, flat.views)
        rng = np.random.default_rng(13)
        dL_dimages = [rng.uniform(-1, 1, size=v.image.shape) for v in flat.views]
        dL_ddepths = [rng.uniform(-1, 1, size=v.depth.shape) for v in flat.views]
        with fault_plan(schedule):
            grads = engine.backward_batch(
                batch, spec.cloud, dL_dimages, dL_ddepths, compute_pose_gradient=True
            )
        flat_grads = flat_engine.backward_batch(
            flat, spec.cloud, dL_dimages, dL_ddepths, compute_pose_gradient=True
        )
        for name in GRADIENT_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(grads.cloud, name)),
                np.asarray(getattr(flat_grads.cloud, name)),
                err_msg=name,
            )
        np.testing.assert_array_equal(
            grads.per_view_pose_twists, flat_grads.per_view_pose_twists
        )
        # Backward fault events ride on the same attribution list the render
        # started, tagged with their phase.
        backward_events = [
            event["event"]
            for event in batch.sharding.fault_events
            if event["phase"] == "backward"
        ]
        assert expected_event in backward_events

    def test_sticky_total_crash_escalates_to_serial(self, _no_shm_leak):
        """Sticky all-worker crashes exhaust retries, then the parent takes over.

        Round 0 loses both workers; the retry respawns them and the sticky
        sites kill them again; the retry budget is spent, so every view
        escalates to serial parent execution — and the batch still matches
        the flat path bitwise, forward and backward.
        """
        spec = _spec()
        args, kwargs = _batch_args(spec)
        flat_engine = _flat_engine()
        flat = flat_engine.render_batch(*args, **kwargs, managed=False)
        engine = self._engine(deadline=5.0, backoff=0.1, retries=1)
        with fault_plan("crash@*.*:sticky"):
            batch = engine.render_batch(*args, **kwargs, managed=False)
        _assert_views_equal(batch.views, flat.views)
        sharding = batch.sharding
        assert sorted(sharding.escalated_views) == list(range(batch.n_views))
        assert sharding.worker_ids == [-1] * batch.n_views
        assert sharding.fault_retries == 1
        events = [event["event"] for event in sharding.fault_events]
        assert events.count("escalated") == batch.n_views
        assert "died" in events and "respawn" in events
        # Escalated views stay routable: backend "sharded" so the batch
        # backward flows through the mixed sharded handling, no worker
        # handles, purely local gradients — still bitwise.
        assert all(view.backend == "sharded" for view in batch.views)
        assert [view.cache_status for view in batch.views] == ["uncached"] * 3
        rng = np.random.default_rng(17)
        dL_dimages = [rng.uniform(-1, 1, size=v.image.shape) for v in flat.views]
        grads = engine.backward_batch(batch, spec.cloud, dL_dimages)
        flat_grads = flat_engine.backward_batch(flat, spec.cloud, dL_dimages)
        for name in GRADIENT_FIELDS:
            np.testing.assert_array_equal(
                np.asarray(getattr(grads.cloud, name)),
                np.asarray(getattr(flat_grads.cloud, name)),
                err_msg=name,
            )

    def test_crash_with_cache_rewarns_worker_entries(self, _no_shm_leak):
        """A respawned worker serves rebuilt cache entries, never stale ones."""
        spec = _spec()
        args, kwargs = _batch_args(spec)
        engine = RenderEngine(
            EngineConfig(
                backend="sharded",
                geom_cache=True,
                shard_workers=N_WORKERS,
                cache_tolerance_px=0.0,
                cache_refine_margin=0.0,
                cache_termination_margin=0.0,
                shard_deadline_s=10.0,
                shard_backoff_s=0.5,
            )
        )
        uncached = rasterize_batch_views(*args, **kwargs)
        warm = engine.render_batch(*args, **kwargs)
        assert [view.cache_status for view in warm.views] == ["miss"] * 3
        _assert_views_equal(warm.views, uncached.views)
        engine.release(warm)
        with fault_plan("crash@0.*"):
            batch = engine.render_batch(*args, **kwargs)
        _assert_views_equal(batch.views, uncached.views)
        events = [event["event"] for event in batch.sharding.fault_events]
        assert "died" in events and "respawn" in events
        # The respawned worker lost its entries: its views rebuild as misses
        # (epoch re-broadcast purged the parent's mirror), the surviving
        # worker's views may still hit — a stale "hit" against lost worker
        # state is the failure mode this pins down.
        assert set(view.cache_status for view in batch.views) <= {"hit", "miss"}
        engine.release(batch)
        # The repeat window re-warms: views that stayed on their pre-crash
        # worker hit, views the redispatch moved to a new worker rebuild as
        # misses once more — and every tier stays bitwise against uncached.
        repeat = engine.render_batch(*args, **kwargs)
        assert set(view.cache_status for view in repeat.views) <= {"hit", "miss"}
        assert any(view.cache_status == "hit" for view in repeat.views)
        _assert_views_equal(repeat.views, uncached.views)
        engine.release(repeat)

    def test_wedged_worker_is_killed_not_leaked(self, _no_shm_leak):
        """A SIGTERM-ignoring hung worker is killed by quarantine escalation."""
        spec = _spec("single_gaussian")
        args, kwargs = _batch_args(spec, n_views=2)
        engine = self._engine(deadline=2.0, backoff=0.1, retries=1)
        warm = engine.render_batch(*args, **kwargs, managed=False)
        pool = warm.views[0].shard_info.pool
        wedged = pool._workers[0].process
        with fault_plan("hang@0.*:delay=60,wedge"):
            batch = engine.render_batch(*args, **kwargs, managed=False)
        flat = _flat_engine().render_batch(*args, **kwargs, managed=False)
        _assert_views_equal(batch.views, flat.views)
        sharding = batch.sharding
        events = [event["event"] for event in sharding.fault_events]
        assert "timeout" in events
        assert 0 in sharding.fault_quarantined_workers
        # terminate() was ignored (the wedge), so quarantine escalated to
        # kill(): the 60s-sleep process must be dead, not orphaned.
        assert not wedged.is_alive()

    def test_close_kills_wedged_worker(self):
        """Pool shutdown escalates terminate -> kill on a wedged worker."""
        from repro.engine.sharded import ShardedPool

        pool = ShardedPool(1)
        try:
            worker = pool._workers[0]
            process = worker.process
            worker.conn.send(
                (
                    "render",
                    (
                        999,
                        "bogus",
                        {
                            "faults": [
                                {
                                    "key": "wedge-test",
                                    "kind": "hang",
                                    "delay": 120.0,
                                    "wedge": True,
                                }
                            ]
                        },
                    ),
                )
            )
            time.sleep(0.5)  # let the worker arm SIG_IGN and start sleeping
        finally:
            start = time.perf_counter()
            pool.close()
            elapsed = time.perf_counter() - start
        assert pool.closed and pool.broken
        assert not process.is_alive()
        # shutdown-send (ignored) + join(2) + terminate (ignored) + join(2)
        # + kill: well under the 120s the wedge would otherwise sleep.
        assert elapsed < 30.0

    def test_shard_pools_shut_down_at_interpreter_exit(self, tmp_path):
        """Exiting without shutdown_shard_pools() must not hang or orphan.

        The atexit guard (and daemonized workers) reap the pool: the child
        interpreter exits cleanly and promptly on its own.
        """
        script = tmp_path / "atexit_child.py"
        script.write_text(
            textwrap.dedent(
                """
                from repro.engine import EngineConfig, RenderEngine
                from repro.testing.scenarios import DEFAULT_LIBRARY


                def main():
                    spec = DEFAULT_LIBRARY.get("single_gaussian").build()
                    n_views = 2
                    poses = spec.view_poses(n_views)
                    engine = RenderEngine(
                        EngineConfig(
                            backend="sharded", geom_cache=False, shard_workers=2
                        )
                    )
                    batch = engine.render_batch(
                        spec.cloud,
                        [spec.camera] * n_views,
                        poses,
                        backgrounds=[spec.background] * n_views,
                        tile_size=spec.tile_size,
                        subtile_size=spec.subtile_size,
                        managed=False,
                    )
                    assert batch.sharding is not None
                    print("rendered", flush=True)
                    # exit WITHOUT shutdown_shard_pools(): atexit must reap


                if __name__ == "__main__":
                    main()
                """
            )
        )
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "rendered" in result.stdout

    def test_differential_runner_fault_phase(self):
        """The runner's fault phase re-renders the window under the schedule."""
        from repro.testing.differential import DifferentialRunner
        from repro.testing.scenarios import DEFAULT_LIBRARY

        runner = DifferentialRunner(
            fault_schedule="crash@0.*", fault_deadline_s=10.0
        )
        report = runner.run_scenario(DEFAULT_LIBRARY.get("single_gaussian"))
        assert report.passed, report.failures
        assert report.fault_events >= 1  # the schedule demonstrably fired
        assert report.fault_image_diff == 0.0
        assert report.fault_gradient_diff == 0.0
        assert "fault" in report.summary()

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_random_fault_schedules_stay_bitwise(self, seed):
        """Property: any seeded random schedule completes bitwise.

        Random schedules draw crash/slow/poison per (op, worker) from
        ``derive_seed`` — hangs are excluded so each example stays fast.
        """
        spec = _spec("single_gaussian")
        args, kwargs = _batch_args(spec)
        flat = _flat_engine().render_batch(*args, **kwargs, managed=False)
        engine = self._engine(deadline=5.0, backoff=0.2)
        with fault_plan(f"random:{seed}:0.3"):
            batch = engine.render_batch(*args, **kwargs, managed=False)
        _assert_views_equal(batch.views, flat.views)


class TestPlanExecuteSeam:
    """The formalised RenderBackend plan/execute protocol methods."""

    def _request(self, spec, n_views: int = 2):
        from repro.engine.registry import BatchRenderRequest

        poses = spec.view_poses(n_views)
        return BatchRenderRequest(
            cloud=spec.cloud,
            cameras=[spec.camera] * n_views,
            poses_cw=poses,
            backgrounds=[spec.background] * n_views,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
        )

    def test_flat_render_batch_is_plan_then_execute(self):
        spec = _spec()
        request = self._request(spec)
        backend = _flat_engine().backend("flat")
        direct = backend.render_batch(request)
        composed = backend.execute_units(backend.plan_batch(request), request)
        _assert_views_equal(composed.views, direct.views)

    def test_sharded_serial_fallback_uses_the_same_seam(self):
        spec = _spec()
        request = self._request(spec)
        backend = _sharded_engine(workers=0).backend("sharded")
        plan = backend.plan_batch(request)
        assert plan.total_fragments == sum(unit.n_fragments for unit in plan.units)
        composed = backend.execute_units(plan, request)
        direct = _flat_engine().backend("flat").render_batch(request)
        _assert_views_equal(composed.views, direct.views)

    def test_external_scheduler_can_reorder_units(self):
        """plan_batch units stay self-contained under the protocol methods too."""
        spec = _spec()
        request = self._request(spec, n_views=3)
        backend = _flat_engine().backend("flat")
        plan = backend.plan_batch(request)
        shuffled = RenderPlan(
            units=list(reversed(plan.units)),
            shared=plan.shared,
            shared_seconds=plan.shared_seconds,
            total_fragments=plan.total_fragments,
        )
        stitched = backend.execute_units(shuffled, request)
        direct = backend.render_batch(request)
        _assert_views_equal(stitched.views, direct.views)

    def test_tile_backend_refuses_the_seam(self):
        spec = _spec("single_gaussian")
        request = self._request(spec)
        backend = RenderEngine(EngineConfig(backend="tile", geom_cache=False)).backend(
            "tile"
        )
        with pytest.raises(NotImplementedError, match="batched"):
            backend.plan_batch(request)


class TestWorkerResidentCache:
    """Cross-process cache coherence: worker-resident entries never go stale."""

    def _adversarial(self, name: str):
        from repro.testing.scenarios import ADVERSARIAL_LIBRARY

        return ADVERSARIAL_LIBRARY.get(name).build()

    def _cached_sharded_engine(self) -> RenderEngine:
        # Exact cache configuration: every served tier must be bitwise
        # against an uncached render, so a stale worker entry cannot hide
        # behind refinement's documented 1-ulp regrouping.
        return RenderEngine(
            EngineConfig(
                backend="sharded",
                geom_cache=True,
                shard_workers=N_WORKERS,
                cache_tolerance_px=0.0,
                cache_refine_margin=0.0,
                cache_termination_margin=0.0,
            )
        )

    def _assert_matches_uncached(self, engine, cloud, spec, n_views: int = 3):
        """Render a window cached+sharded and pin it bitwise to uncached flat.

        Bitwise equality holds on miss rounds (entries rebuilt from the live
        cloud), which is exactly what every mid-window mutation must produce;
        serving a pre-mutation worker entry would diverge visibly.
        """
        poses = spec.view_poses(n_views)
        kwargs = dict(
            backgrounds=[spec.background] * n_views,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
        )
        cached = engine.render_batch(cloud, [spec.camera] * n_views, poses, **kwargs)
        uncached = rasterize_batch_views(cloud, [spec.camera] * n_views, poses, **kwargs)
        _assert_views_equal(cached.views, uncached.views)
        statuses = [view.cache_status for view in cached.views]
        engine.release(cached)
        return statuses

    @pytest.mark.parametrize("scenario", ["densify_churn", "aggressive_motion"])
    def test_densify_mid_window_invalidates_worker_entries(self, scenario):
        spec = self._adversarial(scenario)
        cloud = spec.cloud.copy()
        engine = self._cached_sharded_engine()
        assert self._assert_matches_uncached(engine, cloud, spec) == ["miss"] * 3
        assert self._assert_matches_uncached(engine, cloud, spec) == ["hit"] * 3
        from repro.gaussians import GaussianCloud

        cloud.extend(
            GaussianCloud.from_points(
                np.array([[0.02, -0.05, 0.1], [-0.08, 0.04, 0.15]]),
                np.array([[0.9, 0.2, 0.1], [0.1, 0.4, 0.8]]),
                scale=0.1,
                opacity=0.8,
            )
        )
        # Densification mid-window: the structure epoch moved, so every
        # worker-resident entry must re-key to a miss — never a stale serve.
        assert self._assert_matches_uncached(engine, cloud, spec) == ["miss"] * 3

    @pytest.mark.parametrize("scenario", ["densify_churn", "aggressive_motion"])
    def test_prune_mid_window_invalidates_worker_entries(self, scenario):
        spec = self._adversarial(scenario)
        cloud = spec.cloud.copy()
        engine = self._cached_sharded_engine()
        self._assert_matches_uncached(engine, cloud, spec)
        cloud.remove(np.array([0, len(cloud) - 1]))
        assert self._assert_matches_uncached(engine, cloud, spec) == ["miss"] * 3

    def test_notify_removed_mid_window_invalidates_worker_entries(self):
        spec = self._adversarial("densify_churn")
        cloud = spec.cloud.copy()
        engine = self._cached_sharded_engine()
        self._assert_matches_uncached(engine, cloud, spec)
        cloud.mask(np.array([1, 3]))
        assert self._assert_matches_uncached(engine, cloud, spec) == ["miss"] * 3
        # remove_inactive compacts the masked rows away (the notify_removed
        # path); the worker entries keyed on the old structure must miss.
        cloud.remove_inactive()
        assert self._assert_matches_uncached(engine, cloud, spec) == ["miss"] * 3

    def test_invalidate_cache_broadcasts_to_worker_pools(self):
        spec = _spec()
        cloud = spec.cloud.copy()
        engine = self._cached_sharded_engine()
        assert self._assert_matches_uncached(engine, cloud, spec) == ["miss"] * 3
        assert self._assert_matches_uncached(engine, cloud, spec) == ["hit"] * 3
        engine.invalidate_cache()
        # The broadcast dropped the worker-resident namespace: the next
        # window rebuilds instead of hitting ghost entries.
        assert self._assert_matches_uncached(engine, cloud, spec) == ["miss"] * 3

    def test_worker_cache_matches_parent_cache_through_appearance_refresh(self):
        """Worker-resident and parent-resident caches agree bitwise per tier."""
        spec = _spec()
        cloud = spec.cloud.copy()
        sharded_engine = self._cached_sharded_engine()
        flat_engine = RenderEngine(
            EngineConfig(
                backend="flat",
                geom_cache=True,
                cache_tolerance_px=0.0,
                cache_refine_margin=0.0,
                cache_termination_margin=0.0,
            )
        )
        n_views = 3
        poses = spec.view_poses(n_views)
        kwargs = dict(
            backgrounds=[spec.background] * n_views,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
        )

        def round_trip(expected_status):
            sharded = sharded_engine.render_batch(
                cloud, [spec.camera] * n_views, poses, **kwargs
            )
            flat = flat_engine.render_batch(cloud, [spec.camera] * n_views, poses, **kwargs)
            assert [v.cache_status for v in sharded.views] == [expected_status] * n_views
            assert [v.cache_status for v in flat.views] == [expected_status] * n_views
            _assert_views_equal(sharded.views, flat.views)
            sharded_engine.release(sharded)
            flat_engine.release(flat)

        round_trip("miss")
        round_trip("hit")
        cloud.apply_parameter_step(d_colors=np.full((len(cloud), 3), 0.015))
        round_trip("refresh")


class TestPoseQuantisedKeys:
    """Property: pose-quantised view keys bucket poses stably."""

    def _key(self, translation, quantum):
        from repro.gaussians.camera import Camera
        from repro.gaussians.geom_cache import view_key
        from repro.gaussians.se3 import SE3

        camera = Camera.from_fov(16, 12, fov_x_degrees=60.0)
        pose = SE3(np.eye(3), np.asarray(translation, dtype=np.float64))
        return view_key(camera, pose, 16, 4, True, pose_quantum=quantum)

    @given(
        base=st.lists(
            st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
            min_size=3,
            max_size=3,
        ),
        quantum=st.sampled_from([0.01, 0.05, 0.25, 1.0]),
        jitter=st.floats(min_value=-1.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_in_bucket_nudges_preserve_the_key(self, base, quantum, jitter):
        translation = np.asarray(base)
        buckets = np.round(translation / quantum)
        # Keep the sample safely inside its bucket so a sub-half-quantum
        # nudge provably cannot cross a rounding boundary.
        centred = (buckets + 0.2 * jitter) * quantum
        nudge = 0.2 * jitter * quantum
        assert self._key(centred, quantum) == self._key(centred + nudge, quantum)

    @given(
        base=st.lists(
            st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
            min_size=3,
            max_size=3,
        ),
        quantum=st.sampled_from([0.01, 0.05, 0.25, 1.0]),
        shift_buckets=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_cross_bucket_shifts_change_the_key(self, base, quantum, shift_buckets):
        translation = (np.round(np.asarray(base) / quantum) + 0.1) * quantum
        shifted = translation + shift_buckets * quantum
        assert self._key(translation, quantum) != self._key(shifted, quantum)

    @given(
        base=st.lists(
            st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
            min_size=3,
            max_size=3,
        ),
        nudge=st.floats(min_value=1e-12, max_value=1e-3),
    )
    @settings(max_examples=100, deadline=None)
    def test_zero_quantum_keys_are_exact(self, base, nudge):
        translation = np.asarray(base)
        assert self._key(translation, 0.0) == self._key(translation.copy(), 0.0)
        assert self._key(translation, 0.0) != self._key(translation + nudge, 0.0)


class TestShardedMapping:
    @pytest.fixture(scope="class")
    def sequence(self):
        from repro.datasets import make_sequence

        return make_sequence("tum", n_frames=4, resolution_scale=0.35)

    def _seeded(self, sequence, mapper, n_keyframes: int = 3):
        from repro.gaussians import GaussianCloud
        from repro.slam import Frame

        cloud = GaussianCloud.empty()
        keyframes = []
        for index in range(n_keyframes):
            observation = sequence.frame(index)
            keyframes.append(Frame.from_rgbd(observation).with_pose(observation.gt_pose_cw))
        mapper.initialize_map(cloud, keyframes[0], stride=6)
        return cloud, keyframes

    def test_mapping_through_sharded_engine_matches_flat(self, sequence):
        from repro.slam import MappingConfig, StreamingMapper

        config = MappingConfig(n_iterations=2, batch_views=3, geom_cache=False)
        flat_mapper = StreamingMapper(config, engine=_flat_engine())
        cloud_flat, keyframes = self._seeded(sequence, flat_mapper)
        sharded_mapper = StreamingMapper(config, engine=_sharded_engine())
        cloud_sharded = cloud_flat.copy()

        result_flat = flat_mapper.map(cloud_flat, keyframes)
        result_sharded = sharded_mapper.map(cloud_sharded, keyframes)
        assert result_sharded.losses == result_flat.losses
        np.testing.assert_array_equal(cloud_sharded.positions, cloud_flat.positions)
        np.testing.assert_array_equal(cloud_sharded.colors, cloud_flat.colors)

    def test_snapshots_carry_shard_attribution(self, sequence):
        from repro.slam import MappingConfig, StreamingMapper

        config = MappingConfig(n_iterations=1, batch_views=2, geom_cache=False)
        mapper = StreamingMapper(config, engine=_sharded_engine())
        cloud, keyframes = self._seeded(sequence, mapper)
        result = mapper.map(cloud, keyframes)
        assert result.snapshots
        for snapshot in result.snapshots:
            assert snapshot.shard_workers == N_WORKERS
            assert 0 <= snapshot.shard_worker_id < N_WORKERS
            assert snapshot.shard_seconds >= 0.0
            assert snapshot.shard_stitch_seconds >= 0.0
            # Step 1-2 planning ran inside the workers, and the measured
            # per-view plan time rides along on the snapshot.
            assert snapshot.plan_site == "worker"
            assert snapshot.shard_plan_seconds >= 0.0

    def test_mapping_window_heals_under_faults(self, sequence):
        """A worker crash mid-window never perturbs the optimization.

        The sharded mapper under a crash schedule must produce the same
        losses and the same cloud, bit for bit, as the flat mapper — and the
        snapshots must carry the fault accounting for the profiling report.
        """
        from repro.slam import MappingConfig, StreamingMapper

        config = MappingConfig(n_iterations=2, batch_views=3, geom_cache=False)
        flat_mapper = StreamingMapper(config, engine=_flat_engine())
        cloud_flat, keyframes = self._seeded(sequence, flat_mapper)
        faulted_engine = RenderEngine(
            EngineConfig(
                backend="sharded",
                geom_cache=False,
                shard_workers=N_WORKERS,
                shard_deadline_s=10.0,
                shard_backoff_s=0.5,
            )
        )
        sharded_mapper = StreamingMapper(config, engine=faulted_engine)
        cloud_sharded = cloud_flat.copy()

        result_flat = flat_mapper.map(cloud_flat, keyframes)
        with fault_plan("crash@0.*"):
            result_sharded = sharded_mapper.map(cloud_sharded, keyframes)
        assert result_sharded.losses == result_flat.losses
        np.testing.assert_array_equal(cloud_sharded.positions, cloud_flat.positions)
        np.testing.assert_array_equal(cloud_sharded.colors, cloud_flat.colors)
        # Batch-level fault counts ride on every view's snapshot; aggregate
        # from view 0 only (the batch_amortization_report convention).
        total_events = sum(
            snapshot.fault_events
            for snapshot in result_sharded.snapshots
            if snapshot.view_index == 0
        )
        assert total_events >= 1

    def test_mapping_config_threads_shard_workers_into_engine(self):
        from repro.slam import MappingConfig, StreamingMapper

        mapper = StreamingMapper(MappingConfig(shard_workers=3))
        assert mapper.engine.config.shard_workers == 3


class TestShardAccounting:
    def _snapshot(self, **overrides):
        from repro.slam.records import WorkloadSnapshot

        fields = dict(
            stage="mapping",
            frame_index=0,
            iteration=0,
            is_keyframe=True,
            height=8,
            width=8,
            tile_size=8,
            subtile_size=4,
            resolution_fraction=1.0,
            n_gaussians_total=16,
            n_gaussians_active=16,
            n_projected=16,
            n_tile_pairs=16,
            loss=0.1,
            fragments_per_pixel=np.full((8, 8), 4, dtype=np.int64),
            batch_size=4,
        )
        fields.update(overrides)
        return WorkloadSnapshot(**fields)

    def test_gpu_model_amortises_fragment_stages_across_shards(self):
        from repro.hardware.gpu_model import EdgeGPUModel

        model = EdgeGPUModel("onx")
        serial = model.iteration_latency(self._snapshot(shard_workers=1))
        sharded = model.iteration_latency(self._snapshot(shard_workers=4))
        assert sharded.rendering < serial.rendering
        assert sharded.preprocessing == serial.preprocessing  # plan stays serial
        # At most one worker per view helps.
        capped = model.iteration_latency(self._snapshot(batch_size=2, shard_workers=8))
        wide = model.iteration_latency(self._snapshot(batch_size=8, shard_workers=8))
        assert wide.rendering < capped.rendering

    def test_batch_amortization_report_isolates_shard_share(self):
        from repro.profiling import batch_amortization_report

        snapshots = [
            self._snapshot(shard_workers=4, shard_worker_id=index % 4, shard_seconds=0.01,
                           shard_stitch_seconds=0.002, view_index=index)
            for index in range(4)
        ]
        report = batch_amortization_report(snapshots)
        assert report["mean_shard_workers"] == 4.0
        assert report["n_sharded_views"] == 4.0
        assert report["shard_amortization"] > 1.0
        assert report["stitch_s"] == pytest.approx(0.008)
        assert report["speedup"] > report["shard_amortization"]  # batching adds more
