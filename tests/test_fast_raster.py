"""Unit tests for the flat fragment-list rasterizer backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians import (
    Camera,
    GaussianCloud,
    SE3,
    build_flat_fragments,
    get_default_backend,
    rasterize,
    render_backward,
    segmented_exclusive_cumprod,
    set_default_backend,
    use_backend,
)
from repro.gaussians.fast_raster import rasterize_flat


@pytest.fixture()
def scene(small_cloud, small_camera, simple_pose):
    return small_cloud, small_camera, simple_pose


class TestBackendSelection:
    def test_default_backend_is_flat(self):
        # The flat fast path is the production default since the backend
        # flip; REPRO_RASTER_BACKEND=tile is the escape hatch back to the
        # reference loop.
        assert get_default_backend() == "flat"

    def test_backend_argument_selects_implementation(self, scene):
        cloud, camera, pose = scene
        assert rasterize(cloud, camera, pose, backend="tile").backend == "tile"
        assert rasterize(cloud, camera, pose, backend="flat").backend == "flat"

    def test_unknown_backend_rejected(self, scene):
        cloud, camera, pose = scene
        with pytest.raises(ValueError, match="unknown rasterizer backend"):
            rasterize(cloud, camera, pose, backend="cuda")
        with pytest.raises(ValueError, match="unknown rasterizer backend"):
            set_default_backend("cuda")

    def test_use_backend_scopes_the_default(self, scene):
        cloud, camera, pose = scene
        with use_backend("tile"):
            assert get_default_backend() == "tile"
            assert rasterize(cloud, camera, pose).backend == "tile"
        assert get_default_backend() == "flat"

    def test_set_default_backend_returns_previous(self):
        previous = set_default_backend("tile")
        try:
            assert previous == "flat"
            assert get_default_backend() == "tile"
        finally:
            set_default_backend(previous)


class TestFlatMatchesTile:
    def test_forward_outputs_match(self, scene):
        cloud, camera, pose = scene
        bg = np.array([0.1, 0.2, 0.3])
        tile = rasterize(cloud, camera, pose, background=bg, backend="tile")
        flat = rasterize(cloud, camera, pose, background=bg, backend="flat")
        np.testing.assert_allclose(flat.image, tile.image, atol=1e-10)
        np.testing.assert_allclose(flat.depth, tile.depth, atol=1e-10)
        np.testing.assert_allclose(flat.alpha, tile.alpha, atol=1e-10)
        assert np.array_equal(flat.fragments_per_pixel, tile.fragments_per_pixel)
        assert flat.n_fragments == tile.n_fragments

    def test_tile_caches_match(self, scene):
        cloud, camera, pose = scene
        tile = rasterize(cloud, camera, pose, backend="tile")
        flat = rasterize(cloud, camera, pose, backend="flat")
        assert len(flat.tile_caches) == len(tile.tile_caches)
        for ct, cf in zip(tile.tile_caches, flat.tile_caches):
            assert ct.tile_id == cf.tile_id
            assert np.array_equal(ct.rows, cf.rows)
            np.testing.assert_allclose(cf.deltas, ct.deltas, atol=1e-12)
            np.testing.assert_allclose(cf.alphas, ct.alphas, atol=1e-12)
            np.testing.assert_allclose(
                cf.transmittance_before, ct.transmittance_before, atol=1e-12
            )
            np.testing.assert_allclose(cf.weights, ct.weights, atol=1e-12)
            assert np.array_equal(cf.processed, ct.processed)
            assert np.array_equal(cf.clamp_mask, ct.clamp_mask)

    def test_backward_dispatches_on_result_backend(self, scene):
        cloud, camera, pose = scene
        flat = rasterize(cloud, camera, pose, backend="flat")
        tile = rasterize(cloud, camera, pose, backend="tile")
        rng = np.random.default_rng(3)
        dL = rng.uniform(-1, 1, size=tile.image.shape)
        grads_tile = render_backward(tile, cloud, dL)
        grads_flat = render_backward(flat, cloud, dL)  # auto-selects flat BP
        np.testing.assert_allclose(grads_flat.positions, grads_tile.positions, atol=1e-8)
        np.testing.assert_allclose(grads_flat.pose_twist, grads_tile.pose_twist, atol=1e-8)

    def test_precomputed_projection_reuse(self, scene):
        cloud, camera, pose = scene
        tile = rasterize(cloud, camera, pose, backend="tile")
        flat = rasterize(
            cloud,
            camera,
            pose,
            backend="flat",
            precomputed=(tile.projected, tile.intersections),
        )
        np.testing.assert_allclose(flat.image, tile.image, atol=1e-10)
        assert flat.projected is tile.projected


class TestDegenerateInputs:
    """Zero-Gaussian, all-culled and minimal-grid inputs must render cleanly."""

    @pytest.mark.parametrize("backend", ["tile", "flat"])
    def test_zero_gaussian_cloud(self, backend):
        camera = Camera.from_fov(20, 12, fov_x_degrees=70.0)
        pose = SE3.identity()
        bg = np.array([0.2, 0.4, 0.6])
        result = rasterize(GaussianCloud.empty(), camera, pose, background=bg, backend=backend)
        assert result.n_fragments == 0
        assert result.tile_caches == []
        np.testing.assert_allclose(result.image, np.tile(bg, (12, 20, 1)))
        assert not result.depth.any()
        assert not result.alpha.any()
        assert result.fragments_per_subtile().sum() == 0

    @pytest.mark.parametrize("backend", ["tile", "flat"])
    def test_all_culled_cloud(self, backend):
        # Every Gaussian sits behind the camera.
        points = np.array([[0.0, 0.0, -5.0], [0.2, -0.1, -3.0], [1.0, 1.0, -9.0]])
        cloud = GaussianCloud.from_points(points, np.full((3, 3), 0.5), scale=0.1)
        camera = Camera.from_fov(20, 12, fov_x_degrees=70.0)
        result = rasterize(cloud, camera, SE3.identity(), backend=backend)
        assert result.projected.n_visible == 0
        assert result.n_fragments == 0
        assert result.tile_caches == []

    @pytest.mark.parametrize("backend", ["tile", "flat"])
    def test_one_by_one_tile_image(self, backend):
        # A 1x1-pixel image with 1x1 tiles: the smallest possible grid.
        cloud = GaussianCloud.from_points(
            np.array([[0.0, 0.0, 1.0]]), np.array([[0.9, 0.1, 0.1]]), scale=0.3, opacity=0.8
        )
        camera = Camera.from_fov(1, 1, fov_x_degrees=70.0)
        result = rasterize(
            cloud, camera, SE3.identity(), tile_size=1, subtile_size=1, backend=backend
        )
        assert result.image.shape == (1, 1, 3)
        assert result.grid.n_tiles == 1
        assert result.fragments_per_subtile().shape == (1, 1)
        assert result.n_fragments == result.fragments_per_pixel.sum()
        assert result.alpha[0, 0] > 0.0

    @pytest.mark.parametrize("backend", ["tile", "flat"])
    def test_single_tile_image(self, backend):
        cloud = GaussianCloud.from_points(
            np.array([[0.0, 0.0, 1.5]]), np.array([[0.2, 0.9, 0.3]]), scale=0.2
        )
        camera = Camera.from_fov(16, 16, fov_x_degrees=70.0)
        result = rasterize(cloud, camera, SE3.identity(), backend=backend)
        assert result.grid.n_tiles == 1
        assert len(result.tile_caches) == 1

    def test_empty_cloud_backward(self):
        camera = Camera.from_fov(8, 8, fov_x_degrees=70.0)
        result = rasterize(GaussianCloud.empty(), camera, SE3.identity(), backend="flat")
        grads = render_backward(result, GaussianCloud.empty(), np.zeros((8, 8, 3)))
        assert grads.positions.shape == (0, 3)
        np.testing.assert_array_equal(grads.pose_twist, np.zeros(6))


class TestFlatFragments:
    def test_layout_covers_all_intersections(self, scene):
        cloud, camera, pose = scene
        result = rasterize(cloud, camera, pose, backend="flat")
        fragments = build_flat_fragments(result.intersections)
        # Dense fragment count = sum over tiles of P_t * M_t.
        expected = sum(
            c.n_pixels * c.n_gaussians for c in result.tile_caches
        )
        assert fragments.n_fragments == expected
        assert fragments.rows.shape == (expected,)
        assert fragments.pixel_ids.shape == (expected,)
        assert fragments.tile_ids.shape == (expected,)
        # Each pixel's segment is depth-ordered 0..M-1.
        assert fragments.pos_in_pixel.max() == fragments.max_per_pixel - 1
        # Every fragment's pixel belongs to its tile's pixel rectangle.
        grid = result.grid
        for tile_id, start, stop in fragments.tile_slices:
            x0, y0, x1, y1 = grid.tile_bounds(tile_id)
            pix = fragments.pixel_ids[start:stop]
            us, vs = pix % camera.width, pix // camera.width
            assert us.min() >= x0 and us.max() < x1
            assert vs.min() >= y0 and vs.max() < y1

    def test_empty_intersections(self):
        camera = Camera.from_fov(8, 8, fov_x_degrees=70.0)
        result = rasterize(GaussianCloud.empty(), camera, SE3.identity())
        fragments = build_flat_fragments(result.intersections)
        assert fragments.n_fragments == 0
        assert fragments.rows.size == 0
        assert fragments.pos_in_pixel.size == 0


class TestSegmentedCumprod:
    def test_matches_per_segment_numpy_cumprod(self):
        rng = np.random.default_rng(0)
        lengths = [1, 4, 7, 2, 31, 1, 16]
        values = rng.uniform(0.1, 1.0, size=sum(lengths))
        pos = np.concatenate([np.arange(n) for n in lengths])
        out = segmented_exclusive_cumprod(values, pos, max(lengths))
        start = 0
        for n in lengths:
            seg = values[start : start + n]
            expected = np.concatenate([[1.0], np.cumprod(seg)[:-1]])
            np.testing.assert_allclose(out[start : start + n], expected, rtol=1e-12)
            start += n

    def test_empty_input(self):
        out = segmented_exclusive_cumprod(np.zeros(0), np.zeros(0, dtype=int), 0)
        assert out.size == 0

    def test_matches_flat_render_transmittance(self, scene):
        # The generic scan must agree with the blocked per-tile cumprod the
        # flat forward pass uses.
        cloud, camera, pose = scene
        result = rasterize(cloud, camera, pose, backend="flat")
        fragments = build_flat_fragments(result.intersections)
        one_minus_parts = [1.0 - c.alphas.ravel() for c in result.tile_caches]
        trans_parts = [c.transmittance_before.ravel() for c in result.tile_caches]
        one_minus = np.concatenate(one_minus_parts)
        expected = np.concatenate(trans_parts)
        scanned = segmented_exclusive_cumprod(
            one_minus, fragments.pos_in_pixel, fragments.max_per_pixel
        )
        np.testing.assert_allclose(scanned, expected, rtol=1e-12, atol=1e-15)


def test_rasterize_flat_direct_call(scene):
    cloud, camera, pose = scene
    result = rasterize_flat(cloud, camera, pose)
    assert result.backend == "flat"
    reference = rasterize(cloud, camera, pose)
    np.testing.assert_allclose(result.image, reference.image, atol=1e-10)
