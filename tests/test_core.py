"""Tests for the RTGS algorithm: importance, pruning, downsampling, baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdaptiveGaussianPruner,
    DownsamplingConfig,
    DynamicDownsampler,
    FixedRatioPruner,
    FlashGSPruner,
    ImportanceScorer,
    LightGaussianPruner,
    MaskGaussianPruner,
    PruningConfig,
    RTGSAlgorithmConfig,
    TamingPruner,
    build_pipeline,
    make_pruner,
)
from repro.gaussians import rasterize, render_backward
from repro.slam import Frame, mono_gs, photo_slam, photometric_geometric_loss


def _gradients_for(sequence, frame_index=1):
    cloud = sequence.scene.cloud.copy()
    frame = Frame.from_rgbd(sequence.frame(frame_index))
    render = rasterize(cloud, frame.camera, sequence.frame(frame_index - 1).gt_pose_cw)
    loss = photometric_geometric_loss(render, frame)
    grads = render_backward(render, cloud, loss.dL_dimage, loss.dL_ddepth)
    return cloud, frame, render, grads


class TestImportanceScorer:
    def test_score_shape_and_nonnegativity(self, tiny_sequence):
        cloud, _, _, grads = _gradients_for(tiny_sequence)
        scorer = ImportanceScorer()
        scores = scorer.score_single(grads)
        assert scores.shape == (len(cloud),)
        assert np.all(scores >= 0)

    def test_accumulation_averages(self, tiny_sequence):
        _, _, _, grads = _gradients_for(tiny_sequence)
        scorer = ImportanceScorer()
        single = scorer.observe(grads)
        scorer.observe(grads)
        assert np.allclose(scorer.accumulated(), single)
        assert scorer.iterations_seen == 2

    def test_lambda_weighting_changes_scores(self, tiny_sequence):
        _, _, _, grads = _gradients_for(tiny_sequence)
        low = ImportanceScorer(covariance_weight=0.0).score_single(grads)
        high = ImportanceScorer(covariance_weight=2.0).score_single(grads)
        assert high.sum() > low.sum()

    def test_resize_and_keep_rows(self, tiny_sequence):
        _, _, _, grads = _gradients_for(tiny_sequence)
        scorer = ImportanceScorer()
        scorer.observe(grads)
        n = scorer.accumulated().shape[0]
        scorer.keep_rows(np.arange(n) % 2 == 0)
        assert scorer.accumulated().shape[0] == (n + 1) // 2
        scorer.resize(n)
        assert scorer.accumulated().shape[0] == n


class TestAdaptiveGaussianPruner:
    def test_prunes_low_importance_gaussians(self, tiny_sequence):
        cloud, frame, render, grads = _gradients_for(tiny_sequence)
        pruner = AdaptiveGaussianPruner(
            PruningConfig(initial_interval=1, prune_fraction_per_window=0.2, min_gaussians=16)
        )
        before = cloud.n_total
        pruner.begin_frame(cloud, frame)
        pruner.after_backward(cloud, grads, render, 0)
        pruner.end_frame(cloud, is_keyframe=False)
        assert cloud.n_total < before
        assert pruner.stats.removed_total > 0

    def test_respects_max_prune_ratio(self, tiny_sequence):
        cloud, frame, render, grads = _gradients_for(tiny_sequence)
        config = PruningConfig(
            initial_interval=1,
            prune_fraction_per_window=0.9,
            max_prune_ratio=0.3,
            min_gaussians=8,
        )
        pruner = AdaptiveGaussianPruner(config)
        before = cloud.n_total
        for _ in range(5):
            pruner.begin_frame(cloud, frame)
            pruner.after_backward(cloud, grads, render, 0)
            pruner.end_frame(cloud, is_keyframe=False)
            # Re-deriving gradients every round would be expensive; reusing the
            # stale ones is fine for exercising the budget logic.
        assert cloud.n_total >= before * (1.0 - config.max_prune_ratio) - 1

    def test_interval_adapts_with_change_ratio(self, tiny_sequence):
        cloud, frame, render, grads = _gradients_for(tiny_sequence)
        pruner = AdaptiveGaussianPruner(PruningConfig(initial_interval=1, min_gaussians=10**6))
        pruner.begin_frame(cloud, frame)
        pruner.after_backward(cloud, grads, render, 0)  # first window: no ratio yet
        assert pruner.interval == 1
        pruner.after_backward(cloud, grads, render, 1)  # identical intersections -> doubled
        assert pruner.interval == 2
        assert pruner.stats.change_ratios[-1] == pytest.approx(0.0)

    def test_removal_listener_invoked(self, tiny_sequence):
        cloud, frame, render, grads = _gradients_for(tiny_sequence)
        pruner = AdaptiveGaussianPruner(
            PruningConfig(initial_interval=1, prune_fraction_per_window=0.2, min_gaussians=16)
        )
        received = []
        pruner.add_removal_listener(lambda keep: received.append(keep.copy()))
        pruner.begin_frame(cloud, frame)
        pruner.after_backward(cloud, grads, render, 0)
        pruner.end_frame(cloud, is_keyframe=False)
        assert received and received[0].dtype == bool

    def test_keeps_high_importance_gaussians(self, tiny_sequence):
        cloud, frame, render, grads = _gradients_for(tiny_sequence)
        scorer = ImportanceScorer(covariance_weight=0.8)
        scores = scorer.score_single(grads)
        top_idx = set(np.argsort(scores)[-10:].tolist())
        positions_top = cloud.positions[sorted(top_idx)].copy()
        pruner = AdaptiveGaussianPruner(
            PruningConfig(initial_interval=1, prune_fraction_per_window=0.3, min_gaussians=16)
        )
        pruner.begin_frame(cloud, frame)
        pruner.after_backward(cloud, grads, render, 0)
        pruner.end_frame(cloud, is_keyframe=False)
        # Every top-importance Gaussian must survive the prune.
        remaining = cloud.positions
        for position in positions_top:
            assert np.any(np.all(np.isclose(remaining, position), axis=1))


class TestFixedRatioAndBaselines:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FixedRatioPruner(0.3),
            lambda: LightGaussianPruner(0.3),
            lambda: FlashGSPruner(0.3),
            lambda: MaskGaussianPruner(0.3),
        ],
    )
    def test_pruners_remove_requested_fraction(self, tiny_sequence, factory):
        cloud, frame, render, grads = _gradients_for(tiny_sequence)
        pruner = factory()
        before = cloud.n_total
        pruner.begin_frame(cloud, frame)
        pruner.after_backward(cloud, grads, render, 0)
        pruner.end_frame(cloud, is_keyframe=False)
        assert cloud.n_total == pytest.approx(before * 0.7, rel=0.05)

    def test_taming_needs_warmup(self, tiny_sequence):
        cloud, frame, render, grads = _gradients_for(tiny_sequence)
        pruner = TamingPruner(prune_ratio=0.3, warmup_iterations=50)
        before = cloud.n_total
        pruner.begin_frame(cloud, frame)
        pruner.after_backward(cloud, grads, render, 0)
        pruner.end_frame(cloud, is_keyframe=False)
        # Not enough history -> no pruning yet (the paper's criticism).
        assert cloud.n_total == before

    def test_lightgaussian_charges_extra_ops(self, tiny_sequence):
        cloud, frame, render, grads = _gradients_for(tiny_sequence)
        pruner = LightGaussianPruner(0.3)
        pruner.begin_frame(cloud, frame)
        pruner.after_backward(cloud, grads, render, 0)
        assert pruner.stats.extra_evaluation_ops > 0

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            FixedRatioPruner(1.2)
        with pytest.raises(ValueError):
            LightGaussianPruner(-0.1)

    def test_make_pruner_factory(self):
        assert isinstance(make_pruner("rtgs"), AdaptiveGaussianPruner)
        assert isinstance(make_pruner("fixed", prune_ratio=0.4), FixedRatioPruner)
        assert isinstance(make_pruner("taming"), TamingPruner)
        with pytest.raises(ValueError):
            make_pruner("unknown")


class TestDynamicDownsampler:
    def test_schedule_matches_paper_formula(self):
        downsampler = DynamicDownsampler(DownsamplingConfig())
        # keyframe at index 4; subsequent non-keyframes grow 1/16 -> 1/8 -> 1/4 (cap).
        assert downsampler.resolution_fraction(4, True, 0) == 1.0
        assert downsampler.resolution_fraction(5, False, 4) == pytest.approx(1 / 16)
        assert downsampler.resolution_fraction(6, False, 4) == pytest.approx(1 / 8)
        assert downsampler.resolution_fraction(7, False, 4) == pytest.approx(1 / 4)
        assert downsampler.resolution_fraction(8, False, 4) == pytest.approx(1 / 4)
        assert downsampler.average_fraction() < 1.0

    def test_first_frame_without_keyframe_full_resolution(self):
        downsampler = DynamicDownsampler()
        assert downsampler.resolution_fraction(0, False, None) == 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DownsamplingConfig(initial_fraction=0.0)
        with pytest.raises(ValueError):
            DownsamplingConfig(initial_fraction=0.5, max_fraction=0.25)
        with pytest.raises(ValueError):
            DownsamplingConfig(growth_factor=0.5)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 50), st.integers(0, 50))
    def test_fraction_always_in_valid_range(self, frame_index, keyframe_index):
        downsampler = DynamicDownsampler()
        fraction = downsampler.resolution_fraction(
            max(frame_index, keyframe_index + 1), False, keyframe_index
        )
        assert 1 / 16 <= fraction <= 1.0


class TestBuildPipeline:
    def test_baseline_pipeline_has_no_hooks(self):
        pipeline = build_pipeline(mono_gs(fast=True))
        assert pipeline.tracking_hook is None
        assert pipeline.resolution_policy is None

    def test_rtgs_pipeline_attaches_both_techniques(self):
        pipeline = build_pipeline(mono_gs(fast=True), RTGSAlgorithmConfig())
        assert isinstance(pipeline.tracking_hook, AdaptiveGaussianPruner)
        assert isinstance(pipeline.resolution_policy, DynamicDownsampler)

    def test_photo_slam_gets_downsampling_but_no_tracking_pruner(self):
        pipeline = build_pipeline(photo_slam(fast=True), RTGSAlgorithmConfig())
        assert pipeline.tracking_hook is None
        assert isinstance(pipeline.resolution_policy, DynamicDownsampler)

    def test_explicit_pruner_overrides(self):
        pruner = FixedRatioPruner(0.25)
        pipeline = build_pipeline(mono_gs(fast=True), RTGSAlgorithmConfig(), pruner=pruner)
        assert pipeline.tracking_hook is pruner
