"""Tests for the GaussianCloud scene representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import BYTES_PER_GAUSSIAN, GaussianCloud


def _cloud(n=10, seed=0):
    rng = np.random.default_rng(seed)
    return GaussianCloud.from_points(
        rng.uniform(-1, 1, (n, 3)), rng.uniform(0, 1, (n, 3)), scale=0.1, opacity=0.6
    )


def test_from_points_shapes_and_defaults():
    cloud = _cloud(12)
    assert len(cloud) == 12
    assert cloud.n_active == 12
    assert cloud.opacities() == pytest.approx(np.full(12, 0.6), abs=1e-6)
    assert np.allclose(cloud.scales(), 0.1)


def test_covariances_are_symmetric_positive_definite():
    cloud = _cloud(8, seed=3)
    rng = np.random.default_rng(5)
    cloud.log_scales += rng.uniform(-0.5, 0.5, cloud.log_scales.shape)
    quats = rng.normal(size=cloud.rotations.shape)
    cloud.rotations = quats / np.linalg.norm(quats, axis=1, keepdims=True)
    covariances = cloud.covariances()
    assert np.allclose(covariances, np.transpose(covariances, (0, 2, 1)))
    eigenvalues = np.linalg.eigvalsh(covariances)
    assert np.all(eigenvalues > 0)


def test_mask_and_remove_inactive():
    cloud = _cloud(10)
    cloud.mask(np.array([0, 3, 7]))
    assert cloud.n_active == 7
    assert cloud.n_total == 10
    removed = cloud.remove_inactive()
    assert removed == 3
    assert cloud.n_total == 7
    assert cloud.n_active == 7


def test_extend_concatenates():
    a, b = _cloud(5, 1), _cloud(7, 2)
    a.extend(b)
    assert len(a) == 12


def test_memory_accounting():
    cloud = _cloud(100)
    assert cloud.memory_bytes() == 100 * BYTES_PER_GAUSSIAN
    cloud.mask(np.arange(50))
    assert cloud.memory_bytes(include_inactive=False) == 50 * BYTES_PER_GAUSSIAN


def test_keep_only_preserves_order():
    cloud = _cloud(6)
    original = cloud.positions.copy()
    keep = np.array([True, False, True, True, False, True])
    cloud.keep_only(keep)
    assert np.allclose(cloud.positions, original[keep])


def test_apply_parameter_step_respects_clipping():
    cloud = _cloud(4)
    cloud.apply_parameter_step(d_colors=np.full((4, 3), 10.0))
    assert np.all(cloud.colors <= 1.0)
    cloud.apply_parameter_step(d_opacity_logits=np.full(4, 100.0))
    assert np.all(cloud.opacity_logits <= 12.0)


def test_from_rgbd_backprojects_to_world(small_camera, simple_pose):
    depth = np.full((small_camera.height, small_camera.width), 2.0)
    image = np.full((small_camera.height, small_camera.width, 3), 0.5)
    cloud = GaussianCloud.from_rgbd(image, depth, small_camera, simple_pose, stride=8)
    assert len(cloud) > 0
    # All points must lie at depth 2 in front of the camera.
    cam_points = simple_pose.apply(cloud.positions)
    assert np.allclose(cam_points[:, 2], 2.0, atol=1e-6)


def test_from_rgbd_rejects_mismatched_shapes(small_camera, simple_pose):
    with pytest.raises(ValueError):
        GaussianCloud.from_rgbd(
            np.zeros((10, 10, 3)), np.zeros((12, 12)), small_camera, simple_pose
        )


def test_empty_cloud_operations():
    cloud = GaussianCloud.empty()
    assert len(cloud) == 0
    assert cloud.covariances().shape == (0, 3, 3)
    assert cloud.memory_bytes() == 0


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 40), st.floats(0.05, 0.95, allow_nan=False))
def test_opacity_sigmoid_inverse_property(n, opacity):
    rng = np.random.default_rng(n)
    cloud = GaussianCloud.from_points(
        rng.uniform(-1, 1, (n, 3)), rng.uniform(0, 1, (n, 3)), opacity=opacity
    )
    assert cloud.opacities() == pytest.approx(np.full(n, opacity), abs=1e-5)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 30))
def test_mask_then_remove_matches_direct_removal(n):
    cloud_a = _cloud(n, seed=n)
    cloud_b = cloud_a.copy()
    indices = np.arange(0, n, 2)
    cloud_a.mask(indices)
    cloud_a.remove_inactive()
    cloud_b.remove(indices)
    assert np.allclose(cloud_a.positions, cloud_b.positions)
