"""Tests for projection, tiling, sorting and the forward rasterizer."""

import numpy as np
import pytest

from repro.gaussians import (
    GaussianCloud,
    SE3,
    TileGrid,
    build_tile_lists,
    intersection_change_ratio,
    project_gaussians,
    rasterize,
)
from repro.gaussians.projection import perspective_jacobian


class TestProjection:
    def test_projected_count_and_depths(self, small_cloud, small_camera, simple_pose):
        projected = project_gaussians(small_cloud, small_camera, simple_pose)
        assert 0 < projected.n_visible <= len(small_cloud)
        assert np.all(projected.depths > 0)

    def test_behind_camera_culled(self, small_camera):
        cloud = GaussianCloud.from_points(
            np.array([[0.0, 0.0, -5.0], [0.0, 0.0, 5.0]]), np.full((2, 3), 0.5), scale=0.1
        )
        pose = SE3.identity()
        projected = project_gaussians(cloud, small_camera, pose)
        assert projected.n_visible == 1
        assert projected.indices[0] == 1

    def test_frustum_cull_rejects_lateral_near_plane_points(self, small_camera):
        # A point almost in the camera plane but far to the side must be culled
        # even though its z is positive (degenerate EWA case).
        cloud = GaussianCloud.from_points(
            np.array([[3.0, 0.0, 0.1], [0.0, 0.0, 2.0]]), np.full((2, 3), 0.5), scale=0.1
        )
        projected = project_gaussians(cloud, small_camera, SE3.identity())
        assert projected.n_visible == 1
        assert projected.indices[0] == 1

    def test_masked_gaussians_skipped(self, small_cloud, small_camera, simple_pose):
        full = project_gaussians(small_cloud, small_camera, simple_pose)
        masked_cloud = small_cloud.copy()
        masked_cloud.mask(np.arange(0, len(masked_cloud), 2))
        masked = project_gaussians(masked_cloud, small_camera, simple_pose)
        assert masked.n_visible < full.n_visible
        assert not np.intersect1d(masked.indices, np.arange(0, len(masked_cloud), 2)).size

    def test_conic_is_inverse_of_cov2d(self, small_cloud, small_camera, simple_pose):
        projected = project_gaussians(small_cloud, small_camera, simple_pose)
        products = projected.cov2d @ projected.conics
        identity = np.tile(np.eye(2), (projected.n_visible, 1, 1))
        assert np.allclose(products, identity, atol=1e-6)

    def test_perspective_jacobian_matches_finite_difference(self, small_camera):
        point = np.array([[0.3, -0.2, 1.7]])
        jac = perspective_jacobian(point, small_camera)[0]
        eps = 1e-6
        numeric = np.zeros((2, 3))
        for axis in range(3):
            plus, minus = point.copy(), point.copy()
            plus[0, axis] += eps
            minus[0, axis] -= eps
            numeric[:, axis] = (
                small_camera.project(plus)[0] - small_camera.project(minus)[0]
            ) / (2 * eps)
        assert np.allclose(jac, numeric, atol=1e-5)


class TestTiling:
    def test_grid_dimensions(self):
        grid = TileGrid(64, 48, tile_size=16, subtile_size=4)
        assert grid.n_tiles_x == 4 and grid.n_tiles_y == 3
        assert grid.n_tiles == 12
        assert grid.subtiles_per_tile == 16
        assert grid.pixels_per_subtile == 16

    def test_tile_bounds_cover_image_exactly(self):
        grid = TileGrid(50, 30, tile_size=16)
        covered = np.zeros((30, 50), dtype=int)
        for tile_id in range(grid.n_tiles):
            x0, y0, x1, y1 = grid.tile_bounds(tile_id)
            covered[y0:y1, x0:x1] += 1
        assert np.all(covered == 1)

    def test_invalid_subtile_size_rejected(self):
        with pytest.raises(ValueError):
            TileGrid(64, 48, tile_size=16, subtile_size=5)

    def test_tiles_overlapping_bounding_box(self):
        grid = TileGrid(64, 64, tile_size=16)
        tiles = grid.tiles_overlapping(np.array([8.0, 8.0]), 4.0)
        assert list(tiles) == [0]
        tiles = grid.tiles_overlapping(np.array([16.0, 16.0]), 4.0)
        assert set(tiles) == {0, 1, 4, 5}

    def test_offscreen_gaussian_gets_no_tiles(self):
        grid = TileGrid(64, 64, tile_size=16)
        assert grid.tiles_overlapping(np.array([500.0, 500.0]), 10.0).size == 0


class TestSorting:
    def test_per_tile_lists_are_depth_sorted(self, small_cloud, small_camera, simple_pose):
        projected = project_gaussians(small_cloud, small_camera, simple_pose)
        grid = TileGrid(small_camera.width, small_camera.height)
        intersections = build_tile_lists(projected, grid)
        assert intersections.n_pairs > 0
        for rows in intersections.per_tile:
            depths = projected.depths[rows]
            assert np.all(np.diff(depths) >= 0)

    def test_intersection_change_ratio_bounds(self):
        assert intersection_change_ratio(set(), set()) == 0.0
        assert intersection_change_ratio({1, 2}, {1, 2}) == 0.0
        assert intersection_change_ratio({1, 2}, {3, 4}) == 1.0
        assert 0.0 < intersection_change_ratio({1, 2, 3}, {1, 2, 4}) < 1.0


class TestRasterizer:
    def test_output_shapes_and_ranges(self, small_cloud, small_camera, simple_pose):
        result = rasterize(small_cloud, small_camera, simple_pose)
        assert result.image.shape == (small_camera.height, small_camera.width, 3)
        assert result.depth.shape == (small_camera.height, small_camera.width)
        assert np.all(result.image >= 0.0) and np.all(result.image <= 1.0)
        assert np.all(result.alpha >= 0.0) and np.all(result.alpha <= 1.0 + 1e-9)
        assert result.n_fragments > 0

    def test_empty_cloud_renders_background(self, small_camera, simple_pose):
        result = rasterize(
            GaussianCloud.empty(), small_camera, simple_pose, background=np.array([0.2, 0.4, 0.6])
        )
        assert np.allclose(result.image, [0.2, 0.4, 0.6])
        assert result.n_fragments == 0

    def test_opaque_wall_gives_full_alpha_and_correct_depth(self, small_camera):
        # A dense grid of opaque Gaussians at z = 2 should saturate alpha and
        # produce a blended depth close to 2 at central pixels.
        xs, ys = np.meshgrid(np.linspace(-1.5, 1.5, 30), np.linspace(-1.0, 1.0, 20))
        points = np.stack([xs.ravel(), ys.ravel(), np.full(xs.size, 2.0)], axis=1)
        cloud = GaussianCloud.from_points(points, np.full((xs.size, 3), 0.7), scale=0.12, opacity=0.95)
        result = rasterize(cloud, small_camera, SE3.identity())
        centre_alpha = result.alpha[10:22, 16:32]
        centre_depth = result.depth[10:22, 16:32]
        assert centre_alpha.mean() > 0.95
        assert np.allclose(centre_depth, 2.0, atol=0.1)

    def test_occlusion_front_gaussian_wins(self, small_camera):
        points = np.array([[0.0, 0.0, 1.0], [0.0, 0.0, 3.0]])
        colors = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        cloud = GaussianCloud.from_points(points, colors, scale=0.5, opacity=0.95)
        result = rasterize(cloud, small_camera, SE3.identity())
        centre = result.image[small_camera.height // 2, small_camera.width // 2]
        assert centre[0] > centre[2]

    def test_early_termination_bounds_fragments(self, small_camera):
        # Many opaque co-located Gaussians: early termination must stop well
        # before processing all of them at the central pixel.
        n = 50
        points = np.tile(np.array([[0.0, 0.0, 2.0]]), (n, 1))
        points[:, 2] += np.linspace(0, 0.5, n)
        cloud = GaussianCloud.from_points(points, np.full((n, 3), 0.5), scale=0.4, opacity=0.9)
        result = rasterize(cloud, small_camera, SE3.identity())
        centre_fragments = result.fragments_per_pixel[small_camera.height // 2, small_camera.width // 2]
        assert centre_fragments < n

    def test_precomputed_projection_reuse_matches(self, small_cloud, small_camera, simple_pose):
        baseline = rasterize(small_cloud, small_camera, simple_pose)
        reused = rasterize(
            small_cloud,
            small_camera,
            simple_pose,
            precomputed=(baseline.projected, baseline.intersections),
        )
        assert np.allclose(baseline.image, reused.image)
        assert np.allclose(baseline.depth, reused.depth)

    def test_fragments_per_subtile_sums_to_total(self, small_cloud, small_camera, simple_pose):
        result = rasterize(small_cloud, small_camera, simple_pose)
        assert result.fragments_per_subtile().sum() == result.n_fragments
