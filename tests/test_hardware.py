"""Tests for the hardware models: devices, energy, GPU baseline, RE/WSU/GMU/PE, plug-in."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    DEVICE_SPECS,
    AtomicAddModel,
    BenesNetwork,
    DISTWARModel,
    EdgeGPUModel,
    EnergyModel,
    EnergyParameters,
    GauSPUModel,
    GradientMergingUnit,
    PreprocessingEngine,
    RBBuffer,
    RTGSArchitectureConfig,
    RTGSFeatureFlags,
    RTGSInterface,
    RTGSPlugin,
    RTGSStatus,
    RenderingEngine,
    SchedulingMode,
    WorkloadSchedulingUnit,
    aggregation_reduction,
    energy_efficiency_improvement,
    evaluate_configurations,
    scale_device,
)


@pytest.fixture(scope="module")
def arch():
    return RTGSArchitectureConfig()


@pytest.fixture(scope="module")
def tracking_snapshot(tiny_slam_result):
    return tiny_slam_result.tracking_snapshots()[1]


class TestConfig:
    def test_paper_device_table(self):
        assert DEVICE_SPECS["rtgs"].area_mm2 == pytest.approx(28.41)
        assert DEVICE_SPECS["rtgs"].power_w == pytest.approx(8.11)
        assert DEVICE_SPECS["onx"].n_cores == 512
        assert DEVICE_SPECS["gauspu"].technology_nm == 12

    def test_total_sram_matches_table4(self, arch):
        assert arch.total_sram_kb == pytest.approx(197.0)

    def test_technology_scaling_reproduces_table5_rows(self):
        scaled_12 = scale_device(DEVICE_SPECS["rtgs"], 12)
        scaled_8 = scale_device(DEVICE_SPECS["rtgs"], 8)
        assert scaled_12.area_mm2 == pytest.approx(DEVICE_SPECS["rtgs-12nm"].area_mm2, rel=1e-6)
        assert scaled_8.power_w == pytest.approx(DEVICE_SPECS["rtgs-8nm"].power_w, rel=1e-6)
        with pytest.raises(ValueError):
            scale_device(DEVICE_SPECS["rtgs"], 5)

    def test_rb_buffer_latency_table(self, arch):
        assert arch.alpha_grad_cycles_baseline == 20
        assert arch.alpha_grad_cycles_reuse == 4


class TestEnergy:
    def test_energy_breakdown_sums(self):
        model = EnergyModel(EnergyParameters(), static_power_w=10.0)
        breakdown = model.energy(1e6, 1e5, 1e4, 1e3, latency_s=0.01)
        assert breakdown.total_j == pytest.approx(
            breakdown.compute_j
            + breakdown.sram_j
            + breakdown.l2_j
            + breakdown.dram_j
            + breakdown.static_j
        )
        assert breakdown.static_j == pytest.approx(0.1)

    def test_dram_dominates_sram_per_access(self):
        params = EnergyParameters()
        assert params.dram_access_energy > params.l2_access_energy > params.sram_access_energy

    def test_efficiency_improvement(self):
        assert energy_efficiency_improvement(10.0, 2.0) == pytest.approx(5.0)


class TestGPUBaseline:
    def test_rendering_stages_dominate(self, tracking_snapshot):
        model = EdgeGPUModel("onx")
        latency = model.iteration_latency(tracking_snapshot)
        dominant = latency.rendering + latency.rendering_bp
        assert dominant / latency.total > 0.6  # Observation 2

    def test_rtx3090_faster_than_onx(self, tracking_snapshot):
        onx = EdgeGPUModel("onx").iteration_latency(tracking_snapshot).total
        rtx = EdgeGPUModel("rtx3090").iteration_latency(tracking_snapshot).total
        assert rtx < onx

    def test_distwar_reduces_rendering_bp(self, tracking_snapshot):
        baseline = EdgeGPUModel("onx").iteration_latency(tracking_snapshot)
        distwar = EdgeGPUModel("onx", use_distwar=True).iteration_latency(tracking_snapshot)
        assert distwar.rendering_bp <= baseline.rendering_bp
        assert distwar.rendering == pytest.approx(baseline.rendering)

    def test_workload_scale_scales_latency(self, tracking_snapshot):
        small = EdgeGPUModel("onx", workload_scale=1.0).iteration_latency(tracking_snapshot).total
        large = EdgeGPUModel("onx", workload_scale=10.0).iteration_latency(tracking_snapshot).total
        assert large > 5 * small

    def test_energy_positive(self, tracking_snapshot):
        energy = EdgeGPUModel("onx").iteration_energy(tracking_snapshot)
        assert energy.total_j > 0


class TestAggregationModels:
    def test_gmu_beats_distwar_beats_atomic(self, tracking_snapshot):
        comparison = aggregation_reduction(tracking_snapshot)
        assert comparison["atomic"] >= comparison["distwar"]
        assert comparison["distwar"] >= comparison["gmu"]
        assert comparison["gmu_reduction"] > 0.3  # paper reports ~68%

    def test_empty_snapshot_zero_cycles(self, tracking_snapshot):
        import copy

        empty = copy.copy(tracking_snapshot)
        empty.per_tile_update_counts = []
        empty.per_tile_gaussian_ids = []
        assert AtomicAddModel().aggregation_cycles(empty) == 0.0
        assert DISTWARModel().aggregation_cycles(empty) == 0.0


class TestRenderingEngine:
    def test_forward_cycles_scale_with_fragments(self, arch):
        engine = RenderingEngine(arch)
        light = engine.forward_cycles(np.full(16, 5))
        heavy = engine.forward_cycles(np.full(16, 50))
        assert heavy > light

    def test_rb_buffer_reduces_backward_cycles(self, arch):
        fragments = np.full(16, 40)
        with_rb = RenderingEngine(arch, use_rb_buffer=True).backward_cycles(fragments)
        without_rb = RenderingEngine(arch, use_rb_buffer=False).backward_cycles(fragments)
        assert with_rb < without_rb

    def test_pipeline_balancing_reduces_cycles(self, arch):
        fragments = np.full(16, 40)
        balanced = RenderingEngine(arch, use_pipeline_balancing=True).subtile_cycles(fragments)
        unbalanced = RenderingEngine(arch, use_pipeline_balancing=False).subtile_cycles(fragments)
        assert balanced < unbalanced

    def test_pairing_reduces_imbalanced_subtile_cycles(self, arch):
        engine = RenderingEngine(arch)
        fragments = np.zeros(16, dtype=int)
        fragments[:8] = 100  # heavy half
        fragments[8:] = 2  # light half
        naive = engine.forward_cycles(fragments, pairing=np.arange(16).reshape(-1, 2))
        order = np.argsort(fragments)
        paired = np.stack([order[:8], order[::-1][:8]], axis=1)
        scheduled = engine.forward_cycles(fragments, pairing=paired)
        assert scheduled < naive

    def test_empty_subtile_zero_cycles(self, arch):
        engine = RenderingEngine(arch)
        assert engine.subtile_cycles(np.zeros(16, dtype=int)) == 0

    def test_rb_buffer_capacity_check(self, arch):
        assert RBBuffer(capacity_kb=16.0).supports_reuse(16)
        assert not RBBuffer(capacity_kb=0.001).supports_reuse(16)


class TestWSU:
    def _subtiles(self, rng, n=64, heavy_fraction=0.2):
        subtiles = []
        for index in range(n):
            base = 60 if rng.random() < heavy_fraction else 8
            subtiles.append(rng.integers(0, base + 1, size=16))
        return subtiles

    def test_streaming_and_pairing_reduce_cycles(self, arch):
        rng = np.random.default_rng(3)
        subtiles = self._subtiles(rng)
        wsu = WorkloadSchedulingUnit(arch)
        results = {
            mode: wsu.schedule(subtiles, mode).total_cycles
            for mode in (
                SchedulingMode.NONE,
                SchedulingMode.STREAMING,
                SchedulingMode.BOTH,
                SchedulingMode.IDEAL,
            )
        }
        assert results[SchedulingMode.STREAMING] <= results[SchedulingMode.NONE]
        assert results[SchedulingMode.BOTH] <= results[SchedulingMode.STREAMING]
        assert results[SchedulingMode.IDEAL] <= results[SchedulingMode.BOTH]

    def test_imbalance_metric_decreases(self, arch):
        rng = np.random.default_rng(5)
        subtiles = self._subtiles(rng)
        wsu = WorkloadSchedulingUnit(arch)
        none = wsu.schedule(subtiles, SchedulingMode.NONE)
        both = wsu.schedule(subtiles, SchedulingMode.BOTH)
        assert both.imbalance <= none.imbalance + 1e-9

    def test_pairing_uses_previous_iteration(self, arch):
        wsu = WorkloadSchedulingUnit(arch)
        first = [np.arange(16)]
        second = [np.arange(16)[::-1]]
        wsu.schedule(first, SchedulingMode.PAIRING)
        result = wsu.schedule(second, SchedulingMode.PAIRING)
        assert result.total_cycles > 0
        wsu.reset()
        assert wsu._previous_fragments is None

    def test_empty_iteration(self, arch):
        wsu = WorkloadSchedulingUnit(arch)
        result = wsu.schedule([], SchedulingMode.BOTH)
        assert result.total_cycles == 0


class TestGMU:
    def test_benes_structure(self):
        network = BenesNetwork(16)
        assert network.n_stages == 7
        assert network.n_switches == 7 * 8
        assert network.is_routable()
        with pytest.raises(ValueError):
            BenesNetwork(10)

    def test_merging_cycles_below_atomic(self, tracking_snapshot):
        gmu = GradientMergingUnit()
        atomic = AtomicAddModel().aggregation_cycles(tracking_snapshot)
        assert gmu.merging_cycles(tracking_snapshot) < atomic

    def test_tile_merging_scales_with_updates(self):
        gmu = GradientMergingUnit()
        small = gmu.tile_merging_cycles(np.array([1, 2, 3]))
        large = gmu.tile_merging_cycles(np.array([10, 20, 30]))
        assert large > small
        assert gmu.tile_merging_cycles(np.array([])) == 0.0


class TestPreprocessingEngine:
    def test_tracking_adds_pose_merge(self, tracking_snapshot, tiny_slam_result):
        pe = PreprocessingEngine()
        mapping_snapshot = tiny_slam_result.mapping_snapshots()[0]
        tracking_cycles = pe.preprocessing_bp_cycles(tracking_snapshot)
        assert tracking_cycles > 0
        assert pe.pose_merge_cycles(0) == 0.0
        assert pe.pose_merge_cycles(1000) > 0
        assert pe.preprocessing_bp_cycles(mapping_snapshot) > 0


class TestRTGSPlugin:
    def test_plugin_faster_than_gpu_baseline(self, tiny_slam_result):
        snapshots = tiny_slam_result.tracking_snapshots()
        baseline = EdgeGPUModel("onx").frame_latency(snapshots).total
        plugin = RTGSPlugin(host_device="onx").frame_latency(snapshots).total
        assert plugin < baseline

    def test_feature_flags_ablation_ordering(self, tiny_slam_result):
        snapshots = tiny_slam_result.tracking_snapshots()[:4]
        full = RTGSPlugin(features=RTGSFeatureFlags()).frame_latency(snapshots).total
        no_rb = RTGSPlugin(
            features=RTGSFeatureFlags(use_rb_buffer=False)
        ).frame_latency(snapshots).total
        no_gmu = RTGSPlugin(
            features=RTGSFeatureFlags(use_gmu=False)
        ).frame_latency(snapshots).total
        assert full <= no_rb
        assert full <= no_gmu

    def test_evaluate_configurations_shapes(self, tiny_slam_result):
        evaluations = evaluate_configurations(tiny_slam_result.all_snapshots(), "onx")
        assert set(evaluations) == {"baseline", "distwar", "rtgs_tracking_only", "rtgs"}
        assert evaluations["rtgs"].overall_fps > evaluations["baseline"].overall_fps
        assert evaluations["rtgs"].energy_per_frame_j < evaluations["baseline"].energy_per_frame_j
        assert (
            evaluations["rtgs"].overall_fps >= evaluations["rtgs_tracking_only"].overall_fps
        )

    def test_rtgs_beats_gauspu_and_rtx3090_baseline(self, tiny_slam_result):
        # Tab. 7 / Fig. 16 ordering: RTGS > GauSPU for tracking throughput on
        # the RTX 3090 host.  (GauSPU's wide RE array is under-filled by the
        # tiny test workloads, so we only assert the RTGS orderings here; the
        # benchmark harness evaluates the full-scale comparison.)
        snapshots = tiny_slam_result.tracking_snapshots()
        baseline = EdgeGPUModel("rtx3090").frame_latency(snapshots).total
        gauspu = GauSPUModel(host_device="rtx3090").frame_latency(snapshots).total
        rtgs = RTGSPlugin(host_device="rtx3090").frame_latency(snapshots).total
        assert rtgs < gauspu
        assert rtgs < baseline


class TestInterface:
    def test_keyframe_and_nonkeyframe_protocol(self):
        interface = RTGSInterface()
        interface.notify_preprocessing_done()
        keyframe = interface.RTGS_execute(0, is_keyframe=True)
        assert keyframe.status == RTGSStatus.IDLE
        assert keyframe.gaussians_updated and not keyframe.pose_written_back

        interface.notify_preprocessing_done()
        tracked = interface.RTGS_execute(1, is_keyframe=False)
        assert tracked.status == RTGSStatus.WAIT_PRUNING
        assert interface.RTGS_check_status(1) == RTGSStatus.WAIT_PRUNING
        assert interface.RTGS_check_status(1, blocking=True) == RTGSStatus.IDLE
        assert interface.transactions[1].pose_written_back

    def test_execute_requires_preprocessing(self):
        interface = RTGSInterface()
        with pytest.raises(RuntimeError):
            interface.RTGS_execute(0, is_keyframe=False)

    def test_busy_rejects_new_frame(self):
        interface = RTGSInterface()
        interface.notify_preprocessing_done()
        interface.RTGS_execute(0, is_keyframe=False)
        interface.notify_preprocessing_done()
        with pytest.raises(RuntimeError):
            interface.RTGS_execute(1, is_keyframe=False)

    def test_unknown_frame_is_idle(self):
        assert RTGSInterface().RTGS_check_status(99) == RTGSStatus.IDLE


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 80), min_size=16, max_size=16))
def test_wsu_pairing_never_worse_than_adjacent(pixel_loads):
    arch = RTGSArchitectureConfig()
    engine = RenderingEngine(arch)
    wsu = WorkloadSchedulingUnit(arch, engine=engine)
    fragments = np.asarray(pixel_loads)
    adjacent = engine.forward_cycles(fragments, pairing=np.arange(16).reshape(-1, 2))
    paired = engine.forward_cycles(fragments, pairing=wsu.pairing_for(fragments))
    assert paired <= adjacent
