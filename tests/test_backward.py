"""Gradient correctness tests: analytic backward vs finite differences."""

import numpy as np
import pytest

from repro.gaussians import GaussianCloud, SE3, rasterize, render_backward
from repro.gaussians.backward import rasterize_backward


@pytest.fixture(scope="module")
def scene(small_camera):
    rng = np.random.default_rng(11)
    n = 25
    points = rng.uniform(-0.35, 0.35, (n, 3))
    points[:, 2] *= 0.4
    colors = rng.uniform(0.2, 0.9, (n, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.13, opacity=0.6)
    cloud.log_scales += rng.uniform(-0.4, 0.4, (n, 3))
    quats = rng.normal(size=(n, 4))
    cloud.rotations = quats / np.linalg.norm(quats, axis=1, keepdims=True)
    pose = SE3.look_at(np.array([0.1, -0.15, -2.0]), np.zeros(3), up=(0, 1, 0))
    target_image = rng.uniform(0, 1, (small_camera.height, small_camera.width, 3))
    target_depth = rng.uniform(0.5, 3.0, (small_camera.height, small_camera.width))
    return cloud, pose, target_image, target_depth


def _loss(cloud, camera, pose, target_image, target_depth):
    result = rasterize(cloud, camera, pose)
    return 0.5 * np.sum((result.image - target_image) ** 2) + 0.5 * np.sum(
        (result.depth - target_depth) ** 2
    )


def _analytic_gradients(cloud, camera, pose, target_image, target_depth):
    result = rasterize(cloud, camera, pose)
    return render_backward(
        result, cloud, result.image - target_image, result.depth - target_depth
    )


@pytest.mark.parametrize(
    "parameter", ["positions", "colors", "log_scales", "opacity_logits", "rotations"]
)
def test_parameter_gradients_match_finite_differences(scene, small_camera, parameter):
    cloud, pose, target_image, target_depth = scene
    grads = _analytic_gradients(cloud, small_camera, pose, target_image, target_depth)
    analytic = getattr(grads, parameter)
    rng = np.random.default_rng(5)
    rows = rng.choice(len(cloud), size=3, replace=False)
    eps = 1e-5
    max_reference = max(np.abs(analytic).max(), 1e-6)
    for row in rows:
        if analytic.ndim == 1:
            columns = [None]
        else:
            columns = range(analytic.shape[1])
        for column in columns:
            plus, minus = cloud.copy(), cloud.copy()
            if column is None:
                getattr(plus, parameter)[row] += eps
                getattr(minus, parameter)[row] -= eps
                value = analytic[row]
            else:
                getattr(plus, parameter)[row, column] += eps
                getattr(minus, parameter)[row, column] -= eps
                value = analytic[row, column]
            numeric = (
                _loss(plus, small_camera, pose, target_image, target_depth)
                - _loss(minus, small_camera, pose, target_image, target_depth)
            ) / (2 * eps)
            assert value == pytest.approx(numeric, abs=max(1e-4 * max_reference, 1e-6))


def test_pose_gradient_matches_finite_differences(scene, small_camera):
    cloud, pose, target_image, target_depth = scene
    grads = _analytic_gradients(cloud, small_camera, pose, target_image, target_depth)
    eps = 1e-6
    numeric = np.zeros(6)
    for k in range(6):
        delta = np.zeros(6)
        delta[k] = eps
        numeric[k] = (
            _loss(cloud, small_camera, pose.retract(delta), target_image, target_depth)
            - _loss(cloud, small_camera, pose.retract(-delta), target_image, target_depth)
        ) / (2 * eps)
    scale = max(np.abs(numeric).max(), 1e-9)
    assert np.allclose(grads.pose_twist, numeric, atol=2e-3 * scale)


def test_per_gaussian_pose_contributions_sum_to_total(scene, small_camera):
    cloud, pose, target_image, target_depth = scene
    grads = _analytic_gradients(cloud, small_camera, pose, target_image, target_depth)
    assert np.allclose(grads.per_gaussian_pose.sum(axis=0), grads.pose_twist, atol=1e-9)


def test_gradient_trace_counts_consistent(scene, small_camera):
    cloud, pose, target_image, target_depth = scene
    result = rasterize(cloud, small_camera, pose)
    screen = rasterize_backward(result, result.image - target_image)
    trace = screen.trace
    assert trace.total_pixel_level_updates > 0
    assert trace.total_tile_level_updates <= trace.total_pixel_level_updates
    per_gaussian = trace.gaussian_level_updates(len(cloud))
    assert per_gaussian.sum() == trace.total_tile_level_updates


def test_zero_loss_gives_zero_gradients(scene, small_camera):
    cloud, pose, _, _ = scene
    result = rasterize(cloud, small_camera, pose)
    grads = render_backward(result, cloud, np.zeros_like(result.image), np.zeros_like(result.depth))
    assert np.allclose(grads.positions, 0.0)
    assert np.allclose(grads.pose_twist, 0.0)


def test_backward_shape_validation(scene, small_camera):
    cloud, pose, _, _ = scene
    result = rasterize(cloud, small_camera, pose)
    with pytest.raises(ValueError):
        rasterize_backward(result, np.zeros((3, 3, 3)))


def test_importance_inputs_nonnegative(scene, small_camera):
    cloud, pose, target_image, target_depth = scene
    grads = _analytic_gradients(cloud, small_camera, pose, target_image, target_depth)
    mu_norm, sigma_norm = grads.importance_inputs()
    assert np.all(mu_norm >= 0) and np.all(sigma_norm >= 0)
    assert mu_norm.shape == (len(cloud),)
