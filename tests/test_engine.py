"""Tests for the unified RenderEngine session API (`repro.engine`).

Covers: EngineConfig validation + env consolidation, backend registry
plumbing (including an end-to-end dummy third backend), managed arena
ownership (the `rasterize_batch` aliasing footgun regression), the batch
fallback that keeps batched rendering flat under a tile default, shim
deprecation + delegation, and profiling-sink snapshot emission.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ArenaInUseError,
    EngineConfig,
    FlatBackend,
    REGISTRY,
    RenderEngine,
    register_backend,
)
from repro.gaussians import (
    GaussianCloud,
    get_default_backend,
    rasterize,
    rasterize_batch,
    render_backward,
    set_default_backend,
)
from repro.gaussians.fast_raster import rasterize_flat
from repro.gaussians.rasterizer import rasterize_tile
from repro.testing.scenarios import DEFAULT_LIBRARY


def _spec(name: str = "dense_random"):
    return DEFAULT_LIBRARY.get(name).build()


def _render(engine: RenderEngine, spec, **kwargs):
    return engine.render(
        spec.cloud,
        spec.camera,
        spec.pose_cw,
        background=spec.background,
        tile_size=spec.tile_size,
        subtile_size=spec.subtile_size,
        **kwargs,
    )


class TestEngineConfig:
    def test_defaults_follow_process_backend(self):
        config = EngineConfig()
        assert config.backend is None
        assert config.tile_size == 16 and config.subtile_size == 4
        assert config.geom_cache

    def test_from_env_reads_consolidated_knobs(self):
        env = {
            "REPRO_RASTER_BACKEND": "tile",
            "REPRO_GEOM_CACHE": "off",
            "REPRO_TILE_SIZE": "8",
            "REPRO_SUBTILE_SIZE": "2",
        }
        config = EngineConfig.from_env(env)
        assert config.backend == "tile"
        assert not config.geom_cache
        assert config.tile_size == 8 and config.subtile_size == 2

    def test_from_env_defaults_and_overrides(self):
        config = EngineConfig.from_env({}, geom_cache=False, tile_size=32)
        assert config.backend is None
        assert not config.geom_cache
        assert config.tile_size == 32

    def test_from_env_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="REPRO_RASTER_BACKEND"):
            EngineConfig.from_env({"REPRO_RASTER_BACKEND": "cuda"})

    def test_from_env_rejects_bad_integer(self):
        with pytest.raises(ValueError, match="REPRO_TILE_SIZE"):
            EngineConfig.from_env({"REPRO_TILE_SIZE": "big"})

    def test_from_env_shard_workers(self):
        assert EngineConfig.from_env({}).shard_workers is None
        assert EngineConfig.from_env({"REPRO_SHARD_WORKERS": ""}).shard_workers is None
        assert EngineConfig.from_env({"REPRO_SHARD_WORKERS": "4"}).shard_workers == 4
        assert EngineConfig.from_env({"REPRO_SHARD_WORKERS": "0"}).shard_workers == 0

    def test_from_env_rejects_bad_shard_workers(self):
        with pytest.raises(ValueError, match="REPRO_SHARD_WORKERS"):
            EngineConfig.from_env({"REPRO_SHARD_WORKERS": "many"})
        with pytest.raises(ValueError, match="REPRO_SHARD_WORKERS"):
            EngineConfig.from_env({"REPRO_SHARD_WORKERS": "-1"})

    def test_from_env_fault_tolerance_knobs(self):
        config = EngineConfig.from_env({})
        assert config.shard_retry_limit == 2
        assert config.shard_deadline_s == 600.0
        assert config.shard_backoff_s == 30.0
        config = EngineConfig.from_env(
            {
                "REPRO_SHARD_RETRIES": "5",
                "REPRO_SHARD_DEADLINE_S": "12.5",
                "REPRO_SHARD_BACKOFF_S": "0",
            }
        )
        assert config.shard_retry_limit == 5
        assert config.shard_deadline_s == 12.5
        assert config.shard_backoff_s == 0.0
        # Empty values fall back to the defaults, like the other env knobs.
        config = EngineConfig.from_env(
            {
                "REPRO_SHARD_RETRIES": "",
                "REPRO_SHARD_DEADLINE_S": "",
                "REPRO_SHARD_BACKOFF_S": "",
            }
        )
        assert config.shard_retry_limit == 2
        assert config.shard_deadline_s == 600.0

    def test_from_env_rejects_bad_fault_tolerance_knobs(self):
        with pytest.raises(ValueError, match="REPRO_SHARD_RETRIES"):
            EngineConfig.from_env({"REPRO_SHARD_RETRIES": "lots"})
        with pytest.raises(ValueError, match="REPRO_SHARD_RETRIES"):
            EngineConfig.from_env({"REPRO_SHARD_RETRIES": "-1"})
        with pytest.raises(ValueError, match="REPRO_SHARD_DEADLINE_S"):
            EngineConfig.from_env({"REPRO_SHARD_DEADLINE_S": "slow"})
        with pytest.raises(ValueError, match="REPRO_SHARD_DEADLINE_S"):
            EngineConfig.from_env({"REPRO_SHARD_DEADLINE_S": "0"})
        with pytest.raises(ValueError, match="REPRO_SHARD_BACKOFF_S"):
            EngineConfig.from_env({"REPRO_SHARD_BACKOFF_S": "-0.5"})

    def test_fault_tolerance_overrides_beat_env(self):
        config = EngineConfig.from_env(
            {
                "REPRO_SHARD_RETRIES": "7",
                "REPRO_SHARD_DEADLINE_S": "99",
                "REPRO_SHARD_BACKOFF_S": "9",
            },
            shard_retry_limit=1,
            shard_deadline_s=3.0,
            shard_backoff_s=0.5,
        )
        assert config.shard_retry_limit == 1
        assert config.shard_deadline_s == 3.0
        assert config.shard_backoff_s == 0.5

    # -- conflicting-knob precedence -----------------------------------------
    def test_shard_workers_with_non_sharded_backend_is_recorded_but_inert(self):
        # REPRO_SHARD_WORKERS alongside a backend that never shards is not a
        # conflict: the knob is recorded verbatim (any sharded render through
        # the same engine would honour it) and tile renders are unaffected.
        config = EngineConfig.from_env(
            {"REPRO_SHARD_WORKERS": "4", "REPRO_RASTER_BACKEND": "tile"}
        )
        assert config.backend == "tile"
        assert config.shard_workers == 4
        spec = DEFAULT_LIBRARY.get("single_gaussian").build()
        render = _render(RenderEngine(config), spec)
        reference = _render(RenderEngine(EngineConfig(backend="tile")), spec)
        assert np.array_equal(render.image, reference.image)

    def test_sharded_backend_with_zero_workers_is_valid_serial_degradation(self):
        # sharded + REPRO_SHARD_WORKERS=0 is a documented degradation, not an
        # error: the backend reports itself unavailable for the matrix (with
        # the knob named) and renders serially via the flat work units.
        config = EngineConfig.from_env(
            {"REPRO_RASTER_BACKEND": "sharded", "REPRO_SHARD_WORKERS": "0"}
        )
        assert config.shard_workers == 0
        engine = RenderEngine(config)
        reason = engine.availability()
        assert reason is not None and reason.startswith("workers:0<2")
        assert "shard_workers knob" in reason
        spec = DEFAULT_LIBRARY.get("single_gaussian").build()
        render = _render(engine, spec)
        flat = _render(RenderEngine(EngineConfig(backend="flat", geom_cache=False)), spec)
        assert np.array_equal(render.image, flat.image)

    def test_conflicting_tile_subtile_env_rejected_at_config_time(self):
        # Tile/subtile conflicts must fail while still attributable to the
        # env knobs, not deep inside the tiling code at first render.
        with pytest.raises(ValueError, match="multiple"):
            EngineConfig.from_env({"REPRO_TILE_SIZE": "16", "REPRO_SUBTILE_SIZE": "3"})
        with pytest.raises(ValueError, match="must not exceed"):
            EngineConfig.from_env({"REPRO_TILE_SIZE": "4", "REPRO_SUBTILE_SIZE": "8"})

    def test_overrides_beat_env_on_conflict(self):
        # Documented precedence: explicit keyword overrides replace the
        # env-derived values — even when the env alone would be invalid in
        # combination with them the override decides.
        config = EngineConfig.from_env(
            {
                "REPRO_RASTER_BACKEND": "tile",
                "REPRO_SHARD_WORKERS": "4",
                "REPRO_GEOM_CACHE": "1",
            },
            backend="sharded",
            shard_workers=2,
            geom_cache=False,
        )
        assert config.backend == "sharded"
        assert config.shard_workers == 2
        assert not config.geom_cache

    # -- async-pipeline knobs -------------------------------------------------
    def test_from_env_async_pipeline_knobs(self):
        config = EngineConfig.from_env({})
        assert not config.async_pipeline
        assert config.async_depth == 1
        config = EngineConfig.from_env(
            {"REPRO_ASYNC_PIPELINE": "1", "REPRO_ASYNC_DEPTH": "3"}
        )
        assert config.async_pipeline
        assert config.async_depth == 3
        # Falsey spellings and the empty string keep the overlap off, like
        # the other boolean env knobs.
        for raw in ("", "0", "off", "false", "OFF"):
            assert not EngineConfig.from_env({"REPRO_ASYNC_PIPELINE": raw}).async_pipeline

    def test_from_env_rejects_bad_async_depth(self):
        with pytest.raises(ValueError, match="REPRO_ASYNC_DEPTH"):
            EngineConfig.from_env({"REPRO_ASYNC_DEPTH": "deep"})
        with pytest.raises(ValueError, match="REPRO_ASYNC_DEPTH"):
            EngineConfig.from_env({"REPRO_ASYNC_DEPTH": "0"})
        with pytest.raises(ValueError, match="REPRO_ASYNC_DEPTH"):
            EngineConfig(async_depth=0)

    def test_async_pipeline_conflicts_with_tile_backend(self):
        # The tile reference loop has no batch path, so the overlap could
        # never engage; the conflict must fail at config time and name both
        # offending knobs so an env-driven misconfiguration is attributable.
        with pytest.raises(ValueError, match="REPRO_ASYNC_PIPELINE") as excinfo:
            EngineConfig.from_env(
                {"REPRO_ASYNC_PIPELINE": "1", "REPRO_RASTER_BACKEND": "tile"}
            )
        assert "REPRO_RASTER_BACKEND" in str(excinfo.value)
        # Batch-capable backends accept the overlap.
        for backend in (None, "flat", "sharded", "async"):
            config = EngineConfig.from_env(
                {"REPRO_ASYNC_PIPELINE": "1"}, backend=backend
            )
            assert config.async_pipeline

    def test_async_pipeline_conflicts_with_zero_shard_workers(self):
        # shard_workers=0 degrades every window to the serial flat path, so
        # there is no background execution to overlap with: a conflict, again
        # named after both env knobs.
        with pytest.raises(ValueError, match="REPRO_ASYNC_PIPELINE") as excinfo:
            EngineConfig.from_env(
                {"REPRO_ASYNC_PIPELINE": "1", "REPRO_SHARD_WORKERS": "0"}
            )
        assert "REPRO_SHARD_WORKERS" in str(excinfo.value)
        # An explicit worker count (or the cpu-count default) is fine.
        config = EngineConfig.from_env(
            {"REPRO_ASYNC_PIPELINE": "1", "REPRO_SHARD_WORKERS": "2"}
        )
        assert config.async_pipeline and config.shard_workers == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="tile_size"):
            EngineConfig(tile_size=0)
        with pytest.raises(ValueError, match="subtile_size"):
            EngineConfig(tile_size=4, subtile_size=8)
        # TileGrid needs divisibility; the config fails fast so a bad
        # REPRO_SUBTILE_SIZE is caught at construction, not mid-render.
        with pytest.raises(ValueError, match="multiple of"):
            EngineConfig(tile_size=16, subtile_size=3)
        with pytest.raises(ValueError, match="cache_refine_margin"):
            EngineConfig(cache_refine_margin=0.5)
        with pytest.raises(ValueError, match="cache_max_entries"):
            EngineConfig(cache_max_entries=0)
        with pytest.raises(ValueError, match="shard_workers"):
            EngineConfig(shard_workers=-2)
        with pytest.raises(ValueError, match="shard_retry_limit"):
            EngineConfig(shard_retry_limit=-1)
        with pytest.raises(ValueError, match="shard_deadline_s"):
            EngineConfig(shard_deadline_s=0.0)
        with pytest.raises(ValueError, match="shard_backoff_s"):
            EngineConfig(shard_backoff_s=-1.0)

    def test_use_backend_overrides_env_through_default_engines(self, monkeypatch):
        """REPRO_RASTER_BACKEND seeds the process default; scoping still wins."""
        from repro.engine import set_default_engine
        from repro.gaussians import use_backend
        from repro.gaussians import rasterizer as rasterizer_module

        monkeypatch.setenv("REPRO_RASTER_BACKEND", "tile")
        # Reset the lazily seeded process default and the shim engine so the
        # patched environment is actually consulted.
        monkeypatch.setattr(rasterizer_module, "_default_backend", None)
        previous_engine = set_default_engine(None)
        try:
            spec = _spec("single_gaussian")
            assert get_default_backend() == "tile"
            assert rasterize(spec.cloud, spec.camera, spec.pose_cw).backend == "tile"
            with use_backend("flat"):
                assert rasterize(spec.cloud, spec.camera, spec.pose_cw).backend == "flat"
        finally:
            set_default_engine(previous_engine)

    def test_tile_size_env_flows_through_engine_and_mapper(self, monkeypatch):
        from repro.slam import MappingConfig, StreamingMapper

        monkeypatch.setenv("REPRO_TILE_SIZE", "8")
        monkeypatch.setenv("REPRO_SUBTILE_SIZE", "2")
        spec = _spec("single_gaussian")
        engine = RenderEngine(EngineConfig.from_env(geom_cache=False))
        render = engine.render(spec.cloud, spec.camera, spec.pose_cw)
        assert render.grid.tile_size == 8
        assert render.grid.subtile_size == 2
        # The mapper-built engine (and with it tracking/mapping renders whose
        # configs leave tile sizes unset) inherits the env knobs too.
        mapper = StreamingMapper(MappingConfig())
        assert mapper.engine.config.tile_size == 8
        assert mapper.engine.config.subtile_size == 2

    def test_geom_cache_env_parsing_matches_legacy(self):
        from repro.engine.config import geom_cache_enabled_from_env

        assert geom_cache_enabled_from_env({})
        for value in ("0", "false", "OFF"):
            assert not geom_cache_enabled_from_env({"REPRO_GEOM_CACHE": value})

    def test_from_env_cache_pose_quantum(self):
        assert EngineConfig.from_env({}).cache_pose_quantum == 0.0
        assert (
            EngineConfig.from_env({"REPRO_GEOM_CACHE_POSE_QUANTUM": ""}).cache_pose_quantum
            == 0.0
        )
        config = EngineConfig.from_env({"REPRO_GEOM_CACHE_POSE_QUANTUM": "0.05"})
        assert config.cache_pose_quantum == 0.05
        assert config.cache_config().pose_quantum == 0.05

    def test_from_env_rejects_bad_cache_pose_quantum(self):
        with pytest.raises(ValueError, match="REPRO_GEOM_CACHE_POSE_QUANTUM"):
            EngineConfig.from_env({"REPRO_GEOM_CACHE_POSE_QUANTUM": "tiny"})
        with pytest.raises(ValueError, match="REPRO_GEOM_CACHE_POSE_QUANTUM"):
            EngineConfig.from_env({"REPRO_GEOM_CACHE_POSE_QUANTUM": "-0.1"})

    def test_pose_quantum_without_tolerance_is_a_named_conflict(self):
        # Pose-requantised entries are served through the toleranced tier;
        # with cache_tolerance_px=0 that tier is disabled, so the combination
        # must fail at config time naming BOTH knobs, not silently miss on
        # every cross-window lookup.
        with pytest.raises(ValueError, match="cache_pose_quantum") as excinfo:
            EngineConfig(cache_pose_quantum=0.05, cache_tolerance_px=0.0)
        assert "cache_tolerance_px" in str(excinfo.value)
        assert "REPRO_GEOM_CACHE_POSE_QUANTUM" in str(excinfo.value)
        # Same conflict surfaced when assembled purely from the environment.
        with pytest.raises(ValueError, match="cache_tolerance_px"):
            EngineConfig.from_env(
                {"REPRO_GEOM_CACHE_POSE_QUANTUM": "0.05"}, cache_tolerance_px=0.0
            )
        # A non-zero tolerance resolves it.
        config = EngineConfig(cache_pose_quantum=0.05, cache_tolerance_px=1.0)
        assert config.cache_config().pose_quantum == 0.05

    # -- render-service knobs -------------------------------------------------
    def test_from_env_service_knobs(self):
        config = EngineConfig.from_env({})
        assert config.service_max_sessions == 8
        assert config.service_cache_budget_bytes == 0
        assert config.service_default_weight == 1.0
        assert config.service_fair_weights == ()
        config = EngineConfig.from_env(
            {
                "REPRO_SERVICE_MAX_SESSIONS": "3",
                "REPRO_SERVICE_CACHE_BUDGET": "65536",
                "REPRO_SERVICE_FAIR_WEIGHTS": "2.0,tracking=3,mapping=0.5",
                "REPRO_GEOM_CACHE": "on",
            }
        )
        assert config.service_max_sessions == 3
        assert config.service_cache_budget_bytes == 65536
        assert config.service_default_weight == 2.0
        assert config.service_fair_weights == (("tracking", 3.0), ("mapping", 0.5))
        # Empty strings fall back to the defaults like every other knob.
        config = EngineConfig.from_env(
            {
                "REPRO_SERVICE_MAX_SESSIONS": "",
                "REPRO_SERVICE_CACHE_BUDGET": "",
                "REPRO_SERVICE_FAIR_WEIGHTS": "",
            }
        )
        assert config.service_max_sessions == 8
        assert config.service_fair_weights == ()

    def test_from_env_rejects_bad_service_knobs(self):
        with pytest.raises(ValueError, match="REPRO_SERVICE_MAX_SESSIONS"):
            EngineConfig.from_env({"REPRO_SERVICE_MAX_SESSIONS": "many"})
        with pytest.raises(ValueError, match="REPRO_SERVICE_MAX_SESSIONS"):
            EngineConfig.from_env({"REPRO_SERVICE_MAX_SESSIONS": "0"})
        with pytest.raises(ValueError, match="REPRO_SERVICE_CACHE_BUDGET"):
            EngineConfig.from_env({"REPRO_SERVICE_CACHE_BUDGET": "-1"})
        with pytest.raises(ValueError, match="REPRO_SERVICE_CACHE_BUDGET"):
            EngineConfig.from_env({"REPRO_SERVICE_CACHE_BUDGET": "unbounded"})

    def test_from_env_rejects_bad_fair_weights(self):
        for value in (
            "fast",  # non-numeric bare weight
            "0",  # nonpositive default weight
            "1.0,2.0",  # two bare default weights
            "=2",  # empty session id
            "alpha=",  # empty weight
            "alpha=big",  # non-numeric session weight
            "alpha=-1",  # nonpositive session weight
            "alpha=nan",  # NaN never compares > 0
            "alpha=1,alpha=2",  # duplicate session id
        ):
            with pytest.raises(ValueError, match="REPRO_SERVICE_FAIR_WEIGHTS"):
                EngineConfig.from_env({"REPRO_SERVICE_FAIR_WEIGHTS": value})

    def test_service_budget_without_cache_is_a_named_conflict(self):
        # A cross-session cache budget is unenforceable without the geometry
        # cache; the conflict must fail at config time naming both knobs.
        with pytest.raises(ValueError, match="REPRO_SERVICE_CACHE_BUDGET") as excinfo:
            EngineConfig.from_env(
                {"REPRO_SERVICE_CACHE_BUDGET": "4096", "REPRO_GEOM_CACHE": "0"}
            )
        assert "REPRO_GEOM_CACHE" in str(excinfo.value)
        # A cache-enabled config resolves it; so does a zero budget.
        config = EngineConfig.from_env(
            {"REPRO_SERVICE_CACHE_BUDGET": "4096", "REPRO_GEOM_CACHE": "on"}
        )
        assert config.service_cache_budget_bytes == 4096
        assert EngineConfig.from_env(
            {"REPRO_SERVICE_CACHE_BUDGET": "0", "REPRO_GEOM_CACHE": "0"}
        ).service_cache_budget_bytes == 0

    def test_service_overrides_beat_env(self):
        config = EngineConfig.from_env(
            {
                "REPRO_SERVICE_MAX_SESSIONS": "3",
                "REPRO_SERVICE_FAIR_WEIGHTS": "7.5",
            },
            service_max_sessions=12,
            service_default_weight=1.5,
        )
        assert config.service_max_sessions == 12
        assert config.service_default_weight == 1.5


class TestEngineRendering:
    def test_engine_matches_internal_backends_bitwise(self):
        spec = _spec()
        flat = _render(RenderEngine(EngineConfig(backend="flat", geom_cache=False)), spec)
        tile = _render(RenderEngine(EngineConfig(backend="tile", geom_cache=False)), spec)
        direct_flat = rasterize_flat(
            spec.cloud, spec.camera, spec.pose_cw, background=spec.background,
            tile_size=spec.tile_size, subtile_size=spec.subtile_size,
        )
        direct_tile = rasterize_tile(
            spec.cloud, spec.camera, spec.pose_cw, background=spec.background,
            tile_size=spec.tile_size, subtile_size=spec.subtile_size,
        )
        np.testing.assert_array_equal(flat.image, direct_flat.image)
        np.testing.assert_array_equal(tile.image, direct_tile.image)

    def test_default_engine_follows_process_default_backend(self):
        spec = _spec("single_gaussian")
        engine = RenderEngine(EngineConfig(geom_cache=False))
        assert engine.backend_name == get_default_backend()
        previous = set_default_backend("tile")
        try:
            assert _render(engine, spec).backend == "tile"
        finally:
            set_default_backend(previous)
        assert _render(engine, spec).backend == get_default_backend()

    def test_unknown_backend_rejected(self):
        spec = _spec("single_gaussian")
        engine = RenderEngine(EngineConfig(geom_cache=False))
        with pytest.raises(ValueError, match="unknown rasterizer backend"):
            _render(engine, spec, backend="cuda")

    def test_batch_falls_back_to_flat_under_tile_default(self):
        spec = _spec("single_gaussian")
        engine = RenderEngine(EngineConfig(backend="tile", geom_cache=False))
        batch = engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw])
        assert batch.views[0].backend == "flat"
        engine.release(batch)
        with pytest.raises(ValueError, match="does not support batched"):
            engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw], backend="tile")


class TestArenaOwnership:
    """Regression tests for the `rasterize_batch` arena-aliasing footgun."""

    @pytest.mark.parametrize("geom_cache", [False, True])
    def test_unconsumed_batch_blocks_next_managed_render(self, geom_cache):
        spec = _spec()
        engine = RenderEngine(EngineConfig(backend="flat", geom_cache=geom_cache))
        poses = spec.view_poses(2)
        batch = engine.render_batch(spec.cloud, [spec.camera] * 2, poses)
        with pytest.raises(ArenaInUseError, match="aliases"):
            engine.render_batch(spec.cloud, [spec.camera] * 2, poses)
        # The fused backward consumes the batch and frees the arena.
        engine.backward_batch(
            batch, spec.cloud, [np.zeros_like(view.image) for view in batch.views]
        )
        again = engine.render_batch(spec.cloud, [spec.camera] * 2, poses)
        assert again.n_views == 2

    def test_release_frees_the_claim(self):
        spec = _spec()
        engine = RenderEngine(EngineConfig(backend="flat", geom_cache=False))
        batch = engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw])
        engine.release(batch)
        engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw])

    def test_managed_cached_single_render_claims_too(self):
        spec = _spec()
        engine = RenderEngine(EngineConfig(backend="flat", geom_cache=True))
        render = _render(engine, spec, managed=True)
        with pytest.raises(ArenaInUseError):
            _render(engine, spec, managed=True)
        engine.backward(render, spec.cloud, np.zeros_like(render.image))
        _render(engine, spec, managed=True)
        engine.release()

    def test_live_views_keep_the_claim_after_wrapper_dropped(self):
        """Per-view results alias the arena too, not just the batch wrapper."""
        import gc

        spec = _spec()
        engine = RenderEngine(EngineConfig(backend="flat", geom_cache=False))
        views = engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw]).views
        gc.collect()  # the BatchRenderResult wrapper is gone; the views are not
        with pytest.raises(ArenaInUseError):
            engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw])
        del views
        gc.collect()
        engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw])
        engine.release()

    def test_garbage_collected_batch_releases_the_arena(self):
        spec = _spec()
        engine = RenderEngine(EngineConfig(backend="flat", geom_cache=False))
        engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw])
        # The batch object above is unreferenced: once collected, nothing can
        # read the aliased caches, so the next render must proceed.
        import gc

        gc.collect()
        engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw])

    def test_unmanaged_legacy_path_keeps_fresh_arenas(self):
        """Two unconsumed shim batches must not alias (legacy semantics)."""
        spec = _spec()
        poses = spec.view_poses(2)
        first = rasterize_batch(spec.cloud, [spec.camera] * 2, poses)
        expected = [view.image.copy() for view in first.views]
        rasterize_batch(spec.cloud, [spec.camera] * 2, poses)
        for view, image in zip(first.views, expected):
            np.testing.assert_array_equal(view.image, image)


class _EchoBackend:
    """Dummy third backend: wraps the flat path and re-tags its results."""

    name = "echo"

    def __init__(self, config):
        self._inner = FlatBackend(config)

    def capabilities(self):
        return self._inner.capabilities()

    def render(self, request):
        result = self._inner.render(request)
        result.backend = "echo"
        return result

    def render_batch(self, request):
        return self._inner.render_batch(request)

    def backward(self, result, cloud, dL_dimage, dL_ddepth, compute_pose_gradient):
        return self._inner.backward(result, cloud, dL_dimage, dL_ddepth, compute_pose_gradient)

    def backward_batch(self, batch, cloud, dL_dimages, dL_ddepths, compute_pose_gradient):
        return self._inner.backward_batch(
            batch, cloud, dL_dimages, dL_ddepths, compute_pose_gradient
        )


class TestBackendRegistry:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("flat", FlatBackend)

    def test_dummy_third_backend_end_to_end(self):
        """Registering a backend makes it usable without touching engine/caller code."""
        spec = _spec()
        register_backend("echo", _EchoBackend)
        try:
            assert "echo" in REGISTRY
            engine = RenderEngine(EngineConfig(backend="echo", geom_cache=False))
            render = _render(engine, spec)
            assert render.backend == "echo"
            reference = rasterize_flat(
                spec.cloud, spec.camera, spec.pose_cw, background=spec.background,
                tile_size=spec.tile_size, subtile_size=spec.subtile_size,
            )
            np.testing.assert_array_equal(render.image, reference.image)
            gradients = engine.backward(render, spec.cloud, np.ones_like(render.image))
            assert np.isfinite(gradients.positions).all()
            batch = engine.render_batch(spec.cloud, [spec.camera], [spec.pose_cw])
            engine.backward_batch(
                batch, spec.cloud, [np.zeros_like(view.image) for view in batch.views]
            )
            # The registered name is also accepted process-wide.
            previous = set_default_backend("echo")
            try:
                assert get_default_backend() == "echo"
            finally:
                set_default_backend(previous)
        finally:
            REGISTRY.unregister("echo")

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ValueError, match="not registered"):
            REGISTRY.unregister("nope")

    def test_typed_capabilities_reported_through_engine(self):
        from repro.engine import BackendCapabilities

        engine = RenderEngine(EngineConfig(backend="flat", geom_cache=False))
        capabilities = engine.capabilities("flat")
        assert isinstance(capabilities, BackendCapabilities)
        assert capabilities.batch and capabilities.cache
        assert not capabilities.distributed_planning
        assert not capabilities.worker_resident_cache
        assert capabilities.availability is None
        # Legacy spellings stay readable while callers migrate.
        assert capabilities.supports_batch and capabilities.supports_cache
        assert capabilities.available
        tile = engine.capabilities("tile")
        assert tile.reference and not tile.batch

    def test_legacy_dict_capabilities_adapted_with_deprecation_warning(self):
        class _DictBackend(_EchoBackend):
            name = "dictcaps"

            def capabilities(self):
                return {"supports_batch": True, "supports_cache": False,
                        "description": "legacy dict payload"}

        register_backend("dictcaps", _DictBackend)
        try:
            with pytest.warns(DeprecationWarning, match="capabilities dict"):
                engine = RenderEngine(EngineConfig(backend="dictcaps", geom_cache=False))
                capabilities = engine.capabilities("dictcaps")
            assert capabilities.batch
            assert not capabilities.cache
            assert capabilities.description == "legacy dict payload"
            # The adapter is invisible past the probe: renders pass through.
            spec = _spec("single_gaussian")
            render = _render(engine, spec)
            assert np.isfinite(render.image).all()
        finally:
            REGISTRY.unregister("dictcaps")

    def test_legacy_dict_capabilities_with_unknown_keys_rejected(self):
        class _TypoBackend(_EchoBackend):
            name = "typocaps"

            def capabilities(self):
                return {"suports_batch": True}

        register_backend("typocaps", _TypoBackend)
        try:
            engine = RenderEngine(EngineConfig(backend="typocaps", geom_cache=False))
            with pytest.raises(ValueError, match="unknown keys"):
                engine.capabilities("typocaps")
        finally:
            REGISTRY.unregister("typocaps")


class TestDeprecatedShims:
    def test_shims_warn_and_delegate_bitwise(self):
        spec = _spec()
        engine = RenderEngine(EngineConfig(geom_cache=False))
        with pytest.warns(DeprecationWarning, match="rasterize"):
            shim = rasterize(
                spec.cloud, spec.camera, spec.pose_cw, background=spec.background,
                tile_size=spec.tile_size, subtile_size=spec.subtile_size,
            )
        direct = _render(engine, spec)
        np.testing.assert_array_equal(shim.image, direct.image)
        dL = np.ones_like(shim.image)
        with pytest.warns(DeprecationWarning, match="render_backward"):
            shim_grads = render_backward(shim, spec.cloud, dL)
        direct_grads = engine.backward(direct, spec.cloud, dL)
        np.testing.assert_array_equal(shim_grads.positions, direct_grads.positions)

    def test_batch_shim_warns(self):
        spec = _spec("single_gaussian")
        with pytest.warns(DeprecationWarning, match="rasterize_batch"):
            rasterize_batch(spec.cloud, [spec.camera], [spec.pose_cw])


class TestSnapshotEmission:
    def test_profiling_sink_receives_snapshots(self):
        spec = _spec()
        received = []
        engine = RenderEngine(
            EngineConfig(backend="flat", geom_cache=False, profiling_sink=received.append)
        )
        render = _render(engine, spec)
        snap = engine.snapshot(
            render,
            None,
            stage="tracking",
            frame_index=3,
            iteration=1,
            is_keyframe=False,
            loss=0.5,
            n_gaussians_total=len(spec.cloud),
            n_gaussians_active=len(spec.cloud),
        )
        assert received == [snap]
        assert snap.stage == "tracking"
        assert snap.total_fragments == render.n_fragments


class TestMapperEngineInjection:
    def test_mapper_accepts_injected_engine(self):
        from repro.slam import MappingConfig, StreamingMapper

        engine = RenderEngine(EngineConfig(backend="flat", geom_cache=False))
        mapper = StreamingMapper(MappingConfig(n_iterations=1), engine=engine)
        assert mapper.engine is engine

    def test_pipeline_shares_one_engine(self, tiny_sequence):
        from repro.slam import SLAMPipeline, mono_gs

        engine = RenderEngine(EngineConfig(backend="flat"))
        config = mono_gs(fast=True)
        config.tracking.n_iterations = 2
        config.mapping.n_iterations = 2
        pipeline = SLAMPipeline(config, engine=engine)
        assert pipeline.engine is engine
        assert pipeline._mapper.engine is engine
        result = pipeline.run(tiny_sequence, n_frames=2)
        assert len(result.estimated_trajectory) == 2
