"""Integration tests: RTGS algorithm + hardware model on a real (tiny) SLAM run.

These tests exercise the headline claims of the paper end to end on a small
synthetic sequence: pruning reduces the map and the rendering workload while
keeping accuracy in the same ballpark; dynamic downsampling reduces the
non-keyframe pixel count; and the modelled RTGS hardware is faster and more
energy-efficient than the modelled edge-GPU baseline.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveGaussianPruner,
    FixedRatioPruner,
    PruningConfig,
    RTGSAlgorithmConfig,
    build_pipeline,
)
from repro.hardware import EdgeGPUModel, RTGSPlugin, evaluate_configurations
from repro.slam import mono_gs


@pytest.fixture(scope="module")
def fast_config():
    config = mono_gs(fast=True)
    config.tracking.n_iterations = 4
    config.mapping.n_iterations = 4
    return config


@pytest.fixture(scope="module")
def baseline_run(tiny_sequence, fast_config):
    return build_pipeline(fast_config).run(tiny_sequence, n_frames=5)


@pytest.fixture(scope="module")
def rtgs_run(tiny_sequence, fast_config):
    rtgs = RTGSAlgorithmConfig(
        pruning=PruningConfig(initial_interval=2, prune_fraction_per_window=0.15)
    )
    return build_pipeline(fast_config, rtgs).run(tiny_sequence, n_frames=5)


def test_pruning_reduces_map_size(baseline_run, rtgs_run):
    assert rtgs_run.cloud.n_total < baseline_run.cloud.n_total


def test_rtgs_reduces_rendering_workload(baseline_run, rtgs_run):
    base_fragments = sum(s.total_fragments for s in baseline_run.tracking_snapshots())
    ours_fragments = sum(s.total_fragments for s in rtgs_run.tracking_snapshots())
    assert ours_fragments < base_fragments


def test_downsampling_reduces_nonkeyframe_resolution(rtgs_run):
    fractions = [
        record.resolution_fraction
        for record in rtgs_run.frame_records
        if not record.is_keyframe
    ]
    assert fractions and max(fractions) <= 0.25 + 1e-9


def test_accuracy_stays_in_the_same_ballpark(baseline_run, rtgs_run):
    # The paper reports <5% ATE degradation at full scale; on a 5-frame toy
    # sequence we only assert the RTGS run does not blow up.
    assert np.isfinite(rtgs_run.ate())
    assert rtgs_run.ate() < max(3.0 * baseline_run.ate(), baseline_run.ate() + 5.0)


def test_aggressive_pruning_degrades_accuracy_more(tiny_sequence, fast_config, baseline_run):
    aggressive = build_pipeline(
        fast_config, pruner=FixedRatioPruner(prune_ratio=0.8)
    ).run(tiny_sequence, n_frames=5)
    conservative = build_pipeline(
        fast_config, pruner=FixedRatioPruner(prune_ratio=0.25)
    ).run(tiny_sequence, n_frames=5)
    # The 80% pruned map must be much smaller; conservative pruning retains more.
    assert aggressive.cloud.n_total < conservative.cloud.n_total
    # And the aggressive run should not be *better* than the conservative one.
    assert aggressive.ate() >= conservative.ate() * 0.5


def test_modeled_hardware_speedup_and_energy(baseline_run):
    snapshots = baseline_run.all_snapshots()
    evaluations = evaluate_configurations(snapshots, "onx", workload_scale=50.0)
    assert evaluations["rtgs"].overall_fps > evaluations["distwar"].overall_fps
    assert evaluations["rtgs"].overall_fps > 2.0 * evaluations["baseline"].overall_fps
    improvement = (
        evaluations["baseline"].energy_per_frame_j / evaluations["rtgs"].energy_per_frame_j
    )
    assert improvement > 2.0


def test_combined_algorithm_plus_hardware_compounds(baseline_run, rtgs_run):
    baseline_latency = EdgeGPUModel("onx").frame_latency(baseline_run.all_snapshots()).total
    rtgs_latency = RTGSPlugin(host_device="onx").frame_latency(rtgs_run.all_snapshots()).total
    assert baseline_latency / rtgs_latency > 3.0


def test_pruner_statistics_recorded(tiny_sequence, fast_config):
    pruner = AdaptiveGaussianPruner(PruningConfig(initial_interval=2))
    pipeline = build_pipeline(fast_config, RTGSAlgorithmConfig(), pruner=pruner)
    pipeline.run(tiny_sequence, n_frames=4)
    assert pruner.stats.windows_completed >= 1
    assert pruner.stats.masked_total >= pruner.stats.removed_total >= 0
