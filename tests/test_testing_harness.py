"""Tests for the repro.testing subsystem: scenarios, differential runner, goldens."""

from __future__ import annotations

import numpy as np
import pytest

from repro.testing import (
    DEFAULT_LIBRARY,
    GRADIENT_FIELDS,
    DifferentialRunner,
    Scenario,
    ScenarioLibrary,
    SceneSpec,
    compare_to_golden,
    load_golden,
    render_reference,
    save_golden,
)
from repro.testing.regold import main as regold_main


class TestScenarioLibrary:
    def test_default_library_covers_required_scenarios(self):
        names = set(DEFAULT_LIBRARY.names())
        required = {
            "empty_cloud",
            "single_gaussian",
            "overlapping_opaque",
            "alpha_clamp",
            "offscreen_culling",
            "all_culled",
            "dense_random",
        }
        assert required <= names

    def test_scenarios_are_deterministic(self):
        scenario = DEFAULT_LIBRARY.get("dense_random")
        a, b = scenario.build(), scenario.build()
        np.testing.assert_array_equal(a.cloud.positions, b.cloud.positions)
        np.testing.assert_array_equal(a.cloud.colors, b.cloud.colors)
        result_a, result_b = render_reference(a), render_reference(b)
        np.testing.assert_array_equal(result_a.image, result_b.image)

    def test_duplicate_registration_rejected(self):
        library = ScenarioLibrary(list(DEFAULT_LIBRARY))
        with pytest.raises(ValueError, match="already registered"):
            library.register(DEFAULT_LIBRARY.get("empty_cloud"))

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(KeyError, match="available:"):
            DEFAULT_LIBRARY.get("nope")

    def test_scenarios_exercise_early_termination_and_clamp(self):
        result = render_reference(DEFAULT_LIBRARY.get("overlapping_opaque").build())
        assert any((~c.processed).any() for c in result.tile_caches), (
            "overlapping_opaque must trigger early termination"
        )
        result = render_reference(DEFAULT_LIBRARY.get("alpha_clamp").build())
        assert any(c.clamp_mask.any() for c in result.tile_caches), (
            "alpha_clamp must hit the 0.99 alpha clamp"
        )
        spec = DEFAULT_LIBRARY.get("offscreen_culling").build()
        result = render_reference(spec)
        assert 0 < result.projected.n_visible < len(spec.cloud)


class TestDifferentialRunner:
    def test_all_default_scenarios_agree(self):
        # The acceptance gate of the flat backend: image/depth/alpha within
        # 1e-10 of the tile backend, gradients within 1e-8, fragment counts
        # exactly equal — on every scenario.
        reports = DifferentialRunner(forward_tol=1e-10, grad_tol=1e-8).assert_all()
        assert len(reports) == len(DEFAULT_LIBRARY)
        assert {r.name for r in reports} == set(DEFAULT_LIBRARY.names())
        # At least one scenario must carry a realistic fragment load.
        assert max(r.n_fragments for r in reports) > 10_000

    def test_report_summaries_are_printable(self):
        report = DifferentialRunner().run_scenario(DEFAULT_LIBRARY.get("single_gaussian"))
        assert "single_gaussian" in report.summary()
        assert report.passed
        assert set(report.gradient_diffs) == set(GRADIENT_FIELDS)

    def test_runner_detects_disagreement(self):
        # A runner with an impossible tolerance must fail on a non-trivial
        # scene — proving the harness actually compares something.
        runner = DifferentialRunner(forward_tol=-1.0)
        report = runner.run_scenario(DEFAULT_LIBRARY.get("dense_random"))
        assert not report.passed
        with pytest.raises(AssertionError, match="differential verification failed"):
            runner.assert_all()

    @pytest.mark.parametrize("name", DEFAULT_LIBRARY.names())
    def test_verify_engine_bit_identical_on_every_scenario(self, name):
        # Engine-mediated renders must equal the legacy free-function path
        # bitwise — both backends, cache on and off, miss and hit rounds.
        runner = DifferentialRunner()
        diffs, failures = runner.verify_engine(DEFAULT_LIBRARY.get(name).build())
        assert not failures, failures
        assert diffs["engine_image"] == 0.0
        assert diffs["engine_grad"] == 0.0


class TestGoldens:
    @pytest.mark.parametrize("name", DEFAULT_LIBRARY.names())
    def test_render_matches_committed_golden(self, name):
        scenario = DEFAULT_LIBRARY.get(name)
        result = render_reference(scenario.build())
        golden = load_golden(name)
        failures = compare_to_golden(result, golden)
        assert not failures, (
            f"golden drift for {name}: {failures}; if the change is intentional, "
            "run `PYTHONPATH=src python -m repro.testing.regold` and commit the fixtures"
        )

    def test_missing_golden_has_actionable_error(self):
        with pytest.raises(FileNotFoundError, match="regold"):
            load_golden("does_not_exist")

    def test_save_golden_roundtrip(self, tmp_path):
        scenario = DEFAULT_LIBRARY.get("single_gaussian")
        path = save_golden(scenario, directory=tmp_path)
        assert path.exists()
        golden = load_golden("single_gaussian", directory=tmp_path)
        assert not compare_to_golden(render_reference(scenario.build()), golden)

    def test_compare_detects_drift(self):
        scenario = DEFAULT_LIBRARY.get("single_gaussian")
        result = render_reference(scenario.build())
        golden = load_golden("single_gaussian")
        golden = dict(golden)
        golden["image"] = golden["image"] + 1e-3
        failures = compare_to_golden(result, golden)
        assert any("image drifted" in f for f in failures)


class TestRegoldCLI:
    def test_list_option(self, capsys):
        assert regold_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "dense_random" in out

    def test_regold_single_scenario(self, tmp_path, monkeypatch, capsys):
        import repro.testing.golden as golden_mod
        import repro.testing.regold as regold_mod

        monkeypatch.setattr(golden_mod, "GOLDEN_DIR", tmp_path)
        monkeypatch.setattr(regold_mod, "GOLDEN_DIR", tmp_path)
        assert regold_main(["-s", "one_pixel"]) == 0
        assert (tmp_path / "one_pixel.npz").exists()


def test_custom_scenario_through_runner():
    """The harness accepts user-defined scenarios, not just the built-ins."""
    from repro.gaussians import Camera, GaussianCloud, SE3

    def build():
        cloud = GaussianCloud.from_points(
            np.array([[0.0, 0.0, 0.5]]), np.array([[0.1, 0.9, 0.5]]), scale=0.1
        )
        return SceneSpec(
            cloud=cloud,
            camera=Camera.from_fov(12, 10, fov_x_degrees=60.0),
            pose_cw=SE3.identity(),
            background=np.zeros(3),
            tile_size=4,
            subtile_size=2,
        )

    library = ScenarioLibrary([Scenario("custom", "single splat, 4px tiles", build)])
    reports = DifferentialRunner().assert_all(library)
    assert len(reports) == 1 and reports[0].passed
