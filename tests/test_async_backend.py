"""Tests for the async double-buffered backend (`repro.engine.async_backend`).

Covers the speculation lifecycle end to end: consume on an exact
SpeculationKey match, discard-whole (never stitch) on any intervening cloud
mutation or window change, the ``drain()`` barrier, depth exhaustion raising
``ArenaInUseError``, idempotent re-speculation, and the engine-level
``speculate_batch``/``drain`` passthroughs on non-pipelining backends.  A
hypothesis property pins the SLAM-side publication invariant: a tracker
reading the :class:`~repro.slam.pipeline.PublicationBoard` while a mapper
thread mutates and republishes the live cloud can never observe a
half-updated snapshot.

The engines here run with ``shard_workers=0`` on purpose: the sharded inner
backend degrades to the serial flat path, so the speculation machinery
(threads, keys, arenas, stats) is exercised without paying worker-pool
startup per test.  Real-pool bitwise equivalence is pinned by the
differential harness (``verify_async``) and the scenario matrix.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import ArenaInUseError, EngineConfig, RenderEngine
from repro.gaussians import GaussianCloud
from repro.gaussians.batch import SpeculationKey
from repro.slam.pipeline import PublicationBoard
from repro.testing.scenarios import DEFAULT_LIBRARY


def _async_engine(**overrides) -> RenderEngine:
    return RenderEngine(
        EngineConfig(backend="async", geom_cache=False, shard_workers=0, **overrides)
    )


def _flat_engine() -> RenderEngine:
    return RenderEngine(EngineConfig(backend="flat", geom_cache=False))


def _window(spec, n_views: int = 3):
    return spec.view_cameras(n_views), spec.view_poses(n_views)


def _speculate(engine: RenderEngine, spec, cameras, poses):
    return engine.speculate_batch(
        spec.cloud,
        cameras,
        poses,
        spec.background,
        tile_size=spec.tile_size,
        subtile_size=spec.subtile_size,
    )


def _render_batch(engine: RenderEngine, spec, cameras, poses):
    return engine.render_batch(
        spec.cloud,
        cameras,
        poses,
        spec.background,
        tile_size=spec.tile_size,
        subtile_size=spec.subtile_size,
    )


def _assert_batches_equal(actual, expected):
    assert len(actual.views) == len(expected.views)
    for got, want in zip(actual.views, expected.views):
        assert np.array_equal(got.image, want.image)
        assert np.array_equal(got.depth, want.depth)
        assert np.array_equal(got.alpha, want.alpha)


class TestSpeculationLifecycle:
    def test_consume_on_exact_key_match_is_bitwise(self):
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras, poses = _window(spec)
        engine = _async_engine()
        handle = _speculate(engine, spec, cameras, poses)
        assert handle is not None and handle.pending
        batch = _render_batch(engine, spec, cameras, poses)
        assert handle.consumed
        backend = engine.backend()
        assert backend.stats == {
            "speculated": 1, "consumed": 1, "discarded": 0, "drained": 0,
        }
        engine.release(batch)
        engine.drain()
        flat = _render_batch(_flat_engine(), spec, cameras, poses)
        _assert_batches_equal(batch, flat)

    def test_epoch_bump_discards_whole_and_renders_fresh(self):
        # Any mutation between speculation and render invalidates the
        # speculated plan: the stale result must be discarded whole — never
        # consumed, never stitched — and the fresh render must reflect the
        # mutation bitwise.
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras, poses = _window(spec)
        engine = _async_engine()
        handle = _speculate(engine, spec, cameras, poses)
        spec.cloud.colors[:, 0] = 0.9
        spec.cloud.bump_epoch()
        batch = _render_batch(engine, spec, cameras, poses)
        assert handle.status == "discarded"
        assert engine.backend().stats["consumed"] == 0
        assert engine.backend().stats["discarded"] == 1
        engine.release(batch)
        flat = _render_batch(_flat_engine(), spec, cameras, poses)
        _assert_batches_equal(batch, flat)

    @pytest.mark.parametrize("mutation", ["densify", "prune"])
    def test_structural_mutation_discards(self, mutation):
        # Densify (extend) and prune (keep_only) both bump the structure
        # epoch, which is part of the speculation key.
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras, poses = _window(spec)
        engine = _async_engine()
        handle = _speculate(engine, spec, cameras, poses)
        if mutation == "densify":
            spec.cloud.extend(DEFAULT_LIBRARY.get("single_gaussian").build().cloud)
        else:
            keep = np.ones(spec.cloud.positions.shape[0], dtype=bool)
            keep[::3] = False
            spec.cloud.keep_only(keep)
        batch = _render_batch(engine, spec, cameras, poses)
        assert handle.status == "discarded"
        engine.release(batch)
        flat = _render_batch(_flat_engine(), spec, cameras, poses)
        _assert_batches_equal(batch, flat)

    def test_different_window_discards_pending_not_stitched(self):
        # Rendering a *different* window is a key miss: the pending plan for
        # window A is retired whole even though its own inputs never changed.
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras_a, poses_a = _window(spec, 3)
        cameras_b, poses_b = _window(spec, 2)
        engine = _async_engine()
        handle = _speculate(engine, spec, cameras_a, poses_a)
        batch = _render_batch(engine, spec, cameras_b, poses_b)
        assert handle.status == "discarded"
        assert len(batch.views) == 2
        engine.release(batch)
        flat = _render_batch(_flat_engine(), spec, cameras_b, poses_b)
        _assert_batches_equal(batch, flat)

    def test_drain_retires_all_pending(self):
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras, poses = _window(spec)
        engine = _async_engine()
        handle = _speculate(engine, spec, cameras, poses)
        engine.drain()
        assert handle.status == "drained"
        backend = engine.backend()
        assert backend._pending == []
        assert backend.stats["drained"] == 1
        # Post-drain the render is a plain synchronous miss, still bitwise.
        batch = _render_batch(engine, spec, cameras, poses)
        assert backend.stats["consumed"] == 0
        engine.release(batch)
        flat = _render_batch(_flat_engine(), spec, cameras, poses)
        _assert_batches_equal(batch, flat)

    def test_same_key_speculation_is_idempotent(self):
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras, poses = _window(spec)
        engine = _async_engine()
        first = _speculate(engine, spec, cameras, poses)
        second = _speculate(engine, spec, cameras, poses)
        assert second is first
        assert engine.backend().stats["speculated"] == 1
        engine.drain()

    def test_depth_exhaustion_raises_arena_in_use(self):
        # Each in-flight speculation owns a live shadow arena; exceeding
        # async_depth would require arenas the engine does not double-buffer.
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras_a, poses_a = _window(spec, 3)
        cameras_b, poses_b = _window(spec, 2)
        engine = _async_engine(async_depth=1)
        _speculate(engine, spec, cameras_a, poses_a)
        with pytest.raises(ArenaInUseError, match="async_depth=1"):
            _speculate(engine, spec, cameras_b, poses_b)
        engine.drain()
        # Drained slots free the depth again.
        handle = _speculate(engine, spec, cameras_b, poses_b)
        assert handle.pending
        engine.drain()

    def test_cache_invalidation_discards_pending(self):
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras, poses = _window(spec)
        engine = RenderEngine(
            EngineConfig(backend="async", geom_cache=True, shard_workers=0)
        )
        handle = _speculate(engine, spec, cameras, poses)
        engine.invalidate_cache()
        assert handle.status == "discarded"
        engine.drain()

    def test_non_pipelining_backend_returns_none_and_drain_is_noop(self):
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras, poses = _window(spec)
        engine = _flat_engine()
        assert _speculate(engine, spec, cameras, poses) is None
        engine.drain()  # must not raise

    def test_speculation_key_excludes_arena_and_pins_epochs(self):
        spec = DEFAULT_LIBRARY.get("dense_random").build()
        cameras, poses = _window(spec)
        key = SpeculationKey.from_batch_inputs(
            spec.cloud, cameras, poses, spec.background,
            tile_size=spec.tile_size, subtile_size=spec.subtile_size,
            active_only=True, cache=None,
        )
        again = SpeculationKey.from_batch_inputs(
            spec.cloud, cameras, poses, spec.background,
            tile_size=spec.tile_size, subtile_size=spec.subtile_size,
            active_only=True, cache=None,
        )
        assert key == again
        spec.cloud.bump_epoch()
        bumped = SpeculationKey.from_batch_inputs(
            spec.cloud, cameras, poses, spec.background,
            tile_size=spec.tile_size, subtile_size=spec.subtile_size,
            active_only=True, cache=None,
        )
        assert bumped != key


# ---------------------------------------------------------------------------
# Publication atomicity: the SLAM-overlap invariant.
# ---------------------------------------------------------------------------


@st.composite
def _publication_runs(draw):
    return {
        "seed": draw(st.integers(min_value=0, max_value=2**32 - 1)),
        "n_gaussians": draw(st.integers(min_value=1, max_value=24)),
        "n_versions": draw(st.integers(min_value=2, max_value=8)),
    }


@given(run=_publication_runs())
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_publication_board_never_exposes_half_updated_cloud(run):
    """Interleaved publish points never expose a torn snapshot.

    A mapper thread repeatedly mutates *every* array of the live cloud to a
    version-encoded value and publishes; a tracker thread concurrently polls
    the board.  Every snapshot the tracker observes must be internally
    consistent — all arrays agreeing on one published version, with the epoch
    recorded at that version's publication — i.e. the tracker sees the
    previous publication whole or the next one whole, never a mix.
    """
    rng = np.random.default_rng(run["seed"])
    n = run["n_gaussians"]
    base_positions = rng.uniform(-0.5, 0.5, size=(n, 3))
    cloud = GaussianCloud.from_points(
        base_positions, np.full((n, 3), 0.5), scale=0.1, opacity=0.7
    )
    board = PublicationBoard()
    n_versions = run["n_versions"]
    expected = {}  # version -> (color value, positions array, epoch)
    published_epochs = {}

    def color_of(version: int) -> float:
        return (version + 1) / (n_versions + 1)

    def mapper():
        for version in range(n_versions):
            # Mutate every array in place (many separate writes a torn read
            # could interleave with), then bump + publish atomically.
            cloud.colors[:] = color_of(version)
            cloud.positions[:] = base_positions + 0.01 * version
            cloud.bump_epoch()
            published_epochs[version] = board.publish(cloud)

    observed = []

    def tracker():
        while not done.is_set() or len(observed) < 4:
            snapshot, epoch = board.current()
            if snapshot is not None:
                observed.append((snapshot, epoch))
            if len(observed) > 400:
                break

    done = threading.Event()
    mapper_thread = threading.Thread(target=mapper)
    tracker_thread = threading.Thread(target=tracker)
    tracker_thread.start()
    mapper_thread.start()
    mapper_thread.join()
    done.set()
    tracker_thread.join()

    for version in range(n_versions):
        expected[version] = (
            color_of(version),
            base_positions + 0.01 * version,
            published_epochs[version],
        )
    assert observed, "tracker never saw a publication"
    for snapshot, epoch in observed:
        value = snapshot.colors.flat[0]
        versions = [v for v in range(n_versions) if expected[v][0] == value]
        assert versions, f"snapshot colour {value} matches no published version"
        version = versions[0]
        want_color, want_positions, want_epoch = expected[version]
        # Whole-snapshot consistency: every array agrees on the same version.
        assert np.all(snapshot.colors == want_color)
        assert np.array_equal(snapshot.positions, want_positions)
        assert epoch == want_epoch
        assert snapshot.epoch == want_epoch
        # Identity is preserved so tracker-side cache keys stay coherent.
        assert snapshot.uid == cloud.uid


def test_publication_board_current_before_first_publish():
    board = PublicationBoard()
    snapshot, epoch = board.current()
    assert snapshot is None and epoch == -1 and board.publications == 0


def test_publication_snapshot_is_isolated_from_live_mutations():
    cloud = GaussianCloud.from_points(
        np.zeros((2, 3)), np.full((2, 3), 0.25), scale=0.1, opacity=0.7
    )
    board = PublicationBoard()
    epoch = board.publish(cloud)
    cloud.colors[:] = 0.75
    cloud.bump_epoch()
    snapshot, pinned = board.current()
    assert pinned == epoch
    assert np.all(snapshot.colors == 0.25)
    assert snapshot.epoch == epoch < cloud.epoch
