"""Unit and property tests for SE(3) transforms and quaternion conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.se3 import (
    SE3,
    hat,
    quaternion_to_rotation,
    rotation_to_quaternion,
    so3_exp,
    so3_log,
    vee,
)

finite_floats = st.floats(-1.5, 1.5, allow_nan=False, allow_infinity=False)


def test_identity_roundtrip():
    pose = SE3.identity()
    assert np.allclose(pose.matrix(), np.eye(4))
    assert np.allclose(pose.apply(np.array([1.0, 2.0, 3.0])), [1.0, 2.0, 3.0])


def test_hat_vee_inverse():
    omega = np.array([0.3, -0.2, 0.9])
    assert np.allclose(vee(hat(omega)), omega)


def test_so3_exp_log_roundtrip():
    omega = np.array([0.4, -0.1, 0.25])
    rotation = so3_exp(omega)
    assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-10)
    assert np.allclose(so3_log(rotation), omega, atol=1e-8)


def test_se3_exp_log_roundtrip():
    twist = np.array([0.1, -0.2, 0.3, 0.05, -0.1, 0.2])
    pose = SE3.exp(twist)
    assert np.allclose(pose.log(), twist, atol=1e-8)


def test_compose_and_inverse():
    a = SE3.exp(np.array([0.1, 0.2, -0.1, 0.3, 0.0, -0.2]))
    b = SE3.exp(np.array([-0.2, 0.1, 0.4, -0.1, 0.2, 0.1]))
    composed = a @ b
    point = np.array([0.5, -1.0, 2.0])
    assert np.allclose(composed.apply(point), a.apply(b.apply(point)))
    assert (a @ a.inverse()).almost_equal(SE3.identity(), atol=1e-10)


def test_retract_is_left_multiplication():
    pose = SE3.exp(np.array([0.1, 0.0, 0.0, 0.0, 0.2, 0.0]))
    twist = np.array([0.01, -0.02, 0.03, 0.001, 0.002, -0.003])
    assert pose.retract(twist).almost_equal(SE3.exp(twist) @ pose)


def test_look_at_points_camera_at_target():
    eye = np.array([1.0, 2.0, 0.5])
    target = np.array([0.0, 0.0, 0.0])
    pose = SE3.look_at(eye, target)
    target_cam = pose.apply(target)
    # Target must lie on the +z optical axis.
    assert target_cam[2] > 0
    assert abs(target_cam[0]) < 1e-9 and abs(target_cam[1]) < 1e-9
    # The camera centre maps to the origin.
    assert np.allclose(pose.apply(eye), np.zeros(3), atol=1e-12)


def test_look_at_rejects_coincident_points():
    with pytest.raises(ValueError):
        SE3.look_at(np.zeros(3), np.zeros(3))


def test_distance_translation_and_rotation():
    pose = SE3.identity()
    moved = SE3.exp(np.array([0.3, 0.0, 0.0, 0.0, 0.0, 0.0])) @ pose
    trans, rot = pose.distance(moved)
    assert trans == pytest.approx(0.3, abs=1e-9)
    assert rot == pytest.approx(0.0, abs=1e-9)


def test_quaternion_rotation_roundtrip():
    quat = np.array([0.9, 0.1, -0.3, 0.2])
    rotation = quaternion_to_rotation(quat)
    assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-10)
    recovered = rotation_to_quaternion(rotation)
    expected = quat / np.linalg.norm(quat)
    assert np.allclose(recovered, expected, atol=1e-8) or np.allclose(
        recovered, -expected, atol=1e-8
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(finite_floats, min_size=6, max_size=6))
def test_exp_preserves_rotation_properties(twist_values):
    pose = SE3.exp(np.asarray(twist_values))
    rotation = pose.rotation
    assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-8)
    assert np.linalg.det(rotation) == pytest.approx(1.0, abs=1e-8)


@settings(max_examples=40, deadline=None)
@given(st.lists(finite_floats, min_size=6, max_size=6), st.lists(finite_floats, min_size=3, max_size=3))
def test_inverse_undoes_apply(twist_values, point_values):
    pose = SE3.exp(np.asarray(twist_values))
    point = np.asarray(point_values)
    assert np.allclose(pose.inverse().apply(pose.apply(point)), point, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=4, max_size=4))
def test_quaternion_to_rotation_is_orthonormal(quat_values):
    quat = np.asarray(quat_values)
    if np.linalg.norm(quat) < 1e-3:
        quat = np.array([1.0, 0.0, 0.0, 0.0])
    rotation = quaternion_to_rotation(quat)
    assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-8)
    assert np.linalg.det(rotation) == pytest.approx(1.0, abs=1e-6)
