"""Property-based (hypothesis) tests for rasterizer invariants.

Scenes are generated from a drawn RNG seed plus drawn scene parameters, so
every example is deterministic and shrinkable.  The invariants hold for both
backends and for arbitrary clouds:

* per-pixel blending weights sum to at most 1 (accumulated alpha <= 1);
* transmittance is monotonically non-increasing front-to-back;
* ``fragments_per_pixel`` equals the per-pixel count of processed fragments;
* ``fragments_per_subtile()`` sums to ``n_fragments``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gaussians import Camera, GaussianCloud, SE3, rasterize

scene_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "n_gaussians": st.integers(min_value=0, max_value=40),
        "opacity": st.floats(min_value=0.05, max_value=0.999),
        "scale": st.floats(min_value=0.02, max_value=0.4),
        "width": st.integers(min_value=1, max_value=40),
        "height": st.integers(min_value=1, max_value=30),
        "tile_size": st.sampled_from([4, 8, 16]),
        "depth_spread": st.floats(min_value=0.0, max_value=2.0),
    }
)


def _build_scene(params):
    rng = np.random.default_rng(params["seed"])
    n = params["n_gaussians"]
    if n == 0:
        cloud = GaussianCloud.empty()
    else:
        points = rng.uniform(-0.6, 0.6, size=(n, 3))
        points[:, 2] = points[:, 2] * params["depth_spread"]
        colors = rng.uniform(0.0, 1.0, size=(n, 3))
        cloud = GaussianCloud.from_points(
            points, colors, scale=params["scale"], opacity=params["opacity"]
        )
    camera = Camera.from_fov(params["width"], params["height"], fov_x_degrees=70.0)
    pose = SE3.look_at(np.array([0.0, 0.0, -2.0]), np.zeros(3), up=(0, 1, 0))
    return cloud, camera, pose, params["tile_size"]


@pytest.mark.parametrize("backend", ["tile", "flat"])
@given(params=scene_strategy)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_rasterizer_invariants(backend, params):
    cloud, camera, pose, tile_size = _build_scene(params)
    result = rasterize(
        cloud, camera, pose, tile_size=tile_size, subtile_size=tile_size // 2 or 1,
        backend=backend,
    )

    # Weights sum to at most one per pixel (alpha compositing conservation).
    assert np.all(result.alpha <= 1.0 + 1e-9)
    assert np.all(result.alpha >= -1e-12)

    processed_totals = np.zeros_like(result.fragments_per_pixel)
    for cache in result.tile_caches:
        weights = cache.weights
        # Per-pixel weight sums within a tile match the alpha map.
        v_idx, u_idx = cache.pixel_indices
        np.testing.assert_allclose(weights.sum(axis=1), result.alpha[v_idx, u_idx], atol=1e-12)

        # Transmittance is monotonically non-increasing front-to-back.
        trans = cache.transmittance_before
        if trans.shape[1] > 1:
            assert np.all(np.diff(trans, axis=1) <= 1e-15)
        assert np.all(trans <= 1.0 + 1e-15)
        assert np.all(trans >= 0.0)

        # Early termination is a suffix: once a fragment is not processed, no
        # later fragment of the same pixel is processed either.
        processed = cache.processed
        if processed.shape[1] > 1:
            assert not np.any((~processed[:, :-1]) & processed[:, 1:])

        processed_totals[v_idx, u_idx] += processed.sum(axis=1)

    # fragments_per_pixel equals the count of processed fragments...
    np.testing.assert_array_equal(result.fragments_per_pixel, processed_totals)
    # ...and the subtile aggregation preserves the total.
    assert result.fragments_per_subtile().sum() == result.n_fragments
    assert result.n_fragments == result.fragments_per_pixel.sum()


@given(params=scene_strategy)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_backends_agree_on_random_scenes(params):
    """Differential property: both backends agree on arbitrary scenes."""
    cloud, camera, pose, tile_size = _build_scene(params)
    kwargs = dict(tile_size=tile_size, subtile_size=tile_size // 2 or 1)
    tile = rasterize(cloud, camera, pose, backend="tile", **kwargs)
    flat = rasterize(cloud, camera, pose, backend="flat", **kwargs)
    np.testing.assert_allclose(flat.image, tile.image, atol=1e-10)
    np.testing.assert_allclose(flat.depth, tile.depth, atol=1e-10)
    np.testing.assert_allclose(flat.alpha, tile.alpha, atol=1e-10)
    np.testing.assert_array_equal(flat.fragments_per_pixel, tile.fragments_per_pixel)
