"""Tests for the profiling tools behind the paper's Sec. 3 observations."""

import numpy as np
import pytest

from repro.gaussians import rasterize, render_backward
from repro.profiling import (
    frame_similarity_series,
    gradient_distribution,
    iteration_workload_similarity,
    latency_breakdown,
    pixel_workload_distribution,
    stage_breakdown,
    subtile_pair_symmetry,
)
from repro.profiling.gradients import GradientDistribution
from repro.profiling.latency import per_frame_latency_series, rendering_dominance
from repro.profiling.similarity import similarity_by_keyframe_distance
from repro.profiling.workload import cross_frame_workload_similarity
from repro.slam import Frame, photometric_geometric_loss


class TestLatencyProfiling:
    def test_breakdown_sums_to_one(self, tiny_slam_result):
        breakdown = latency_breakdown(tiny_slam_result.all_snapshots())
        assert sum(breakdown.values()) == pytest.approx(1.0, abs=1e-9)
        # Observation 1: tracking + mapping dominate.
        assert breakdown["tracking"] + breakdown["mapping"] > 0.8

    def test_stage_breakdown_rendering_dominates(self, tiny_slam_result):
        shares = stage_breakdown(tiny_slam_result.all_snapshots(), stage="tracking")
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)
        assert rendering_dominance(shares) > 0.6  # Observation 2

    def test_per_frame_series_length(self, tiny_slam_result):
        series = per_frame_latency_series(tiny_slam_result.all_snapshots())
        assert series.shape[0] == len(tiny_slam_result.frame_records)
        assert np.all(series > 0)

    def test_empty_input(self):
        assert stage_breakdown([]) == {}


class TestGradientProfiling:
    def _distribution(self, sequence):
        cloud = sequence.scene.cloud
        frame = Frame.from_rgbd(sequence.frame(1))
        render = rasterize(cloud, frame.camera, sequence.frame(0).gt_pose_cw)
        loss = photometric_geometric_loss(render, frame)
        grads = render_backward(render, cloud, loss.dL_dimage, loss.dL_ddepth)
        return gradient_distribution(grads)

    def test_distribution_is_heavily_skewed(self, tiny_sequence):
        distribution = self._distribution(tiny_sequence)
        assert isinstance(distribution, GradientDistribution)
        # Observation 3: a small fraction of Gaussians carries most of the mass.
        assert distribution.top_fraction_share(0.14) > 0.4
        assert distribution.fraction_needed_for_share(0.8) < 0.6
        assert 0.0 < distribution.gini_coefficient() <= 1.0

    def test_histogram_consistency(self, tiny_sequence):
        distribution = self._distribution(tiny_sequence)
        assert distribution.histogram_counts.sum() == np.count_nonzero(distribution.scores > 0)

    def test_empty_distribution(self):
        distribution = GradientDistribution(
            scores=np.zeros(0), histogram_counts=np.zeros(5, dtype=int), histogram_edges=np.linspace(0, 1, 6)
        )
        assert distribution.top_fraction_share() == 0.0
        assert distribution.gini_coefficient() == 0.0


class TestWorkloadProfiling:
    def test_iteration_similarity_is_high(self, tiny_slam_result):
        correlations = iteration_workload_similarity(tiny_slam_result.tracking_snapshots())
        assert correlations.size > 0
        # Observation 6: consecutive iterations have nearly identical workloads.
        assert correlations.mean() > 0.9

    def test_cross_frame_similarity_lower_than_within_frame(self, tiny_slam_result):
        snapshots = tiny_slam_result.tracking_snapshots()
        within = iteration_workload_similarity(snapshots).mean()
        across = cross_frame_workload_similarity(snapshots)
        if across.size:
            assert within >= across.mean() - 1e-6

    def test_pixel_distribution_summary(self, tiny_slam_result):
        snapshot = tiny_slam_result.tracking_snapshots()[0]
        summary = pixel_workload_distribution(snapshot)
        assert summary["counts"].sum() == snapshot.n_pixels
        assert summary["max"] >= summary["mean"]

    def test_subtile_symmetry_mostly_high(self, tiny_slam_result):
        snapshot = tiny_slam_result.tracking_snapshots()[0]
        symmetry = subtile_pair_symmetry(snapshot)
        assert symmetry["n_subtiles"] > 0
        # Fig. 10: the vast majority of subtiles are pairing-friendly.
        assert symmetry["symmetric_fraction"] > 0.6


class TestSimilarityProfiling:
    def test_consecutive_frames_highly_similar(self, tiny_sequence):
        series = frame_similarity_series(tiny_sequence, n_frames=5, keyframe_interval=3)
        assert series["rmse"].shape[0] == 4
        # Observation 5: consecutive frames are similar.
        assert series["ssim"].mean() > 0.5
        assert series["rmse"].mean() < 0.2

    def test_grouping_by_keyframe_distance(self, tiny_sequence):
        series = frame_similarity_series(tiny_sequence, n_frames=6, keyframe_interval=3)
        grouped = similarity_by_keyframe_distance(series)
        assert set(grouped) <= {0, 1, 2}
        for stats in grouped.values():
            assert 0.0 <= stats["rmse"] <= 1.0
            assert stats["count"] >= 1
