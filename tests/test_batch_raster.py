"""Tests for the batched multi-view rasterizer (`repro.gaussians.batch`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians import (
    allocate_flat_arena,
    rasterize,
    rasterize_batch,
    render_backward,
    render_backward_batch,
    shared_preprocess,
)
from repro.testing.scenarios import DEFAULT_LIBRARY

GRADIENT_FIELDS = (
    "positions",
    "log_scales",
    "rotations",
    "opacity_logits",
    "colors",
    "cov3d",
    "per_gaussian_pose",
)


def _spec(name: str = "dense_random"):
    return DEFAULT_LIBRARY.get(name).build()


def _batch_for(spec, n_views: int, **kwargs):
    poses = spec.view_poses(n_views)
    return (
        rasterize_batch(
            spec.cloud,
            [spec.camera] * n_views,
            poses,
            backgrounds=[spec.background] * n_views,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
            **kwargs,
        ),
        poses,
    )


class TestForwardEquivalence:
    def test_batch_of_one_matches_single_view_bitwise(self):
        spec = _spec()
        batch, _ = _batch_for(spec, 1)
        single = rasterize(
            spec.cloud,
            spec.camera,
            spec.pose_cw,
            background=spec.background,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
            backend="flat",
        )
        view = batch.views[0]
        np.testing.assert_array_equal(view.image, single.image)
        np.testing.assert_array_equal(view.depth, single.depth)
        np.testing.assert_array_equal(view.alpha, single.alpha)
        assert np.array_equal(view.fragments_per_pixel, single.fragments_per_pixel)
        assert view.n_fragments == single.n_fragments

    def test_three_view_batch_matches_sequential_calls(self):
        spec = _spec()
        batch, poses = _batch_for(spec, 3)
        assert batch.n_views == 3
        for view, pose in zip(batch.views, poses):
            single = rasterize(
                spec.cloud,
                spec.camera,
                pose,
                background=spec.background,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
                backend="flat",
            )
            np.testing.assert_array_equal(view.image, single.image)
            assert np.array_equal(view.fragments_per_pixel, single.fragments_per_pixel)
        assert batch.n_fragments_total == sum(batch.per_view_fragments())

    def test_views_share_one_arena(self):
        spec = _spec()
        batch, _ = _batch_for(spec, 3)
        assert batch.arena.n_fragments == sum(
            sum(cache.weights.size for cache in view.tile_caches) for view in batch.views
        )
        for view in batch.views:
            for cache in view.tile_caches:
                assert cache.weights.base is batch.arena.weights

    def test_empty_cloud_batch(self):
        spec = _spec("empty_cloud")
        batch, _ = _batch_for(spec, 2)
        for view in batch.views:
            assert view.n_fragments == 0
            np.testing.assert_allclose(
                view.image, np.broadcast_to(spec.background, view.image.shape)
            )

    def test_timings_recorded(self):
        spec = _spec()
        batch, _ = _batch_for(spec, 2)
        timings = batch.timings()
        assert timings["shared_s"] >= 0.0
        assert len(timings["views_s"]) == 2
        assert timings["total_s"] >= max(timings["views_s"])


class TestBackwardEquivalence:
    def _gradients(self, spec, n_views):
        rng = np.random.default_rng(7)
        height, width = spec.camera.height, spec.camera.width
        images = [rng.uniform(-1.0, 1.0, size=(height, width, 3)) for _ in range(n_views)]
        depths = [rng.uniform(-1.0, 1.0, size=(height, width)) for _ in range(n_views)]
        return images, depths

    def test_fused_backward_matches_per_view_sum(self):
        spec = _spec()
        batch, poses = _batch_for(spec, 3)
        images, depths = self._gradients(spec, 3)
        fused = render_backward_batch(
            batch, spec.cloud, images, depths, compute_pose_gradient=True
        )
        sequential = [
            render_backward(view, spec.cloud, image, depth, compute_pose_gradient=True)
            for view, image, depth in zip(batch.views, images, depths)
        ]
        for name in GRADIENT_FIELDS:
            expected = sum(np.asarray(getattr(grads, name)) for grads in sequential)
            np.testing.assert_allclose(
                np.asarray(getattr(fused.cloud, name)), expected, atol=1e-8
            )
        np.testing.assert_allclose(
            fused.per_view_pose_twists,
            np.stack([grads.pose_twist for grads in sequential]),
            atol=1e-8,
        )
        np.testing.assert_allclose(
            fused.cloud.pose_twist,
            sum(grads.pose_twist for grads in sequential),
            atol=1e-8,
        )

    def test_per_view_traces_match_sequential(self):
        spec = _spec()
        batch, _ = _batch_for(spec, 2)
        images, depths = self._gradients(spec, 2)
        fused = render_backward_batch(batch, spec.cloud, images, depths)
        for view, image, depth, trace in zip(
            batch.views, images, depths, fused.per_view_traces
        ):
            single = render_backward(view, spec.cloud, image, depth)
            assert trace.tile_ids == single.trace.tile_ids
            for got, expected in zip(
                trace.per_tile_pixel_counts, single.trace.per_tile_pixel_counts
            ):
                assert np.array_equal(got, expected)
        # The fused trace concatenates the per-view traces in view order.
        assert fused.cloud.trace.total_pixel_level_updates == sum(
            trace.total_pixel_level_updates for trace in fused.per_view_traces
        )

    def test_pose_gradient_off_by_default(self):
        spec = _spec("single_gaussian")
        batch, _ = _batch_for(spec, 2)
        images, depths = self._gradients(spec, 2)
        fused = render_backward_batch(batch, spec.cloud, images, depths)
        assert np.all(fused.per_view_pose_twists == 0.0)
        assert np.all(fused.cloud.pose_twist == 0.0)


class TestValidationAndReuse:
    def test_mismatched_view_lists_rejected(self):
        spec = _spec("single_gaussian")
        with pytest.raises(ValueError, match="one pose per view"):
            rasterize_batch(spec.cloud, [spec.camera, spec.camera], [spec.pose_cw])
        with pytest.raises(ValueError, match="at least one view"):
            rasterize_batch(spec.cloud, [], [])
        with pytest.raises(ValueError, match="backgrounds"):
            rasterize_batch(
                spec.cloud,
                [spec.camera],
                [spec.pose_cw],
                backgrounds=[spec.background, spec.background],
            )
        with pytest.raises(ValueError, match="shape"):
            rasterize_batch(
                spec.cloud, [spec.camera], [spec.pose_cw], backgrounds=np.zeros((2, 3))
            )

    def test_scalar_tuple_background_is_shared(self):
        spec = _spec("single_gaussian")
        poses = spec.view_poses(2)
        batch = rasterize_batch(
            spec.cloud, [spec.camera] * 2, poses, backgrounds=(0.2, 0.3, 0.4)
        )
        single = rasterize(
            spec.cloud,
            spec.camera,
            spec.pose_cw,
            background=np.array([0.2, 0.3, 0.4]),
            backend="flat",
        )
        np.testing.assert_array_equal(batch.views[0].image, single.image)

    def test_per_view_none_backgrounds_allowed(self):
        spec = _spec("single_gaussian")
        poses = spec.view_poses(3)
        batch = rasterize_batch(
            spec.cloud, [spec.camera] * 3, poses, backgrounds=[None, None, None]
        )
        assert batch.n_views == 3

    def test_backward_gradient_counts_validated(self):
        spec = _spec("single_gaussian")
        batch, _ = _batch_for(spec, 2)
        one_image = np.zeros(batch.views[0].image.shape)
        with pytest.raises(ValueError, match="image gradients"):
            render_backward_batch(batch, spec.cloud, [one_image])
        with pytest.raises(ValueError, match="depth gradients"):
            render_backward_batch(
                batch, spec.cloud, [one_image, one_image], dL_ddepths=[None]
            )

    def test_arena_reuse_produces_identical_renders(self):
        spec = _spec()
        first, poses = _batch_for(spec, 2)
        expected = [view.image.copy() for view in first.views]
        second, _ = _batch_for(spec, 2, arena=first.arena)
        assert second.arena is first.arena
        for view, image in zip(second.views, expected):
            np.testing.assert_array_equal(view.image, image)

    def test_too_small_arena_is_replaced(self):
        spec = _spec()
        tiny = allocate_flat_arena(1)
        batch, _ = _batch_for(spec, 2, arena=tiny)
        assert batch.arena is not tiny
        assert batch.arena.n_fragments >= batch.n_fragments_total

    def test_shared_preprocess_rowwise_identical(self):
        spec = _spec()
        shared = shared_preprocess(spec.cloud)
        assert shared.n_candidates == spec.cloud.n_active
        np.testing.assert_array_equal(shared.cov3d, spec.cloud.covariances())
        np.testing.assert_array_equal(shared.opacities, spec.cloud.opacities())

    def test_shared_preprocess_respects_active_mask(self):
        spec = _spec()
        spec.cloud.mask(np.arange(0, len(spec.cloud), 2))
        shared = shared_preprocess(spec.cloud)
        assert shared.n_candidates == spec.cloud.n_active
        np.testing.assert_array_equal(shared.indices, spec.cloud.active_indices())
