"""Degenerate batch inputs through the plan/execute split and both batch engines.

The planner (:func:`repro.gaussians.batch.plan_batch_views`) and executor
(:func:`~repro.gaussians.batch.execute_plan`) must produce *clean* results —
background images, zero fragments, well-formed work units — for workloads
where there is nothing to rasterize: an empty cloud, a single-pixel viewport,
and views whose every Gaussian is culled.  The same inputs must flow through
the flat and sharded engines' ``render_batch`` without crashing and agree
bitwise, and a zero-view batch must be rejected with a ``ValueError`` at
planning time rather than failing deep inside arena reservation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import EngineConfig, RenderEngine
from repro.gaussians.batch import execute_plan, plan_batch_views
from repro.testing.scenarios import DEFAULT_LIBRARY

# Scenarios whose batches contain no rasterizable fragments at all, plus the
# smallest viewport the tiler supports.
DEGENERATE = ("empty_cloud", "all_culled", "one_pixel")


def _spec(name: str):
    return DEFAULT_LIBRARY.get(name).build()


def _batch_inputs(spec, n_views: int = 3):
    poses = spec.view_poses(n_views)
    return [spec.camera] * n_views, poses, [spec.background] * n_views


@pytest.mark.parametrize("name", DEGENERATE)
def test_plan_and_execute_produce_clean_results(name):
    spec = _spec(name)
    cameras, poses, backgrounds = _batch_inputs(spec)
    plan = plan_batch_views(
        spec.cloud,
        cameras,
        poses,
        backgrounds=backgrounds,
        tile_size=spec.tile_size,
        subtile_size=spec.subtile_size,
    )
    assert plan.n_views == 3
    assert plan.total_fragments == sum(unit.n_fragments for unit in plan.units)
    batch = execute_plan(plan)
    assert len(batch.views) == 3
    for view, background in zip(batch.views, backgrounds):
        height, width = view.image.shape[:2]
        assert (height, width) == (spec.camera.height, spec.camera.width)
        assert np.all(np.isfinite(view.image))
        assert np.all(view.alpha >= 0.0) and np.all(view.alpha <= 1.0)
        if view.n_fragments == 0:
            # Nothing composited: the image must be exactly the background.
            assert np.array_equal(view.image, np.broadcast_to(background, view.image.shape))
            assert np.all(view.depth == 0.0)
            assert np.all(view.fragments_per_pixel == 0)


@pytest.mark.parametrize("name", ("empty_cloud", "all_culled"))
def test_fragmentless_plans_reserve_nothing(name):
    spec = _spec(name)
    cameras, poses, backgrounds = _batch_inputs(spec)
    plan = plan_batch_views(spec.cloud, cameras, poses, backgrounds=backgrounds)
    assert plan.total_fragments == 0
    assert all(unit.base == 0 for unit in plan.units)


@pytest.mark.parametrize("backend", ("flat", "sharded"))
@pytest.mark.parametrize("name", DEGENERATE)
def test_engines_render_degenerate_batches(name, backend):
    spec = _spec(name)
    cameras, poses, backgrounds = _batch_inputs(spec)
    engine = RenderEngine(
        EngineConfig(backend=backend, geom_cache=False, shard_workers=2)
    )
    batch = engine.render_batch(
        spec.cloud,
        cameras,
        poses,
        backgrounds=backgrounds,
        tile_size=spec.tile_size,
        subtile_size=spec.subtile_size,
        managed=False,
    )
    reference = execute_plan(
        plan_batch_views(
            spec.cloud,
            cameras,
            poses,
            backgrounds=backgrounds,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
        )
    )
    for view, expected in zip(batch.views, reference.views):
        assert np.array_equal(view.image, expected.image)
        assert np.array_equal(view.depth, expected.depth)
        assert np.array_equal(view.alpha, expected.alpha)
        assert np.array_equal(view.fragments_per_pixel, expected.fragments_per_pixel)


@pytest.mark.parametrize("backend", ("flat", "sharded"))
def test_zero_view_batch_rejected(backend):
    spec = _spec("single_gaussian")
    engine = RenderEngine(
        EngineConfig(backend=backend, geom_cache=False, shard_workers=2)
    )
    with pytest.raises(ValueError, match="at least one view"):
        engine.render_batch(spec.cloud, [], [], managed=False)
    with pytest.raises(ValueError, match="at least one view"):
        plan_batch_views(spec.cloud, [], [])


def test_mismatched_views_rejected_at_planning():
    spec = _spec("single_gaussian")
    with pytest.raises(ValueError, match="one pose per view"):
        plan_batch_views(spec.cloud, [spec.camera, spec.camera], [spec.pose_cw])
