"""Tests for spherical harmonics and the shared utility helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.sh import (
    eval_sh,
    eval_sh_gradient,
    n_sh_coeffs,
    rgb_to_sh_dc,
    sh_basis,
    sh_dc_to_rgb,
)
from repro.utils import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
    default_rng,
    derive_rng,
)


class TestSphericalHarmonics:
    def test_coefficient_counts(self):
        assert n_sh_coeffs(0) == 1
        assert n_sh_coeffs(1) == 4
        assert n_sh_coeffs(2) == 9
        with pytest.raises(ValueError):
            n_sh_coeffs(3)

    def test_degree0_is_view_independent(self):
        coeffs = np.zeros((3, 1, 3))
        coeffs[:, 0, :] = rgb_to_sh_dc(np.array([[0.2, 0.5, 0.8]] * 3))
        a = eval_sh(coeffs, np.array([[0, 0, 1.0]] * 3), degree=0)
        b = eval_sh(coeffs, np.array([[1.0, 0, 0]] * 3), degree=0)
        assert np.allclose(a, b)
        assert np.allclose(a, [[0.2, 0.5, 0.8]], atol=1e-9)

    def test_degree1_varies_with_direction(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(0, 0.3, (2, 4, 3))
        a = eval_sh(coeffs, np.array([[0, 0, 1.0]] * 2), degree=1)
        b = eval_sh(coeffs, np.array([[0, 0, -1.0]] * 2), degree=1)
        assert not np.allclose(a, b)

    def test_dc_roundtrip(self):
        rgb = np.array([[0.1, 0.4, 0.9]])
        assert np.allclose(sh_dc_to_rgb(rgb_to_sh_dc(rgb)), rgb, atol=1e-9)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(0, 0.2, (1, 4, 3))
        direction = np.array([[0.3, -0.5, 0.8]])
        dL_dcolour = np.array([[0.7, -0.2, 0.4]])
        grads = eval_sh_gradient(dL_dcolour, direction, degree=1, n_total_coeffs=4)
        eps = 1e-6
        for k in range(4):
            for c in range(3):
                plus, minus = coeffs.copy(), coeffs.copy()
                plus[0, k, c] += eps
                minus[0, k, c] -= eps
                # Loss = sum(dL_dcolour * colour); clipping ignored inside range.
                numeric = (
                    np.sum(dL_dcolour * eval_sh(plus, direction, 1))
                    - np.sum(dL_dcolour * eval_sh(minus, direction, 1))
                ) / (2 * eps)
                assert grads[0, k, c] == pytest.approx(numeric, abs=1e-5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            eval_sh(np.zeros((3, 4)), np.zeros((3, 3)), degree=1)
        with pytest.raises(ValueError):
            eval_sh(np.zeros((3, 1, 3)), np.zeros((3, 3)), degree=2)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-1, 1, allow_nan=False), min_size=3, max_size=3))
    def test_basis_is_bounded(self, direction):
        direction = np.asarray(direction)
        if np.linalg.norm(direction) < 1e-3:
            direction = np.array([0.0, 0.0, 1.0])
        basis = sh_basis(direction, degree=2)
        assert np.all(np.abs(basis) < 1.2)


class TestUtils:
    def test_default_rng_deterministic(self):
        assert default_rng(3).integers(0, 1000) == default_rng(3).integers(0, 1000)

    def test_derive_rng_decorrelated_streams(self):
        parent_a, parent_b = default_rng(3), default_rng(3)
        child_a = derive_rng(parent_a, "frame", 0)
        child_b = derive_rng(parent_b, "frame", 1)
        assert child_a.integers(0, 10**6) != child_b.integers(0, 10**6)

    def test_derive_seed_deterministic_per_worker(self):
        from repro.utils import derive_seed

        # Same (base, worker) -> same seed, independent of call order or any
        # shared generator state; distinct workers/bases -> distinct seeds.
        assert derive_seed(7, 0) == derive_seed(7, 0)
        assert derive_seed(7, 0) != derive_seed(7, 1)
        assert derive_seed(8, 0) != derive_seed(7, 0)
        # None falls back to the library default deterministically.
        assert derive_seed(None, 3) == derive_seed(None, 3)
        # The full base participates: no 32-bit truncation, signs distinct.
        assert derive_seed(7, 0) != derive_seed(7 + 2**32, 0)
        assert derive_seed(-7, 0) != derive_seed(7, 0)
        seeds = {derive_seed(7, worker) for worker in range(16)}
        assert len(seeds) == 16
        assert all(0 <= seed < 2**64 for seed in seeds)

    def test_check_shape(self):
        arr = np.zeros((3, 2))
        assert check_shape(arr, (3, 2), "arr") is arr
        assert check_shape(arr, (None, 2), "arr") is arr
        with pytest.raises(ValueError):
            check_shape(arr, (2, 3), "arr")
        with pytest.raises(ValueError):
            check_shape(arr, (3,), "arr")

    def test_check_finite(self):
        with pytest.raises(ValueError):
            check_finite(np.array([1.0, np.nan]), "arr")
        check_finite(np.array([1.0, 2.0]), "arr")

    def test_check_positive_and_probability(self):
        assert check_positive(2.5, "x") == 2.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        check_positive(0.0, "x", strict=False)
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
