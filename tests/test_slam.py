"""Tests for the SLAM substrate: losses, keyframes, optimizer, tracking, mapping, pipeline."""

import numpy as np
import pytest

from repro.gaussians import GaussianCloud, SE3, rasterize
from repro.slam import (
    Adam,
    EveryFramePolicy,
    Frame,
    GradientTracker,
    IntervalKeyframePolicy,
    Mapper,
    MappingConfig,
    PhotometricKeyframePolicy,
    PoseDistanceKeyframePolicy,
    SLAMPipeline,
    TrackingConfig,
    downsample_frame,
    make_algorithm,
    make_keyframe_policy,
    mono_gs,
    photo_slam,
    photometric_geometric_loss,
    resample_image,
    splatam,
)
from repro.slam.tracking import GeometricTracker


def _frame_from(sequence, index):
    return Frame.from_rgbd(sequence.frame(index))


class TestLosses:
    def test_zero_loss_for_perfect_render(self, tiny_sequence):
        frame = _frame_from(tiny_sequence, 0)
        cloud = tiny_sequence.scene.cloud
        render = rasterize(cloud, frame.camera, frame.gt_pose_cw)
        # Compare the render against itself (no sensor noise).
        perfect = Frame(
            index=0, image=render.image, depth=render.depth, camera=frame.camera
        )
        loss = photometric_geometric_loss(render, perfect)
        assert loss.total == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(loss.dL_dimage, 0.0)

    def test_lambda_weighting(self, tiny_sequence):
        frame = _frame_from(tiny_sequence, 1)
        cloud = tiny_sequence.scene.cloud
        render = rasterize(cloud, frame.camera, tiny_sequence.frame(0).gt_pose_cw)
        pho_only = photometric_geometric_loss(render, frame, lambda_photometric=1.0)
        mixed = photometric_geometric_loss(render, frame, lambda_photometric=0.5)
        assert pho_only.geometric == 0.0
        assert mixed.geometric > 0.0

    def test_resolution_mismatch_raises(self, tiny_sequence):
        frame = _frame_from(tiny_sequence, 0)
        cloud = tiny_sequence.scene.cloud
        render = rasterize(cloud, frame.camera, frame.gt_pose_cw)
        small = downsample_frame(frame, 0.25)
        with pytest.raises(ValueError):
            photometric_geometric_loss(render, small)

    def test_invalid_lambda(self, tiny_sequence):
        frame = _frame_from(tiny_sequence, 0)
        render = rasterize(tiny_sequence.scene.cloud, frame.camera, frame.gt_pose_cw)
        with pytest.raises(ValueError):
            photometric_geometric_loss(render, frame, lambda_photometric=1.5)


class TestFrameResolution:
    def test_resample_image_shapes(self):
        image = np.arange(48).reshape(6, 8).astype(float)
        resized = resample_image(image, 3, 4)
        assert resized.shape == (3, 4)

    def test_downsample_fraction(self, tiny_sequence):
        frame = _frame_from(tiny_sequence, 0)
        reduced = downsample_frame(frame, 1.0 / 16.0)
        assert reduced.n_pixels <= frame.n_pixels / 8  # allow rounding slack
        assert reduced.resolution_fraction == pytest.approx(1.0 / 16.0)
        assert reduced.image.shape[:2] == reduced.camera.resolution

    def test_downsample_noop_at_full_resolution(self, tiny_sequence):
        frame = _frame_from(tiny_sequence, 0)
        same = downsample_frame(frame, 1.0)
        assert same.camera.resolution == frame.camera.resolution

    def test_downsample_invalid_fraction(self, tiny_sequence):
        with pytest.raises(ValueError):
            downsample_frame(_frame_from(tiny_sequence, 0), 0.0)


class TestKeyframePolicies:
    def test_every_frame(self):
        policy = EveryFramePolicy()
        frame = Frame(0, np.zeros((4, 4, 3)), np.zeros((4, 4)), None)
        assert policy.is_keyframe(frame, None)
        assert policy.is_keyframe(frame, frame)

    def test_interval(self):
        policy = IntervalKeyframePolicy(interval=3)
        frames = [
            Frame(i, np.zeros((4, 4, 3)), np.zeros((4, 4)), None) for i in range(7)
        ]
        assert policy.is_keyframe(frames[0], None)
        assert not policy.is_keyframe(frames[2], frames[0])
        assert policy.is_keyframe(frames[3], frames[0])

    def test_pose_distance(self):
        policy = PoseDistanceKeyframePolicy(translation_threshold=0.2, rotation_threshold=10.0)
        base = Frame(0, np.zeros((4, 4, 3)), np.zeros((4, 4)), None, estimated_pose_cw=SE3.identity())
        near = Frame(1, np.zeros((4, 4, 3)), np.zeros((4, 4)), None,
                     estimated_pose_cw=SE3.exp(np.array([0.05, 0, 0, 0, 0, 0])))
        far = Frame(2, np.zeros((4, 4, 3)), np.zeros((4, 4)), None,
                    estimated_pose_cw=SE3.exp(np.array([0.5, 0, 0, 0, 0, 0])))
        assert not policy.is_keyframe(near, base)
        assert policy.is_keyframe(far, base)

    def test_photometric(self):
        policy = PhotometricKeyframePolicy(rmse_threshold=0.1)
        image = np.random.default_rng(0).uniform(0, 1, (8, 8, 3))
        base = Frame(0, image, np.zeros((8, 8)), None)
        similar = Frame(1, image + 0.01, np.zeros((8, 8)), None)
        different = Frame(2, 1.0 - image, np.zeros((8, 8)), None)
        assert not policy.is_keyframe(similar, base)
        assert policy.is_keyframe(different, base)

    def test_factory(self):
        assert isinstance(make_keyframe_policy("interval", interval=2), IntervalKeyframePolicy)
        with pytest.raises(ValueError):
            make_keyframe_policy("unknown")


class TestAdam:
    def test_first_step_magnitude(self):
        adam = Adam()
        step = adam.step("x", np.array([10.0, -10.0]), learning_rate=0.1)
        assert np.allclose(np.abs(step), 0.1, atol=1e-6)
        assert step[0] < 0 < step[1]

    def test_resize_and_keep_rows(self):
        adam = Adam()
        adam.step("w", np.ones((4, 3)), 0.01)
        adam.resize("w", 6)
        step = adam.step("w", np.ones((6, 3)), 0.01)
        assert step.shape == (6, 3)
        adam.keep_rows("w", np.array([True, False, True, True, False, True]))
        step = adam.step("w", np.ones((4, 3)), 0.01)
        assert step.shape == (4, 3)

    def test_reset(self):
        adam = Adam()
        adam.step("x", np.ones(3), 0.1)
        adam.reset("x")
        fresh = adam.step("x", np.ones(3), 0.1)
        assert np.allclose(np.abs(fresh), 0.1, atol=1e-6)


class TestTracking:
    def test_gradient_tracker_reduces_pose_error(self, tiny_sequence):
        cloud = tiny_sequence.scene.cloud
        frame = _frame_from(tiny_sequence, 2)
        # Start from a deliberately perturbed pose.
        initial = frame.gt_pose_cw.retract(np.array([0.01, -0.01, 0.01, 0.005, -0.005, 0.0]))
        start_error = initial.distance(frame.gt_pose_cw)[0]
        tracker = GradientTracker(TrackingConfig(n_iterations=8, record_workloads=True))
        result = tracker.track(cloud, frame, initial)
        final_error = result.pose_cw.distance(frame.gt_pose_cw)[0]
        assert final_error < start_error
        assert len(result.snapshots) == result.iterations_run
        assert result.losses[-1] <= result.losses[0] * 1.5

    def test_geometric_tracker_estimates_relative_motion(self, tiny_sequence):
        cloud = tiny_sequence.scene.cloud
        tracker = GeometricTracker()
        frame0 = _frame_from(tiny_sequence, 0)
        frame1 = _frame_from(tiny_sequence, 1)
        tracker.track(cloud, frame0.with_pose(frame0.gt_pose_cw), frame0.gt_pose_cw)
        # Trick: seed the previous frame with its ground-truth pose, then track.
        tracker._previous_frame = frame0.with_pose(frame0.gt_pose_cw)
        result = tracker.track(cloud, frame1, frame0.gt_pose_cw)
        translation_error, rotation_error = result.pose_cw.distance(frame1.gt_pose_cw)
        # Projective ICP on low-resolution synthetic depth is coarse; it must
        # stay in the right neighbourhood rather than match exactly.
        assert np.isfinite(translation_error)
        assert translation_error < 0.15
        assert rotation_error < 0.2


class TestMapping:
    def test_initialize_and_densify(self, tiny_sequence):
        cloud = GaussianCloud.empty()
        mapper = Mapper(MappingConfig(n_iterations=3, densify_stride=6))
        frame = _frame_from(tiny_sequence, 0).with_pose(tiny_sequence.frame(0).gt_pose_cw)
        added = mapper.initialize_map(cloud, frame, stride=6)
        assert added > 0
        result = mapper.map(cloud, [frame])
        assert len(result.losses) == 3
        assert result.losses[-1] <= result.losses[0]

    def test_max_gaussians_budget_respected(self, tiny_sequence):
        cloud = GaussianCloud.empty()
        mapper = Mapper(MappingConfig(n_iterations=1, densify_stride=2, max_gaussians=100))
        frame = _frame_from(tiny_sequence, 0).with_pose(tiny_sequence.frame(0).gt_pose_cw)
        seeded = mapper.initialize_map(cloud, frame, stride=2)
        mapper.map(cloud, [frame])
        # The seed may exceed the budget, but densification must not grow the
        # map any further once the budget is reached.
        assert cloud.n_total == seeded


class TestAlgorithmsAndPipeline:
    def test_algorithm_factories(self):
        for name in ("gs_slam", "mono_gs", "photo_slam", "splatam"):
            config = make_algorithm(name, fast=True)
            assert config.name == name
            assert config.iterations_per_frame() > 0
        assert splatam().map_every_frame
        assert photo_slam().tracker == "geometric"
        with pytest.raises(ValueError):
            make_algorithm("orb_slam")

    def test_pipeline_end_to_end(self, tiny_slam_result, tiny_sequence):
        result = tiny_slam_result
        assert len(result.estimated_trajectory) == 5
        assert result.keyframe_indices[0] == 0
        assert result.cloud.n_total > 0
        assert result.peak_gaussian_count >= result.cloud.n_total
        assert np.isfinite(result.ate())
        assert result.ate() < 60.0  # centimetres; generous bound for a 5-frame run
        summary = result.summary()
        assert summary["n_frames"] == 5
        assert len(result.all_snapshots()) > 0
        assert result.drift_curve().shape == (5,)

    def test_pipeline_psnr_reasonable(self, tiny_slam_result, tiny_sequence):
        psnr_value = tiny_slam_result.evaluate_psnr(tiny_sequence, max_frames=2)
        assert psnr_value > 10.0

    def test_psnr_without_finite_values_is_nan_not_perfect(self, tiny_sequence):
        """An empty map whose render happens to match the observation exactly
        produces only infinite PSNR values; the aggregate must be nan ("no
        data"), never inf ("perfect quality")."""
        from dataclasses import replace

        from repro.slam.pipeline import SLAMResult

        observation = tiny_sequence.frame(0)
        black = replace(
            observation,
            image=np.zeros_like(observation.image),
            depth=observation.depth.copy(),
        )

        class BlackSequence:
            def frame(self, index):
                assert index == 0
                return black

        result = SLAMResult(
            config_name="empty",
            estimated_trajectory=[observation.gt_pose_cw],
            gt_trajectory=[observation.gt_pose_cw],
            keyframe_indices=[],
            frame_records=[],
            cloud=GaussianCloud.empty(),
            peak_gaussian_count=0,
        )
        value = result.evaluate_psnr(BlackSequence(), max_frames=1)
        assert np.isnan(value)
        assert not np.isinf(value)

    def test_splatam_maps_every_frame(self, tiny_sequence):
        config = splatam(fast=True)
        config.tracking.n_iterations = 2
        config.mapping.n_iterations = 2
        result = SLAMPipeline(config).run(tiny_sequence, n_frames=3)
        assert result.keyframe_indices == [0, 1, 2]

    def test_snapshots_cover_both_stages(self, tiny_slam_result):
        stages = {snapshot.stage for snapshot in tiny_slam_result.all_snapshots()}
        assert stages == {"tracking", "mapping"}
