"""Central finite-difference checks of the analytic backward pass.

The loss is ``L = sum(image * W) + sum(depth * V)`` for fixed random ``W, V``,
so ``dL/dimage = W`` and ``dL/ddepth = V`` feed straight into
``render_backward``.  Numeric gradients use central differences,
``(L(x + h) - L(x - h)) / (2 h)``.

Tolerances
----------
The forward pass is piecewise smooth: the alpha cutoff (1/255), the 0.99
clamp and the early-termination threshold introduce step discontinuities, and
finitely many pixels sit near those boundaries.  The scene below keeps
opacities moderate (no clamp) and transmittance far from the termination
threshold, leaving only the alpha-cutoff crossings, whose contribution is
O(cutoff * h) per crossing pixel.  With ``h = 1e-6`` the checks hold to
``rtol=5e-4, atol=5e-7`` on every parameter; both backends are checked
against the same numeric reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians import Camera, GaussianCloud, SE3, rasterize, render_backward

H_STEP = 1e-6
RTOL = 5e-4
ATOL = 5e-7


def _scene():
    rng = np.random.default_rng(17)
    n = 5
    points = rng.uniform(-0.35, 0.35, size=(n, 3))
    points[:, 2] *= 0.3
    colors = rng.uniform(0.25, 0.75, size=(n, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.16, opacity=0.55)
    camera = Camera.from_fov(20, 14, fov_x_degrees=70.0)
    pose = SE3.look_at(np.array([0.0, 0.0, -2.0]), np.zeros(3), up=(0, 1, 0))
    weight_img = rng.uniform(-1.0, 1.0, size=(14, 20, 3))
    weight_depth = rng.uniform(-1.0, 1.0, size=(14, 20))
    return cloud, camera, pose, weight_img, weight_depth


def _loss(cloud, camera, pose, weight_img, weight_depth, backend):
    result = rasterize(cloud, camera, pose, backend=backend)
    return float(np.sum(result.image * weight_img) + np.sum(result.depth * weight_depth))


@pytest.fixture(scope="module", params=["tile", "flat"])
def grads_and_scene(request):
    backend = request.param
    cloud, camera, pose, weight_img, weight_depth = _scene()
    result = rasterize(cloud, camera, pose, backend=backend)
    grads = render_backward(result, cloud, weight_img, weight_depth, backend=backend)
    return backend, cloud, camera, pose, weight_img, weight_depth, grads


def _numeric(cloud, camera, pose, wi, wd, backend, mutate):
    """Central difference of the loss under the parameter perturbation ``mutate``."""
    plus = cloud.copy()
    mutate(plus, +H_STEP)
    minus = cloud.copy()
    mutate(minus, -H_STEP)
    return (
        _loss(plus, camera, pose, wi, wd, backend)
        - _loss(minus, camera, pose, wi, wd, backend)
    ) / (2.0 * H_STEP)


def test_position_gradients(grads_and_scene):
    backend, cloud, camera, pose, wi, wd, grads = grads_and_scene
    for g in range(len(cloud)):
        for axis in range(3):
            def mutate(c, h, g=g, axis=axis):
                c.positions[g, axis] += h

            numeric = _numeric(cloud, camera, pose, wi, wd, backend, mutate)
            np.testing.assert_allclose(
                grads.positions[g, axis], numeric, rtol=RTOL, atol=ATOL,
                err_msg=f"position gradient mismatch at gaussian {g}, axis {axis}",
            )


def test_opacity_gradients(grads_and_scene):
    backend, cloud, camera, pose, wi, wd, grads = grads_and_scene
    for g in range(len(cloud)):
        def mutate(c, h, g=g):
            c.opacity_logits[g] += h

        numeric = _numeric(cloud, camera, pose, wi, wd, backend, mutate)
        np.testing.assert_allclose(
            grads.opacity_logits[g], numeric, rtol=RTOL, atol=ATOL,
            err_msg=f"opacity-logit gradient mismatch at gaussian {g}",
        )


def test_scale_gradients(grads_and_scene):
    backend, cloud, camera, pose, wi, wd, grads = grads_and_scene
    for g in range(len(cloud)):
        for axis in range(3):
            def mutate(c, h, g=g, axis=axis):
                c.log_scales[g, axis] += h

            numeric = _numeric(cloud, camera, pose, wi, wd, backend, mutate)
            np.testing.assert_allclose(
                grads.log_scales[g, axis], numeric, rtol=RTOL, atol=ATOL,
                err_msg=f"log-scale gradient mismatch at gaussian {g}, axis {axis}",
            )


def test_color_gradients(grads_and_scene):
    backend, cloud, camera, pose, wi, wd, grads = grads_and_scene
    for g in range(len(cloud)):
        for ch in range(3):
            def mutate(c, h, g=g, ch=ch):
                c.colors[g, ch] += h

            numeric = _numeric(cloud, camera, pose, wi, wd, backend, mutate)
            np.testing.assert_allclose(
                grads.colors[g, ch], numeric, rtol=RTOL, atol=ATOL,
                err_msg=f"color gradient mismatch at gaussian {g}, channel {ch}",
            )


def test_pose_twist_gradient(grads_and_scene):
    """Left-perturbation pose gradient: L(exp(h e_i) @ T) differentiated at h=0."""
    backend, cloud, camera, pose, wi, wd, grads = grads_and_scene
    for axis in range(6):
        twist = np.zeros(6)
        twist[axis] = 1.0
        loss_plus = _loss(cloud, camera, SE3.exp(H_STEP * twist) @ pose, wi, wd, backend)
        loss_minus = _loss(cloud, camera, SE3.exp(-H_STEP * twist) @ pose, wi, wd, backend)
        numeric = (loss_plus - loss_minus) / (2.0 * H_STEP)
        np.testing.assert_allclose(
            grads.pose_twist[axis], numeric, rtol=RTOL, atol=ATOL,
            err_msg=f"pose twist gradient mismatch at component {axis}",
        )


def test_backends_produce_matching_gradients():
    """Flat and tile analytic gradients agree far tighter than the FD check."""
    cloud, camera, pose, wi, wd = _scene()
    grads = {}
    for backend in ("tile", "flat"):
        result = rasterize(cloud, camera, pose, backend=backend)
        grads[backend] = render_backward(result, cloud, wi, wd, backend=backend)
    for name in ("positions", "log_scales", "rotations", "opacity_logits", "colors", "pose_twist"):
        np.testing.assert_allclose(
            getattr(grads["flat"], name), getattr(grads["tile"], name), atol=1e-8,
            err_msg=f"backend gradient divergence on {name}",
        )
