"""Shared fixtures: tiny scenes, cameras and cached SLAM runs for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_sequence
from repro.gaussians import Camera, GaussianCloud, SE3
from repro.slam import SLAMPipeline, mono_gs


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_camera() -> Camera:
    return Camera.from_fov(48, 32, fov_x_degrees=70.0)


@pytest.fixture(scope="session")
def simple_pose() -> SE3:
    return SE3.look_at(np.array([0.0, 0.0, -2.0]), np.array([0.0, 0.0, 0.0]), up=(0, 1, 0))


@pytest.fixture(scope="session")
def small_cloud() -> GaussianCloud:
    generator = np.random.default_rng(7)
    points = generator.uniform(-0.5, 0.5, size=(60, 3))
    points[:, 2] *= 0.4
    colors = generator.uniform(0.1, 0.9, size=(60, 3))
    return GaussianCloud.from_points(points, colors, scale=0.12, opacity=0.65)


@pytest.fixture(scope="session")
def tiny_sequence():
    """A very small synthetic sequence shared across integration tests."""
    return make_sequence("tum", n_frames=6, resolution_scale=0.7)


@pytest.fixture(scope="session")
def tiny_slam_result(tiny_sequence):
    """One cached SLAM run reused by pipeline / profiling / hardware tests."""
    config = mono_gs(fast=True)
    config.tracking.n_iterations = 4
    config.mapping.n_iterations = 4
    return SLAMPipeline(config).run(tiny_sequence, n_frames=5)
