"""Model the RTGS plug-in hardware on a real SLAM run and compare configurations.

This mirrors the paper's hardware evaluation (Fig. 15/17): the workload traces
of one SLAM run are replayed through the cycle/energy models of the ONX edge
GPU, the GPU with DISTWAR-style warp merging, and the GPU with the RTGS
plug-in (tracking only, and tracking + mapping), followed by a per-technique
ablation of the plug-in.

Run with:  python examples/hardware_acceleration_study.py
"""

from repro.core import RTGSAlgorithmConfig, build_pipeline
from repro.datasets import make_sequence
from repro.hardware import (
    EdgeGPUModel,
    RTGSFeatureFlags,
    RTGSPlugin,
    evaluate_configurations,
)
from repro.slam import mono_gs

# Scale the synthetic workload counts up to paper-scale pixel counts.
WORKLOAD_SCALE = 150.0


def main() -> None:
    sequence = make_sequence("tum", n_frames=8, resolution_scale=0.8)
    result = build_pipeline(mono_gs(fast=True), RTGSAlgorithmConfig()).run(sequence, n_frames=8)
    snapshots = result.all_snapshots()
    print(f"SLAM run: ATE {result.ate():.2f} cm, {len(snapshots)} optimisation iterations\n")

    print("-- Fig. 15-style system comparison (modelled on the ONX host) --")
    evaluations = evaluate_configurations(snapshots, "onx", workload_scale=WORKLOAD_SCALE)
    for name, evaluation in evaluations.items():
        print(
            f"{name:>20}: tracking {evaluation.tracking_fps:7.2f} FPS | overall "
            f"{evaluation.overall_fps:7.2f} FPS | energy/frame {evaluation.energy_per_frame_j * 1e3:8.2f} mJ"
        )
    improvement = (
        evaluations["baseline"].energy_per_frame_j / evaluations["rtgs"].energy_per_frame_j
    )
    print(f"energy-efficiency improvement of RTGS over the baseline: {improvement:.1f}x\n")

    print("-- Fig. 17(b)-style ablation of the plug-in techniques --")
    baseline_latency = EdgeGPUModel("onx", workload_scale=WORKLOAD_SCALE).frame_latency(snapshots).total
    configurations = [
        ("pipeline only", RTGSFeatureFlags(use_gmu=False, use_rb_buffer=False, use_wsu=False, use_streaming=False, reuse_sorting=False)),
        ("+ GMU", RTGSFeatureFlags(use_rb_buffer=False, use_wsu=False, use_streaming=False, reuse_sorting=False)),
        ("+ R&B buffer", RTGSFeatureFlags(use_wsu=False, use_streaming=False, reuse_sorting=False)),
        ("+ WSU", RTGSFeatureFlags(reuse_sorting=False)),
        ("full RTGS", RTGSFeatureFlags()),
    ]
    for name, flags in configurations:
        plugin = RTGSPlugin(features=flags, workload_scale=WORKLOAD_SCALE)
        latency = plugin.frame_latency(snapshots).total
        print(f"{name:>15}: {latency * 1e3:8.2f} ms/frame  ({baseline_latency / latency:5.2f}x vs ONX)")


if __name__ == "__main__":
    main()
