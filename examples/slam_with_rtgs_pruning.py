"""Run a base 3DGS-SLAM algorithm with and without the RTGS algorithm techniques.

This mirrors the paper's algorithm-level evaluation (Tab. 6): the same MonoGS
pipeline is run unmodified and with adaptive Gaussian pruning + dynamic
downsampling attached, and the resulting accuracy, map size and rendering
workload are compared.

Run with:  python examples/slam_with_rtgs_pruning.py
"""

from repro.core import PruningConfig, RTGSAlgorithmConfig, build_pipeline
from repro.datasets import make_sequence
from repro.metrics import format_db
from repro.slam import mono_gs


def run_variant(name: str, rtgs_config, sequence, n_frames: int) -> None:
    pipeline = build_pipeline(mono_gs(fast=True), rtgs_config)
    result = pipeline.run(sequence, n_frames=n_frames)
    fragments = sum(s.total_fragments for s in result.all_snapshots())
    fractions = [record.resolution_fraction for record in result.frame_records]
    psnr_text = format_db(result.evaluate_psnr(sequence, 3))
    print(
        f"{name:>12}: ATE {result.ate():6.2f} cm | PSNR {psnr_text} dB "
        f"| Gaussians {result.cloud.n_total:5d} | fragments {fragments / 1e6:6.2f} M "
        f"| mean pixel fraction {sum(fractions) / len(fractions):.2f}"
    )


def main() -> None:
    sequence = make_sequence("replica", n_frames=10, resolution_scale=0.8)
    print(f"dataset: {sequence.name}, {len(sequence)} frames, {sequence.camera.resolution}")

    run_variant("baseline", None, sequence, n_frames=10)
    run_variant(
        "RTGS",
        RTGSAlgorithmConfig(pruning=PruningConfig(initial_interval=3)),
        sequence,
        n_frames=10,
    )
    print(
        "\nExpected shape: the RTGS run keeps accuracy in the same ballpark while "
        "shrinking the map and the rendering workload (the paper's 2.5-3.6x "
        "algorithm-level speedup)."
    )


if __name__ == "__main__":
    main()
