"""Quickstart: render a synthetic scene, run one tracking step, inspect workloads.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.datasets import make_sequence
from repro.engine import EngineConfig, RenderEngine
from repro.slam import Frame, GradientTracker, TrackingConfig, photometric_geometric_loss


def main() -> None:
    # 1. Build a small synthetic RGB-D sequence (a stand-in for TUM fr1/desk).
    sequence = make_sequence("tum", n_frames=6, resolution_scale=0.8)
    frame = Frame.from_rgbd(sequence.frame(1))
    print(f"sequence {sequence.name}: {len(sequence)} frames at {frame.camera.resolution}")

    # 2. Render the ground-truth Gaussian scene from the previous frame's
    #    pose.  One RenderEngine session owns backend selection, the geometry
    #    cache and the fragment arena for everything that follows.
    engine = RenderEngine(EngineConfig.from_env())
    cloud = sequence.scene.cloud
    render = engine.render(cloud, frame.camera, sequence.frame(0).gt_pose_cw)
    print(
        f"rendered {render.projected.n_visible} Gaussians via the "
        f"{render.backend!r} backend, {render.n_fragments} fragments, "
        f"mean alpha {render.alpha.mean():.2f}"
    )

    # 3. Compute the SLAM loss and backpropagate to Gaussian + pose gradients.
    loss = photometric_geometric_loss(render, frame)
    gradients = engine.backward(render, cloud, loss.dL_dimage, loss.dL_ddepth)
    print(f"loss {loss.total:.4f}, pose gradient norm {np.linalg.norm(gradients.pose_twist):.4f}")

    # 4. Track the camera pose of the new frame with a few Adam iterations,
    #    injecting the same engine session.
    tracker = GradientTracker(TrackingConfig(n_iterations=10), engine=engine)
    result = tracker.track(cloud, frame, sequence.frame(0).gt_pose_cw)
    error_cm = result.pose_cw.distance(frame.gt_pose_cw)[0] * 100
    print(f"tracked frame 1: final loss {result.losses[-1]:.4f}, pose error {error_cm:.2f} cm")

    # 5. The per-pixel fragment counts are the workload the RTGS hardware model consumes.
    snapshot = result.snapshots[-1]
    print(
        f"workload: {snapshot.total_fragments} fragments, "
        f"{snapshot.total_pixel_level_updates} gradient updates, "
        f"{snapshot.n_tile_pairs} tile-Gaussian pairs"
    )


if __name__ == "__main__":
    main()
