"""Async-pipeline overlap gate: pipelined SLAM segment vs serial sharded.

The same SLAM segment — tracking + windowed mapping over a synthetic TUM
sequence — runs twice over identical inputs:

* **serial**: ``backend="sharded"``, mapping synchronous on the SLAM thread
  (every frame waits out its window's Step 1-5 before the next track);
* **async**: ``backend="async"`` with ``async_pipeline=True`` — the mapper
  optimises on a background thread against the sharded pool (speculating the
  next window's Step 1-2 while the parent finishes Step 5), while the tracker
  renders the last published epoch-pinned map snapshot in the foreground.

Tracking renders are serial flat in-process and mapping batches live on the
worker processes, so the two loads genuinely run concurrently and the
segment's wall-clock approaches ``max(track, map)`` instead of their sum.
The acceptance floor for the async pipeline PR is **>= 1.25x** end-to-end,
enforced absolutely on top of the committed-baseline regression check.

The run also asserts the mechanism (not just the clock): the async run must
record publication points (``async_publications``) and a non-zero hidden
overlap in ``batch_amortization_report``, and the backend must have consumed
speculative plans — a speedup with the machinery disengaged would be noise.

The gate needs real cores: with fewer than 4 CPUs the tracker thread, the
mapper thread and the shard workers time-slice one another and the
measurement is meaningless, so the test auto-skips with a machine-readable
reason, keeping small runners green.
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.conftest import get_sequence, print_table
from benchmarks.perf_gate import best_of, check_speedup, skip_gate
from repro.engine import EngineConfig, RenderEngine
from repro.profiling.latency import batch_amortization_report
from repro.slam import make_algorithm
from repro.slam.pipeline import SLAMPipeline

N_FRAMES = 8
N_WORKERS = 4
MIN_CORES = 4  # tracker thread + mapper thread + workers need real parallelism


def _segment(backend: str, async_pipeline: bool):
    """One warmed SLAM-segment runner over the shared synthetic sequence."""
    sequence = get_sequence("tum", n_frames=N_FRAMES)
    config = make_algorithm("mono_gs", fast=True)
    engine = RenderEngine(
        EngineConfig(
            backend=backend, shard_workers=N_WORKERS, async_pipeline=async_pipeline
        )
    )
    state: dict = {}

    def run():
        state["result"] = SLAMPipeline(config, engine=engine).run(
            sequence, n_frames=N_FRAMES
        )

    # Warm-up run: spawns the worker pool and faults in every code path, so
    # the timed repeats measure the steady-state segment only.
    run()
    return run, state, engine


def test_async_overlap_speedup():
    n_cores = os.cpu_count() or 1
    if n_cores < MIN_CORES:
        skip_gate(
            "async_overlap",
            "async_vs_serial_sharded_slam_segment",
            f"insufficient-cores:needs >= {MIN_CORES} cores for the tracker "
            f"thread, the mapper thread and {N_WORKERS} shard workers; this "
            f"host has {n_cores}",
        )

    serial_run, serial_state, _ = _segment("sharded", async_pipeline=False)
    async_run, async_state, async_engine = _segment("async", async_pipeline=True)

    time_serial = best_of(serial_run)
    time_async = best_of(async_run)
    ratio = time_serial / time_async

    # The mechanism must actually have engaged on the timed async runs.
    result = async_state["result"]
    report = batch_amortization_report(result.all_snapshots())
    assert report["async_publications"] > 0, "async run never published a map"
    assert report["async_overlap_s"] > 0, "async run hid no mapping wall-clock"
    assert 0.0 < report["async_overlap_fraction"] <= 1.0
    stats = async_engine.backend("async").stats
    assert stats["consumed"] > 0, "no speculative plan was ever consumed"
    assert np.isfinite(result.ate())

    print_table(
        f"Async pipelined SLAM segment vs serial sharded "
        f"({N_FRAMES} frames, {N_WORKERS} workers)",
        ["segment", "wall-clock", "speedup", "overlap hidden"],
        [
            ["sharded (serial mapping)", f"{time_serial * 1e3:.0f} ms", "1.00x", "-"],
            [
                "async (pipelined mapping)",
                f"{time_async * 1e3:.0f} ms",
                f"{ratio:.2f}x",
                f"{report['async_overlap_s'] * 1e3:.0f} ms "
                f"({report['async_overlap_fraction']:.0%})",
            ],
        ],
    )
    # The 1.25x acceptance floor of the async-pipeline PR is enforced
    # absolutely on top of the committed-baseline regression check.
    check_speedup(
        "async_overlap",
        "async_vs_serial_sharded_slam_segment",
        ratio,
        minimum=1.25,
    )
