"""Wall-clock of the batched multi-keyframe mapping iteration (Fig. 15 scene).

One fused 4-keyframe mapping iteration — ``rasterize_batch`` over the window,
one fused backward, one averaged Adam update, exactly what the
``StreamingMapper`` scheduler runs — is compared against two sequential
baselines covering the same four views:

* **seed mapping path**: four single-view iterations through the tile
  backend with one Adam step each — what ``Mapper.map`` executed before the
  backend flip and the scheduler rework.  This is the primary gate: the
  batched path must be ≥1.5x faster (acceptance criterion of the scheduler
  PR) and must not regress >20% against the committed baseline.
* **flat sequential**: the same four single-view iterations through the flat
  backend.  Batching fuses Step 5, shares per-Gaussian preprocessing and
  recycles the fragment arena, but forward/Step-4 work is per-view by
  construction, so the win here is modest; the gate only enforces that
  batching never *costs* wall-clock (>20% under the committed ~parity
  baseline fails).

The map is seeded at the mapper's own densification stride from four frames
of the sequence, i.e. the cloud a real mapping window optimises.  Before any
timing, the batch outputs are asserted bit-identical to sequential flat
renders so the comparison cannot drift into comparing different math.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_sequence, print_table
from benchmarks.perf_gate import best_of, check_speedup, perf_gate_active
from repro.engine import EngineConfig, RenderEngine
from repro.gaussians import GaussianCloud
from repro.slam.frame import Frame
from repro.slam.losses import photometric_geometric_loss
from repro.slam.optimizer import Adam

N_KEYFRAMES = 4
SEED_STRIDE = 4  # the mapper's own densification granularity

_PARAMETER_BLOCKS = ("positions", "log_scales", "opacity_logits", "colors")


def _mapping_scene():
    sequence = get_sequence("tum")
    cloud = GaussianCloud.empty()
    frames = []
    for index in range(N_KEYFRAMES):
        observation = sequence.frame(index)
        cloud.extend(
            GaussianCloud.from_rgbd(
                observation.image,
                observation.depth,
                observation.camera,
                observation.gt_pose_cw,
                stride=SEED_STRIDE,
            )
        )
        frames.append(Frame.from_rgbd(observation).with_pose(observation.gt_pose_cw))
    return cloud, frames


def _engine(backend: str) -> RenderEngine:
    return RenderEngine(EngineConfig(backend=backend, geom_cache=False))


def _sequential_iterations(cloud, frames, engine: RenderEngine) -> None:
    """Four single-view mapping iterations (render, loss, backward, step)."""
    adam = Adam()
    for frame in frames:
        render = engine.render(cloud, frame.camera, frame.gt_pose_cw)
        loss = photometric_geometric_loss(render, frame)
        gradients = engine.backward(
            render,
            cloud,
            loss.dL_dimage,
            loss.dL_ddepth,
            compute_pose_gradient=False,
        )
        for name in _PARAMETER_BLOCKS:
            adam.step(name, getattr(gradients, name), 1e-3)


class _BatchedIteration:
    """One fused mapping iteration; the engine recycles the arena like the scheduler."""

    def __init__(self, cloud, frames):
        self.cloud = cloud
        self.frames = frames
        self.engine = _engine("flat")
        self.adam = Adam()

    def __call__(self) -> None:
        batch = self.engine.render_batch(
            self.cloud,
            [frame.camera for frame in self.frames],
            [frame.gt_pose_cw for frame in self.frames],
        )
        losses = [
            photometric_geometric_loss(render, frame)
            for render, frame in zip(batch.views, self.frames)
        ]
        gradients = self.engine.backward_batch(
            batch,
            self.cloud,
            [loss.dL_dimage for loss in losses],
            [loss.dL_ddepth for loss in losses],
        )
        scale = 1.0 / len(self.frames)
        for name in _PARAMETER_BLOCKS:
            self.adam.step(name, scale * np.asarray(getattr(gradients.cloud, name)), 1e-3)


def test_batched_mapping_iteration_speedup():
    cloud, frames = _mapping_scene()

    # Agreement first: the batched render must be the flat render, bitwise,
    # or the timing below compares different math.
    agreement_engine = _engine("flat")
    batch = agreement_engine.render_batch(
        cloud,
        [frame.camera for frame in frames],
        [frame.gt_pose_cw for frame in frames],
    )
    for view, frame in zip(batch.views, frames):
        single = agreement_engine.render(cloud, frame.camera, frame.gt_pose_cw)
        np.testing.assert_array_equal(view.image, single.image)
        assert np.array_equal(view.fragments_per_pixel, single.fragments_per_pixel)
    agreement_engine.release(batch)

    tile_engine, flat_engine = _engine("tile"), _engine("flat")
    batched = _BatchedIteration(cloud, frames)
    batched()  # warm the arena and caches, as in a mapping window
    _sequential_iterations(cloud, frames, tile_engine)
    _sequential_iterations(cloud, frames, flat_engine)

    time_batched = best_of(batched)
    time_tile = best_of(lambda: _sequential_iterations(cloud, frames, tile_engine))
    time_flat = best_of(lambda: _sequential_iterations(cloud, frames, flat_engine))
    vs_seed = time_tile / time_batched
    vs_flat = time_flat / time_batched

    print_table(
        f"Batched {N_KEYFRAMES}-keyframe mapping iteration vs sequential single-view"
        " iterations (Fig. 15 scene)",
        ["mapping path", "wall-clock", "speedup"],
        [
            ["seed (tile backend, sequential)", f"{time_tile * 1e3:.1f} ms", "1.00x"],
            [
                "flat backend, sequential",
                f"{time_flat * 1e3:.1f} ms",
                f"{time_tile / time_flat:.2f}x",
            ],
            ["batched scheduler (fused)", f"{time_batched * 1e3:.1f} ms", f"{vs_seed:.2f}x"],
        ],
    )
    # Primary gate: the scheduler's fused iteration vs the seed mapping path,
    # with the 1.5x acceptance floor enforced absolutely.
    check_speedup("batched_mapping", "batched_vs_seed_mapping", vs_seed, minimum=1.5)
    # Secondary gate: batching must not cost wall-clock against sequential
    # flat iterations.
    check_speedup("batched_mapping", "batched_vs_flat_sequential", vs_flat)


def test_scheduler_map_call_not_slower_than_round_robin():
    """`StreamingMapper.map` per view-render: batched vs legacy round-robin.

    The batched scheduler renders ``batch_views`` views per iteration where
    the legacy loop rendered one, so total per-call work differs; normalising
    by rendered views isolates the scheduling overhead, which must stay small.
    """
    from repro.slam.mapping import MappingConfig, StreamingMapper

    cloud_batched, frames = _mapping_scene()
    cloud_legacy = cloud_batched.copy()

    batched_config = MappingConfig(n_iterations=4, batch_views=3, batched=True)
    legacy_config = MappingConfig(n_iterations=4, batched=False)

    def run(mapper_config, cloud):
        mapper = StreamingMapper(mapper_config)
        return mapper.map(cloud.copy(), frames)

    run(batched_config, cloud_batched)  # warm caches
    time_batched = best_of(lambda: run(batched_config, cloud_batched))
    time_legacy = best_of(lambda: run(legacy_config, cloud_legacy))
    result_batched = run(batched_config, cloud_batched)
    result_legacy = run(legacy_config, cloud_legacy)
    views_batched = sum(result_batched.batch_sizes)
    views_legacy = sum(result_legacy.batch_sizes)
    per_view_batched = time_batched / max(views_batched, 1)
    per_view_legacy = time_legacy / max(views_legacy, 1)

    print_table(
        "StreamingMapper.map: batched scheduler vs legacy round-robin",
        ["scheduler", "views rendered", "wall-clock", "per view"],
        [
            [
                "round-robin (1 view/iter)",
                str(views_legacy),
                f"{time_legacy * 1e3:.1f} ms",
                f"{per_view_legacy * 1e3:.1f} ms",
            ],
            [
                "batched (fused window)",
                str(views_batched),
                f"{time_batched * 1e3:.1f} ms",
                f"{per_view_batched * 1e3:.1f} ms",
            ],
        ],
    )
    if perf_gate_active():
        assert per_view_batched < per_view_legacy * 1.2, (
            "the batched scheduler's per-view cost must stay within 20% of the "
            f"round-robin loop: {per_view_batched * 1e3:.1f} ms vs "
            f"{per_view_legacy * 1e3:.1f} ms per view"
        )
