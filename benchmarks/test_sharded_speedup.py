"""Sharded-backend speedup gate: multi-process batch vs the serial flat batch.

One fused mapping-shaped iteration — a 4-view batch forward plus the fused
backward, exactly the work unit ``StreamingMapper`` schedules — is timed
through the ``sharded`` backend (``shard_workers=4``) and through the serial
``flat`` backend over identical state.  Sharding parallelises the per-view
Step 3 rasterization and Step 4 Rendering BP across worker processes while
Step 1-2 planning and the fused Step 5 stay in the parent, so on a >=4-core
host the sharded path must be **>=1.5x** faster (acceptance criterion of the
sharding PR) and must not regress more than 20% against the committed
baseline.

Outputs are asserted bit-identical before any timing — the sharded backend
executes the very same work units the flat backend runs serially — so the
comparison can never drift into comparing different math.

The gate needs real cores: on hosts (or CI runners) with fewer than 4 CPUs
the measurement is meaningless and the test auto-skips with a logged reason,
keeping single-core runners green.
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.conftest import get_sequence, print_table
from benchmarks.perf_gate import best_of, check_speedup, skip_gate
from repro.engine import EngineConfig, RenderEngine
from repro.gaussians import GaussianCloud

N_VIEWS = 4
N_WORKERS = 4
SEED_STRIDE = 3  # denser than the mapper's stride: a heavy, late-SLAM-sized cloud


def _scene():
    sequence = get_sequence("tum")
    cloud = GaussianCloud.empty()
    frames = []
    for index in range(N_VIEWS):
        observation = sequence.frame(index)
        cloud.extend(
            GaussianCloud.from_rgbd(
                observation.image,
                observation.depth,
                observation.camera,
                observation.gt_pose_cw,
                stride=SEED_STRIDE,
            )
        )
        frames.append(observation)
    cameras = [frame.camera for frame in frames]
    poses = [frame.gt_pose_cw for frame in frames]
    return cloud, cameras, poses


class _FusedIteration:
    """Batch forward + fused backward through one engine, arena recycled."""

    def __init__(self, backend: str, cloud, cameras, poses, losses):
        self.engine = RenderEngine(
            EngineConfig(backend=backend, geom_cache=False, shard_workers=N_WORKERS)
        )
        self.cloud = cloud
        self.cameras = cameras
        self.poses = poses
        self.losses = losses

    def render(self):
        return self.engine.render_batch(self.cloud, self.cameras, self.poses)

    def __call__(self):
        batch = self.render()
        return self.engine.backward_batch(
            batch,
            self.cloud,
            [dL_dimage for dL_dimage, _ in self.losses],
            [dL_ddepth for _, dL_ddepth in self.losses],
        )


def test_sharded_batch_speedup():
    n_cores = os.cpu_count() or 1
    if n_cores < N_WORKERS:
        skip_gate(
            "sharded_speedup",
            "sharded_vs_flat_batch_fwd_bwd",
            f"insufficient-cores:needs >= {N_WORKERS} cores for {N_WORKERS} "
            f"workers; this host has {n_cores}",
        )

    cloud, cameras, poses = _scene()
    rng = np.random.default_rng(23)
    losses = [
        (
            rng.uniform(-1.0, 1.0, size=(camera.height, camera.width, 3)),
            rng.uniform(-1.0, 1.0, size=(camera.height, camera.width)),
        )
        for camera in cameras
    ]
    flat = _FusedIteration("flat", cloud, cameras, poses, losses)
    sharded = _FusedIteration("sharded", cloud, cameras, poses, losses)

    # Agreement first (this also spawns and warms the worker pool, keeping
    # the one-off spawn cost out of the timed region).
    flat_batch = flat.render()
    sharded_batch = sharded.render()
    assert sharded_batch.sharding is not None and sharded_batch.sharding.n_workers > 1
    for flat_view, sharded_view in zip(flat_batch.views, sharded_batch.views):
        np.testing.assert_array_equal(flat_view.image, sharded_view.image)
        assert np.array_equal(
            flat_view.fragments_per_pixel, sharded_view.fragments_per_pixel
        )
    flat.engine.release(flat_batch)
    sharded.engine.release(sharded_batch)
    flat()
    sharded()

    time_flat = best_of(flat)
    time_sharded = best_of(sharded)
    ratio = time_flat / time_sharded

    print_table(
        f"Sharded {N_VIEWS}-view batch forward+backward vs serial flat "
        f"({N_WORKERS} workers)",
        ["batch path", "wall-clock", "speedup"],
        [
            ["flat (serial)", f"{time_flat * 1e3:.1f} ms", "1.00x"],
            [
                f"sharded ({N_WORKERS} workers)",
                f"{time_sharded * 1e3:.1f} ms",
                f"{ratio:.2f}x",
            ],
        ],
    )
    # The 1.5x acceptance floor is enforced absolutely on top of the
    # committed-baseline regression check.
    check_speedup("sharded_speedup", "sharded_vs_flat_batch_fwd_bwd", ratio, minimum=1.5)
