"""Render-service throughput gate: shared pool vs a pool per session.

The multi-tenant claim of ``repro.service`` is that N sessions multiplexed
over ONE shared sharded worker pool beat N isolated engines that each pay
their own pool spin-up: the spawn/warm-up cost is amortised across tenants
and idle workers are never stranded inside a tenant that has no work.  This
benchmark pins that claim under the acceptance workload — 8 sessions over a
4-worker pool, each session rendering one 4-view batch:

* ``shared_pool_vs_pool_per_session`` — sessions/sec of the shared-pool
  service over sessions/sec of fresh pool-per-session engines (each baseline
  session spawns its own pool, like N independent processes would).  Must
  stay >= 1.5x (acceptance criterion of the service PR) and within 20% of
  the committed baseline.
* ``p99_unit_latency_ratio`` — p99 per-view latency of the baseline over the
  shared service.  Unit latency in the service is the scheduler's own
  attribution (queue wait + dispatch service time per view); in the baseline
  it is the session's client-observed wall clock spread over its views.
  Expect < 1: fair sharing makes late-scheduled views of every tenant wait
  through other tenants' turns, a deliberate tail-latency-for-throughput
  trade.  The gate only pins that the trade does not silently get worse —
  regression against the committed baseline, no absolute floor.

The gate needs real cores: hosts with fewer than 4 CPUs cannot run a
4-worker pool meaningfully and the test auto-skips with a logged reason.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.perf_gate import check_speedup, skip_gate
from repro.engine import EngineConfig, RenderEngine, shutdown_shard_pools
from repro.service import RenderService
from repro.testing.scenarios import DEFAULT_LIBRARY

N_SESSIONS = 8
N_WORKERS = 4
N_VIEWS = 4


def _window():
    spec = DEFAULT_LIBRARY.get("dense_random").build()
    return (
        spec.cloud,
        [spec.camera] * N_VIEWS,
        spec.view_poses(N_VIEWS),
    ), dict(backgrounds=[spec.background] * N_VIEWS)


def _config() -> EngineConfig:
    return EngineConfig(backend="sharded", geom_cache=False, shard_workers=N_WORKERS)


def _run_shared(args, kwargs):
    """All sessions through one service; returns (wall, unit latencies)."""
    shutdown_shard_pools()  # the service pays its own (single) spawn
    service = RenderService(_config(), round_quantum=2)
    sessions = [service.open_session(f"tenant-{i}") for i in range(N_SESSIONS)]
    start = time.perf_counter()
    jobs = [session.submit(*args, **kwargs) for session in sessions]
    batches = [job.result() for job in jobs]
    wall = time.perf_counter() - start
    unit_latencies = [
        wait + busy
        for batch in batches
        for wait, busy in zip(
            batch.sharding.view_queue_wait_seconds,
            batch.sharding.view_service_seconds,
        )
    ]
    service.close()
    return wall, unit_latencies


def _run_pool_per_session(args, kwargs):
    """Each session spins up its own pool; returns (wall, unit latencies)."""
    wall = 0.0
    unit_latencies = []
    for _ in range(N_SESSIONS):
        shutdown_shard_pools()  # force a fresh spawn: this pool serves ONE tenant
        start = time.perf_counter()
        engine = RenderEngine(_config())
        engine.render_batch(*args, **kwargs, managed=False)
        session_wall = time.perf_counter() - start
        wall += session_wall
        unit_latencies.extend([session_wall / N_VIEWS] * N_VIEWS)
    shutdown_shard_pools()
    return wall, unit_latencies


def test_service_throughput_gate():
    n_cores = os.cpu_count() or 1
    if n_cores < N_WORKERS:
        skip_gate(
            "service_throughput",
            "shared_pool_vs_pool_per_session",
            f"insufficient-cores:needs >= {N_WORKERS} cores for {N_WORKERS} "
            f"workers; this host has {n_cores}",
        )

    args, kwargs = _window()
    shared_wall, shared_latencies = _run_shared(args, kwargs)
    baseline_wall, baseline_latencies = _run_pool_per_session(args, kwargs)

    shared_rate = N_SESSIONS / shared_wall
    baseline_rate = N_SESSIONS / baseline_wall
    throughput_ratio = shared_rate / baseline_rate
    p99_shared = float(np.percentile(shared_latencies, 99))
    p99_baseline = float(np.percentile(baseline_latencies, 99))
    latency_ratio = p99_baseline / p99_shared

    print(
        f"\nshared pool: {shared_rate:.2f} sessions/s "
        f"(p99 unit {p99_shared * 1e3:.1f} ms) | pool-per-session: "
        f"{baseline_rate:.2f} sessions/s (p99 unit {p99_baseline * 1e3:.1f} ms)"
    )
    check_speedup(
        "service_throughput",
        "shared_pool_vs_pool_per_session",
        throughput_ratio,
        minimum=1.5,
    )
    check_speedup("service_throughput", "p99_unit_latency_ratio", latency_ratio)
