"""Wall-clock of the geometry cache on a fixed-pose mapping window.

The scene models late-stage SLAM: an accumulated global map seeded from a
full orbit of the room (so a substantial share of the cloud is behind or
beside the current keyframes and gets culled per view), optimised against a
2-keyframe window for 10 fused iterations at the late-stage position learning
rate, with densification at capacity and fine (4 px) tiles matching the
small-splat map.  Poses are fixed within the window — exactly the regime the
paper's Step 1-2 reuse targets: every iteration re-renders the same views of
a cloud that moved by at most one Adam step.

Two `StreamingMapper` configurations run the same window:

* **uncached (PR 2 path)**: `geom_cache=False` — every iteration recomputes
  projection, tile intersection, sorting and the flat fragment list for both
  views and rasterizes the dense per-tile fragment grids;
* **cached**: the per-window `GeometryCache` reuses the Step 1-2 products
  across iterations (tolerance 8 px at learning rate 5e-4 keeps the whole
  window inside the stale-geometry tier) and rasterizes the refined fragment
  schedule (contributing pairs only, truncated at the verified per-tile
  termination depth).

Before timing, an exact-mode cached window (zero tolerance, no refinement or
truncation) is asserted to produce bit-identical losses to the uncached
mapper, so the timed comparison cannot drift into comparing different math;
the toleranced window's convergence is additionally sanity-bounded against
the uncached one.  The speedup is gated against the committed baseline with
an absolute floor of 1.3x (the acceptance criterion of the geometry-cache
PR).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import print_table
from benchmarks.perf_gate import check_speedup
from repro.datasets import make_sequence
from repro.gaussians import GaussianCloud
from repro.slam import Frame, MappingConfig, StreamingMapper

N_ITERATIONS = 10
WINDOW_KEYFRAMES = (0, 2)
ORBIT_FRAMES = 140  # full orbit: the map covers every wall of the room
ORBIT_STRIDE = 7
SEED_STRIDE = 2
RESOLUTION_SCALE = 1.25
TOLERANCE_PX = 8.0


def _window_scene():
    sequence = make_sequence("tum", n_frames=ORBIT_FRAMES, resolution_scale=RESOLUTION_SCALE)
    cloud = GaussianCloud.empty()
    for index in range(0, ORBIT_FRAMES, ORBIT_STRIDE):
        observation = sequence.frame(index)
        cloud.extend(
            GaussianCloud.from_rgbd(
                observation.image,
                observation.depth,
                observation.camera,
                observation.gt_pose_cw,
                stride=SEED_STRIDE,
            )
        )
    frames = [
        Frame.from_rgbd(sequence.frame(index)).with_pose(sequence.frame(index).gt_pose_cw)
        for index in WINDOW_KEYFRAMES
    ]
    return cloud, frames


def _mapper_config(n_gaussians: int, **geom_cache_kwargs) -> MappingConfig:
    return MappingConfig(
        n_iterations=N_ITERATIONS,
        batch_views=len(WINDOW_KEYFRAMES),
        tile_size=4,
        subtile_size=4,
        # The map is at capacity and nothing is transparent enough to prune:
        # the window is pure joint optimisation, the paper's reuse regime.
        max_gaussians=n_gaussians,
        opacity_prune_threshold=0.0,
        # Late-stage learning rates; position steps stay well inside the
        # cache's screen-space tolerance for the whole window.
        position_learning_rate=5e-4,
        scale_learning_rate=1e-3,
        **geom_cache_kwargs,
    )


def _run_window(cloud, frames, config) -> tuple[StreamingMapper, object]:
    mapper = StreamingMapper(config)
    return mapper, mapper.map(cloud, frames)


def test_geom_cache_window_speedup():
    cloud, frames = _window_scene()

    # Agreement first: an exact-mode cached window must replay the uncached
    # window bit-for-bit (same renders, same gradients, same losses).
    exact_config = _mapper_config(
        cloud.n_total,
        geom_cache=True,
        geom_cache_tolerance_px=0.0,
        geom_cache_refine_margin=0.0,
        geom_cache_termination_margin=0.0,
    )
    uncached_config = _mapper_config(cloud.n_total, geom_cache=False)
    _, exact_result = _run_window(cloud.copy(), frames, exact_config)
    _, plain_result = _run_window(cloud.copy(), frames, uncached_config)
    np.testing.assert_array_equal(exact_result.losses, plain_result.losses)

    cached_config = _mapper_config(
        cloud.n_total, geom_cache=True, geom_cache_tolerance_px=TOLERANCE_PX
    )

    def cached_window():
        return _run_window(cloud.copy(), frames, cached_config)

    def uncached_window():
        return _run_window(cloud.copy(), frames, uncached_config)

    cached_window()  # warm allocator and caches symmetric to the timed runs
    uncached_window()
    # Interleave the repetitions so slow machine-wide drift (thermals, a
    # noisy CI neighbour) hits both paths equally instead of biasing
    # whichever block ran second.
    time_cached = float("inf")
    time_uncached = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        cached_window()
        time_cached = min(time_cached, time.perf_counter() - start)
        start = time.perf_counter()
        uncached_window()
        time_uncached = min(time_uncached, time.perf_counter() - start)
    speedup = time_uncached / time_cached

    mapper, cached_result = cached_window()
    _, uncached_result = uncached_window()
    stats = mapper.engine.cache.stats.as_dict()
    statuses = [snapshot.cache_status for snapshot in cached_result.snapshots]
    reused = sum(1 for s in statuses if s in ("hit", "refresh", "incremental"))

    print_table(
        f"Geometry cache on a {N_ITERATIONS}-iteration fixed-pose mapping window "
        f"({len(frames)} keyframes, {cloud.n_total} Gaussians)",
        ["mapping window", "wall-clock", "speedup"],
        [
            ["uncached (PR 2 path)", f"{time_uncached * 1e3:.0f} ms", "1.00x"],
            ["geometry cache", f"{time_cached * 1e3:.0f} ms", f"{speedup:.2f}x"],
        ],
    )
    print(
        f"[geom-cache] reuse {reused}/{len(statuses)} view-renders, "
        f"stats {stats}"
    )

    # The stale-geometry tier must actually carry the window (densify misses
    # only), and the approximation must not derail convergence.
    assert reused >= len(statuses) * 0.7, f"cache barely used: {statuses}"
    assert stats["truncation_fallbacks"] <= len(statuses) * 0.2
    assert cached_result.losses[-1] <= uncached_result.losses[0], (
        "cached window failed to make optimisation progress: "
        f"{cached_result.losses}"
    )
    assert cached_result.losses[-1] <= uncached_result.losses[-1] * 1.35, (
        "cached window converged far worse than the uncached one: "
        f"{cached_result.losses[-1]:.2f} vs {uncached_result.losses[-1]:.2f}"
    )

    # Primary gate: committed baseline with the 1.3x acceptance floor.
    check_speedup("geom_cache_reuse", "cached_vs_uncached_window", speedup, minimum=1.3)
