"""Wall-clock comparison of the flat fragment-list backend vs the tile backend.

Measured on the Fig. 15 end-to-end benchmark scene (the TUM synthetic
sequence at benchmark resolution): the Step-3 forward render plus the
Step-4/5 backward pass — the iteration the paper identifies as the SLAM
bottleneck — must be measurably faster through a flat-pinned
:class:`repro.engine.RenderEngine` while producing outputs the differential
harness pins to the tile backend.  A short end-to-end SLAM segment run with
per-backend injected engines double-checks that the speedup survives the
full pipeline.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import get_sequence, print_table
from benchmarks.perf_gate import best_of as _best_of
from benchmarks.perf_gate import check_speedup, perf_gate_active
from repro.engine import EngineConfig, RenderEngine
from repro.gaussians import GaussianCloud
from repro.slam import SLAMPipeline, mono_gs

# Wall-clock assertions are meaningful on a quiet local machine but flake on
# shared CI runners, where a scheduler hiccup can invert a 2x margin.  Under
# plain CI the tests still execute both backends and check output agreement;
# the timing comparisons are enforced locally and in the dedicated CI perf
# job (REPRO_PERF_STRICT=1), gated against benchmarks/baselines/.
STRICT_TIMING = perf_gate_active()


def test_flat_backend_is_faster_on_fig15_scene():
    sequence = get_sequence("tum")
    first = sequence.frame(0)
    cloud = GaussianCloud.from_rgbd(
        first.image, first.depth, first.camera, first.gt_pose_cw, stride=2
    )
    frames = [sequence.frame(i) for i in range(len(sequence))]
    rng = np.random.default_rng(0)
    dL_dimage = rng.uniform(-1.0, 1.0, size=(first.camera.height, first.camera.width, 3))
    dL_ddepth = rng.uniform(-1.0, 1.0, size=(first.camera.height, first.camera.width))

    engines = {
        backend: RenderEngine(EngineConfig(backend=backend, geom_cache=False))
        for backend in ("tile", "flat")
    }

    def iteration(backend: str) -> None:
        engine = engines[backend]
        for frame in frames:
            result = engine.render(cloud, frame.camera, frame.gt_pose_cw)
            engine.backward(result, cloud, dL_dimage, dL_ddepth)

    timings = {backend: _best_of(lambda b=backend: iteration(b)) for backend in ("tile", "flat")}
    ratio = timings["tile"] / timings["flat"]

    # Both backends must agree on the scene before the timing means anything.
    reference = engines["tile"].render(cloud, first.camera, first.gt_pose_cw)
    candidate = engines["flat"].render(cloud, first.camera, first.gt_pose_cw)
    np.testing.assert_allclose(candidate.image, reference.image, atol=1e-10)
    assert np.array_equal(candidate.fragments_per_pixel, reference.fragments_per_pixel)

    print_table(
        "Flat fragment-list backend vs tile backend (Fig. 15 scene, fwd+bwd)",
        ["backend", f"time for {len(frames)} frames", "speedup"],
        [
            ["tile", f"{timings['tile'] * 1e3:.1f} ms", "1.00x"],
            ["flat", f"{timings['flat'] * 1e3:.1f} ms", f"{ratio:.2f}x"],
        ],
    )
    if STRICT_TIMING:
        assert timings["flat"] < timings["tile"], (
            f"flat backend must be measurably faster: tile {timings['tile']:.4f}s "
            f"vs flat {timings['flat']:.4f}s"
        )
    check_speedup("raster_backend_speedup", "flat_fwd_bwd_speedup", ratio)


def test_flat_backend_speeds_up_slam_segment():
    """A short end-to-end SLAM run is no slower under the flat backend."""
    sequence = get_sequence("tum", n_frames=4)
    for index in range(4):
        sequence.frame(index)  # prewarm the frame cache so neither run pays it

    def run(backend: str):
        config = mono_gs(fast=True)
        config.tracking.n_iterations = 3
        config.mapping.n_iterations = 3
        # One injected engine drives the whole pipeline; batched mapping
        # falls back to the flat batch path under the tile engine, exactly
        # as the legacy use_backend("tile") scoping behaved.  Seeding from
        # the environment keeps the REPRO_GEOM_CACHE escape hatch working.
        engine = RenderEngine(EngineConfig.from_env(backend=backend))
        start = time.perf_counter()
        result = SLAMPipeline(config, engine=engine).run(sequence, n_frames=4)
        elapsed = time.perf_counter() - start
        return result, elapsed

    result_tile, time_tile = run("tile")
    result_flat, time_flat = run("flat")

    # Identical trajectories: the flat backend changes wall-clock, not math.
    for pose_a, pose_b in zip(result_tile.estimated_trajectory, result_flat.estimated_trajectory):
        np.testing.assert_allclose(pose_a.matrix(), pose_b.matrix(), atol=1e-8)

    print_table(
        "End-to-end SLAM segment (4 frames, mono_gs fast)",
        ["backend", "wall-clock", "speedup"],
        [
            ["tile", f"{time_tile:.2f} s", "1.00x"],
            ["flat", f"{time_flat:.2f} s", f"{time_tile / time_flat:.2f}x"],
        ],
    )
    # Generous bound: renders dominate but the pipeline has fixed overheads.
    if STRICT_TIMING:
        assert time_flat < time_tile * 1.1
    check_speedup("raster_backend_speedup", "slam_segment_speedup", time_tile / time_flat)
