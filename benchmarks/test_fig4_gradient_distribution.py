"""Figure 4: Gaussian gradient distribution during tracking (Observation 3).

The paper finds the top ~14% of Gaussians carry the bulk of the pose-gradient
magnitude; this harness reproduces the skew statistics from real tracking
gradients on the tum-like dataset.
"""

import numpy as np

from benchmarks.conftest import get_run, get_sequence, print_table
from repro.engine import default_engine
from repro.profiling import gradient_distribution
from repro.slam import Frame, photometric_geometric_loss


def test_fig4_gradient_skew(benchmark):
    sequence = get_sequence("tum")
    run = get_run("mono_gs", "tum")
    cloud = run.cloud
    engine = default_engine()
    frame = Frame.from_rgbd(sequence.frame(3))
    render = engine.render(cloud, frame.camera, run.estimated_trajectory[3])
    loss = photometric_geometric_loss(render, frame)

    def compute():
        grads = engine.backward(render, cloud, loss.dL_dimage, loss.dL_ddepth)
        return gradient_distribution(grads)

    distribution = benchmark(compute)
    rows = [
        ["top 14% share of gradient mass", f"{distribution.top_fraction_share(0.14):.2%}"],
        ["fraction needed for 80% of mass", f"{distribution.fraction_needed_for_share(0.8):.2%}"],
        ["gini coefficient", f"{distribution.gini_coefficient():.3f}"],
        ["n gaussians", str(distribution.n_gaussians)],
    ]
    print_table("Fig. 4: tracking gradient distribution (tum-like, MonoGS)", ["metric", "value"], rows)
    assert distribution.top_fraction_share(0.14) > 0.3
    assert distribution.fraction_needed_for_share(0.8) < 0.7
    assert np.all(distribution.scores >= 0)
