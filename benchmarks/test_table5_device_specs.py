"""Tables 4 & 5: architecture configuration and device specifications."""

from benchmarks.conftest import print_table
from repro.hardware import DEVICE_SPECS, RTGSArchitectureConfig, scale_device


def test_table5_device_specs(benchmark):
    arch = RTGSArchitectureConfig()
    scaled = benchmark(lambda: {nm: scale_device(DEVICE_SPECS["rtgs"], nm) for nm in (12, 8)})
    rows = [
        [spec.name, spec.technology_nm, f"{spec.sram_kb:.0f}", spec.core_description,
         f"{spec.area_mm2:.2f}", f"{spec.power_w:.2f}"]
        for spec in DEVICE_SPECS.values()
    ]
    print_table(
        "Table 5: device specifications",
        ["device", "node(nm)", "SRAM(KB)", "cores", "area(mm2)", "power(W)"],
        rows,
    )
    print_table(
        "Table 4: RTGS architecture configuration",
        ["quantity", "value"],
        [
            ["REs x (RCs & RBCs)", f"{arch.n_rendering_engines} x {arch.rcs_per_re}"],
            ["PEs", arch.n_preprocessing_engines],
            ["GMUs", arch.n_gmus],
            ["frequency", f"{arch.frequency_hz / 1e6:.0f} MHz"],
            ["total SRAM", f"{arch.total_sram_kb:.0f} KB"],
            ["area", f"{arch.area_mm2} mm2"],
            ["power", f"{arch.power_w} W"],
        ],
    )
    assert arch.total_sram_kb == 197.0
    assert abs(scaled[12].area_mm2 - DEVICE_SPECS["rtgs-12nm"].area_mm2) < 1e-6
    assert abs(scaled[8].power_w - DEVICE_SPECS["rtgs-8nm"].power_w) < 1e-6
