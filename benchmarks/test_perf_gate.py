"""The perf-gate machinery itself: baselines, skips, regression floors.

Pins the contract :mod:`benchmarks.perf_gate` gives every benchmark:

* a missing baseline file or key **skips** the gate with a logged
  ``[perf:skip]`` reason recorded in ``SKIPPED_GATES`` — never an error and
  never a silent pass;
* a measured ratio at or above the floor passes and prints ``[perf:ok]``;
* a regression beyond ``MAX_REGRESSION`` fails while the gate is active and
  names the baseline file to update.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import perf_gate
from benchmarks.perf_gate import (
    MAX_REGRESSION,
    SKIPPED_GATES,
    check_speedup,
    load_baselines,
    skip_gate,
)


@pytest.fixture()
def isolated_baselines(tmp_path, monkeypatch):
    """Point the gate at a temporary baseline directory and clean skip records."""
    monkeypatch.setattr(perf_gate, "BASELINE_DIR", tmp_path)
    # The gate must be active so failing floors assert (not advisory CI mode).
    monkeypatch.setenv("REPRO_PERF_STRICT", "1")
    recorded_before = len(SKIPPED_GATES)
    yield tmp_path
    del SKIPPED_GATES[recorded_before:]


def test_missing_baseline_file_skips_with_logged_reason(isolated_baselines, capsys):
    with pytest.raises(pytest.skip.Exception) as outcome:
        check_speedup("no_such_bench", "ratio", measured=2.0)
    assert "missing-baseline" in str(outcome.value)
    printed = capsys.readouterr().out
    assert "[perf:skip] no_such_bench.ratio: missing-baseline" in printed
    assert SKIPPED_GATES[-1][0] == "no_such_bench"
    assert "missing-baseline" in SKIPPED_GATES[-1][2]


def test_missing_baseline_key_skips_with_logged_reason(isolated_baselines, capsys):
    (isolated_baselines / "bench.json").write_text(json.dumps({"other_key": 2.0}))
    with pytest.raises(pytest.skip.Exception):
        check_speedup("bench", "ratio", measured=2.0)
    printed = capsys.readouterr().out
    assert "[perf:skip] bench.ratio: missing-baseline-key" in printed
    assert "'ratio'" in SKIPPED_GATES[-1][2]


def test_present_baseline_passes_and_prints_measurement(isolated_baselines, capsys):
    (isolated_baselines / "bench.json").write_text(json.dumps({"ratio": 2.0}))
    check_speedup("bench", "ratio", measured=1.9)  # above the 20% floor
    printed = capsys.readouterr().out
    assert "[perf:ok] bench.ratio" in printed


def test_regression_fails_while_gate_active(isolated_baselines, capsys):
    (isolated_baselines / "bench.json").write_text(json.dumps({"ratio": 2.0}))
    floor = 2.0 * (1.0 - MAX_REGRESSION)
    with pytest.raises(AssertionError) as outcome:
        check_speedup("bench", "ratio", measured=floor - 0.1)
    assert "benchmarks/baselines/bench.json" in str(outcome.value)
    assert "[perf:REGRESSION]" in capsys.readouterr().out


def test_skip_gate_records_and_raises(isolated_baselines, capsys):
    with pytest.raises(pytest.skip.Exception):
        skip_gate("bench", "ratio", "insufficient-cores:needs >= 4; this host has 1")
    assert SKIPPED_GATES[-1] == (
        "bench",
        "ratio",
        "insufficient-cores:needs >= 4; this host has 1",
    )
    assert "[perf:skip] bench.ratio: insufficient-cores" in capsys.readouterr().out


def test_committed_baselines_still_load():
    # The real baseline directory must stay loadable through the same helper
    # the benchmarks use (guards against format drift in baselines/*.json).
    ratios = load_baselines("sharded_speedup")
    assert all(isinstance(value, float) for value in ratios.values())
