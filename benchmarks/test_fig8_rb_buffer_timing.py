"""Figure 8: R&B Buffer parameter reuse and the Rendering-BP pipeline balance.

With reuse, the alpha-gradient unit takes 4 cycles instead of 20, which
balances it against the 8-cycle 2D-gradient unit and roughly halves the
backward cycles of a subtile.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.hardware import RBBuffer, RTGSArchitectureConfig, RenderingEngine


def test_fig8_rb_buffer(benchmark):
    arch = RTGSArchitectureConfig()
    fragments = np.full(16, 48)  # a busy subtile

    def compute():
        with_reuse = RenderingEngine(arch, use_rb_buffer=True).backward_cycles(fragments)
        without_reuse = RenderingEngine(arch, use_rb_buffer=False).backward_cycles(fragments)
        return with_reuse, without_reuse

    with_reuse, without_reuse = benchmark(compute)
    buffer = RBBuffer(capacity_kb=arch.rb_buffer_kb)
    rows = [
        ["alpha grad latency w/o reuse (cycles)", arch.alpha_grad_cycles_baseline],
        ["alpha grad latency w/ reuse (cycles)", buffer.alpha_grad_cycles(arch)],
        ["subtile BP cycles w/o reuse", without_reuse],
        ["subtile BP cycles w/ reuse", with_reuse],
        ["BP speedup from reuse", f"{without_reuse / with_reuse:.2f}x"],
    ]
    print_table("Fig. 8: R&B Buffer reuse timing", ["quantity", "value"], rows)
    assert buffer.alpha_grad_cycles(arch) == 4
    assert without_reuse / with_reuse > 1.5
