"""Table 7: comparison with GauSPU using SplaTAM on the RTX 3090 host.

RTGS (algorithm techniques applied to SplaTAM tracking + plug-in hardware)
should beat the GauSPU-style plug-in on tracking FPS while using less Gaussian
memory, with comparable quality.
"""

from benchmarks.conftest import WORKLOAD_SCALE, format_db, get_run, get_sequence, print_table
from repro.hardware import EdgeGPUModel, GauSPUModel, RTGSPlugin, evaluate_system
from repro.metrics import gaussian_memory_gb


def test_table7_gauspu_comparison(benchmark):
    sequence = get_sequence("replica")
    base_run = get_run("splatam", "replica", variant="base")
    ours_run = get_run("splatam", "replica", variant="rtgs")

    def evaluate():
        baseline = evaluate_system(
            base_run.all_snapshots(),
            EdgeGPUModel("rtx3090", workload_scale=WORKLOAD_SCALE),
            "SplaTAM on RTX3090",
        )
        gauspu = evaluate_system(
            base_run.all_snapshots(),
            GauSPUModel(host_device="rtx3090", workload_scale=WORKLOAD_SCALE),
            "GauSPU + SplaTAM",
        )
        ours = evaluate_system(
            ours_run.all_snapshots(),
            RTGSPlugin(host_device="rtx3090", workload_scale=WORKLOAD_SCALE),
            "Ours + SplaTAM",
        )
        return baseline, gauspu, ours

    baseline, gauspu, ours = benchmark(evaluate)
    rows = []
    for name, run, evaluation in (
        ("SplaTAM", base_run, baseline),
        ("GauSPU + SplaTAM", base_run, gauspu),
        ("Ours + SplaTAM", ours_run, ours),
    ):
        rows.append(
            [
                name,
                f"{run.ate():.2f}",
                format_db(run.evaluate_psnr(sequence, 2)),
                f"{evaluation.tracking_fps:.2f}",
                f"{evaluation.overall_fps:.2f}",
                f"{gaussian_memory_gb(run.peak_gaussian_count * WORKLOAD_SCALE):.2f}",
            ]
        )
    print_table(
        "Table 7: GauSPU comparison (SplaTAM, RTX 3090 host)",
        ["method", "ATE(cm)", "PSNR(dB)", "TrackFPS", "OverallFPS", "PeakMem(GB)"],
        rows,
    )
    # Shape checks from the paper: Ours beats GauSPU on FPS and memory.
    assert ours.tracking_fps > gauspu.tracking_fps
    assert ours_run.peak_gaussian_count <= base_run.peak_gaussian_count
