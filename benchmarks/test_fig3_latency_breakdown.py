"""Figure 3: latency breakdown across SLAM stages and pipeline steps.

(a) Share of runtime in tracking / mapping / other for three algorithms.
(b) Per-step breakdown of a MonoGS iteration (rendering + rendering BP >80%).
"""

from benchmarks.conftest import get_run, print_table
from repro.profiling import latency_breakdown, stage_breakdown
from repro.profiling.latency import rendering_dominance

ALGORITHMS = ["gs_slam", "mono_gs", "photo_slam"]


def test_fig3a_stage_shares(benchmark):
    runs = {name: get_run(name, "tum") for name in ALGORITHMS}
    breakdowns = benchmark(
        lambda: {name: latency_breakdown(run.all_snapshots()) for name, run in runs.items()}
    )
    rows = [
        [name, f"{b['tracking']:.2%}", f"{b['mapping']:.2%}", f"{b['other']:.2%}"]
        for name, b in breakdowns.items()
    ]
    print_table("Fig. 3(a): runtime share per SLAM stage (tum-like)", ["algorithm", "tracking", "mapping", "other"], rows)
    for breakdown in breakdowns.values():
        assert breakdown["tracking"] + breakdown["mapping"] > 0.8  # Observation 1


def test_fig3b_step_breakdown(benchmark):
    run = get_run("mono_gs", "tum")
    shares = benchmark(lambda: stage_breakdown(run.all_snapshots(), stage="tracking"))
    rows = [[step, f"{value:.2%}"] for step, value in shares.items()]
    print_table("Fig. 3(b): per-step share of a MonoGS tracking iteration", ["step", "share"], rows)
    assert rendering_dominance(shares) > 0.6  # Observation 2
