"""Composed sharded × geometry-cache gate on a fixed-pose mapping window.

The two per-view fast paths this repository ships — multi-process shard
execution (Step 3 + Step 4 in workers) and geometry-cache reuse (Step 1-2
skipped on every re-render) — compose since planning and the cache entries
moved into the shard workers.  This benchmark gates the composition on the
workload both were built for: a late-stage SLAM mapping window, 10 fused
iterations over a 4-view keyframe window at fixed poses, executed through a
``StreamingMapper`` whose engine runs the ``sharded`` backend with 4 workers
and a toleranced worker-resident geometry cache.

Before timing, an exact-mode composed window (zero tolerance, no refinement)
is asserted to replay the serial uncached window's losses bit-for-bit — the
worker-resident cache tiers are pinned bitwise to the parent cache by the
differential suite, so the timed comparison cannot drift into different
math.  The composed window must then be **>= 1.8x** faster than the serial
uncached flat window (acceptance criterion of the worker-resident-cache PR)
on top of the committed-baseline regression check.

The gate needs real cores: under 4 CPUs the shard pool cannot deliver its
share of the speedup and the test auto-skips with a logged reason.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import print_table
from benchmarks.perf_gate import check_speedup, skip_gate
from repro.datasets import make_sequence
from repro.engine import EngineConfig, RenderEngine
from repro.gaussians import GaussianCloud
from repro.slam import Frame, MappingConfig, StreamingMapper

N_ITERATIONS = 10
WINDOW_KEYFRAMES = (0, 1, 2, 3)
N_WORKERS = 4
ORBIT_FRAMES = 140  # full orbit: the map covers every wall of the room
ORBIT_STRIDE = 7
SEED_STRIDE = 2
RESOLUTION_SCALE = 1.25
TOLERANCE_PX = 8.0
TILE_SIZE = 4

FLAT_UNCACHED = dict(backend="flat", geom_cache=False)
COMPOSED = dict(
    backend="sharded",
    shard_workers=N_WORKERS,
    geom_cache=True,
    cache_tolerance_px=TOLERANCE_PX,
)
COMPOSED_EXACT = dict(
    backend="sharded",
    shard_workers=N_WORKERS,
    geom_cache=True,
    cache_tolerance_px=0.0,
    cache_refine_margin=0.0,
    cache_termination_margin=0.0,
)


def _window_scene():
    sequence = make_sequence("tum", n_frames=ORBIT_FRAMES, resolution_scale=RESOLUTION_SCALE)
    cloud = GaussianCloud.empty()
    for index in range(0, ORBIT_FRAMES, ORBIT_STRIDE):
        observation = sequence.frame(index)
        cloud.extend(
            GaussianCloud.from_rgbd(
                observation.image,
                observation.depth,
                observation.camera,
                observation.gt_pose_cw,
                stride=SEED_STRIDE,
            )
        )
    frames = [
        Frame.from_rgbd(sequence.frame(index)).with_pose(sequence.frame(index).gt_pose_cw)
        for index in WINDOW_KEYFRAMES
    ]
    return cloud, frames


def _mapper_config(n_gaussians: int) -> MappingConfig:
    return MappingConfig(
        n_iterations=N_ITERATIONS,
        batch_views=len(WINDOW_KEYFRAMES),
        tile_size=TILE_SIZE,
        subtile_size=TILE_SIZE,
        # The map is at capacity and nothing is transparent enough to prune:
        # the window is pure joint optimisation, the regime both fast paths
        # target.
        max_gaussians=n_gaussians,
        opacity_prune_threshold=0.0,
        # Late-stage learning rates; position steps stay well inside the
        # cache's screen-space tolerance for the whole window.
        position_learning_rate=5e-4,
        scale_learning_rate=1e-3,
    )


def _run_window(cloud, frames, config, engine_kwargs) -> tuple[StreamingMapper, object]:
    # A fresh engine per window keeps the geometry cache window-scoped, the
    # way `StreamingMapper` uses it; worker pools are shared process-wide per
    # worker count, so only the first sharded window pays the spawn.
    engine = RenderEngine(
        EngineConfig(tile_size=TILE_SIZE, subtile_size=TILE_SIZE, **engine_kwargs)
    )
    mapper = StreamingMapper(config, engine=engine)
    return mapper, mapper.map(cloud, frames)


def test_sharded_cache_composed_window_speedup():
    n_cores = os.cpu_count() or 1
    if n_cores < N_WORKERS:
        skip_gate(
            "sharded_cache_compose",
            "composed_vs_flat_uncached_window",
            f"insufficient-cores:needs >= {N_WORKERS} cores for {N_WORKERS} "
            f"workers; this host has {n_cores}",
        )

    cloud, frames = _window_scene()
    config = _mapper_config(cloud.n_total)

    # Agreement first: the composed path in exact mode (zero tolerance, no
    # refinement — only the bit-identical reuse tiers) must replay the serial
    # uncached window loss-for-loss.  This also spawns and warms the worker
    # pool, keeping the one-off spawn cost out of the timed region.
    _, exact_result = _run_window(cloud.copy(), frames, config, COMPOSED_EXACT)
    _, plain_result = _run_window(cloud.copy(), frames, config, FLAT_UNCACHED)
    np.testing.assert_array_equal(exact_result.losses, plain_result.losses)

    def composed_window():
        return _run_window(cloud.copy(), frames, config, COMPOSED)

    def uncached_window():
        return _run_window(cloud.copy(), frames, config, FLAT_UNCACHED)

    composed_window()  # warm allocator, caches and pool symmetric to timing
    uncached_window()
    # Interleave the repetitions so slow machine-wide drift (thermals, a
    # noisy CI neighbour) hits both paths equally instead of biasing
    # whichever block ran second.
    time_composed = float("inf")
    time_uncached = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        composed_window()
        time_composed = min(time_composed, time.perf_counter() - start)
        start = time.perf_counter()
        uncached_window()
        time_uncached = min(time_uncached, time.perf_counter() - start)
    speedup = time_uncached / time_composed

    mapper, composed_result = composed_window()
    _, uncached_result = uncached_window()
    stats = mapper.engine.cache.stats.as_dict()
    statuses = [snapshot.cache_status for snapshot in composed_result.snapshots]
    reused = sum(1 for s in statuses if s in ("hit", "refresh", "incremental"))
    plan_sites = {snapshot.plan_site for snapshot in composed_result.snapshots}

    print_table(
        f"Sharded x geometry cache on a {N_ITERATIONS}-iteration fixed-pose "
        f"mapping window ({len(frames)} keyframes, {N_WORKERS} workers, "
        f"{cloud.n_total} Gaussians)",
        ["mapping window", "wall-clock", "speedup"],
        [
            ["flat, uncached", f"{time_uncached * 1e3:.0f} ms", "1.00x"],
            [
                f"sharded ({N_WORKERS} workers) + cache",
                f"{time_composed * 1e3:.0f} ms",
                f"{speedup:.2f}x",
            ],
        ],
    )
    print(
        f"[sharded-cache] reuse {reused}/{len(statuses)} view-renders, "
        f"plan sites {sorted(plan_sites)}, stats {stats}"
    )

    # The composition must actually be exercised: planning in the workers,
    # the window carried by the worker-resident reuse tiers, and convergence
    # on par with the serial uncached run.
    assert plan_sites == {"worker"}, f"planning ran at {plan_sites}"
    assert reused >= len(statuses) * 0.7, f"cache barely used: {statuses}"
    assert composed_result.losses[-1] <= uncached_result.losses[0], (
        "composed window failed to make optimisation progress: "
        f"{composed_result.losses}"
    )
    assert composed_result.losses[-1] <= uncached_result.losses[-1] * 1.35, (
        "composed window converged far worse than the uncached one: "
        f"{composed_result.losses[-1]:.2f} vs {uncached_result.losses[-1]:.2f}"
    )

    # Primary gate: committed baseline with the 1.8x acceptance floor.
    check_speedup(
        "sharded_cache_compose",
        "composed_vs_flat_uncached_window",
        speedup,
        minimum=1.8,
    )
