"""Figure 6: per-pixel workload distributions across frames and iterations.

Observation 6: workload distributions vary across frames but are nearly
identical across the iterations of one frame, which is what lets the WSU reuse
scheduling decisions.
"""

import numpy as np

from benchmarks.conftest import get_run, print_table
from repro.profiling import iteration_workload_similarity, pixel_workload_distribution
from repro.profiling.workload import cross_frame_workload_similarity


def test_fig6_workload_similarity(benchmark):
    run = get_run("mono_gs", "tum")
    snapshots = run.tracking_snapshots()

    def compute():
        return (
            iteration_workload_similarity(snapshots),
            cross_frame_workload_similarity(snapshots),
        )

    within, across = benchmark(compute)
    first = pixel_workload_distribution(snapshots[0])
    rows = [
        ["within-frame iteration correlation", f"{within.mean():.4f}"],
        ["across-frame correlation", f"{across.mean():.4f}" if across.size else "n/a"],
        ["mean fragments per pixel (frame 1, it 0)", f"{first['mean']:.1f}"],
        ["max fragments per pixel (frame 1, it 0)", str(first["max"])],
    ]
    print_table("Fig. 6: workload distribution similarity", ["metric", "value"], rows)
    assert within.mean() > 0.9
    if across.size:
        assert within.mean() >= across.mean() - 1e-6
    assert np.all(within <= 1.0 + 1e-9)
