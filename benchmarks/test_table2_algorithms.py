"""Table 2: base 3DGS-SLAM algorithm comparison on the Replica-like dataset.

Reports ATE, PSNR, tracking FPS, overall FPS and peak Gaussian memory for
SplaTAM, GS-SLAM, MonoGS and Photo-SLAM on the modelled ONX edge GPU.
Expected shape: Photo-SLAM fastest (geometric tracking), SplaTAM slowest
(mapping every frame), all far below 30 FPS on the baseline GPU.
"""

from benchmarks.conftest import WORKLOAD_SCALE, format_db, get_run, get_sequence, print_table
from repro.hardware import EdgeGPUModel, evaluate_system
from repro.metrics import gaussian_memory_gb

ALGORITHMS = ["splatam", "gs_slam", "mono_gs", "photo_slam"]


def test_table2_rows(benchmark):
    sequence = get_sequence("replica")
    rows = []
    runs = {name: get_run(name, "replica") for name in ALGORITHMS}

    def evaluate_all():
        out = {}
        for name, run in runs.items():
            model = EdgeGPUModel("onx", workload_scale=WORKLOAD_SCALE)
            out[name] = evaluate_system(run.all_snapshots(), model, name)
        return out

    evaluations = benchmark(evaluate_all)
    for name in ALGORITHMS:
        run = runs[name]
        evaluation = evaluations[name]
        rows.append(
            [
                name,
                f"{run.ate():.2f}",
                format_db(run.evaluate_psnr(sequence, 3)),
                f"{evaluation.tracking_fps:.2f}",
                f"{evaluation.overall_fps:.2f}",
                f"{gaussian_memory_gb(run.peak_gaussian_count * WORKLOAD_SCALE):.1f}",
            ]
        )
    print_table(
        "Table 2: SLAM algorithms on Replica-like dataset (ONX model)",
        ["algorithm", "ATE(cm)", "PSNR(dB)", "TrackFPS", "OverallFPS", "PeakMem(GB)"],
        rows,
    )
    fps = {name: evaluations[name].overall_fps for name in ALGORITHMS}
    # Shape checks: every baseline algorithm is below real-time on the GPU.
    assert all(value < 30.0 for value in fps.values())
