"""Figure 16: per-scene tracking FPS and Gaussian memory vs RTX 3090 and GauSPU.

Runs SplaTAM on several replica-like scenes and compares the RTX 3090
software baseline, the GauSPU-style plug-in and RTGS (algorithm + plug-in) on
tracking FPS and peak Gaussian memory.
"""

from benchmarks.conftest import WORKLOAD_SCALE, get_run, print_table
from repro.hardware import EdgeGPUModel, GauSPUModel, RTGSPlugin, evaluate_system
from repro.metrics import gaussian_memory_gb

SCENES = ["room0", "room1", "office0"]


def test_fig16_per_scene(benchmark):
    base_runs = {scene: get_run("splatam", "replica", scene=scene, variant="base", n_frames=6) for scene in SCENES}
    ours_runs = {scene: get_run("splatam", "replica", scene=scene, variant="rtgs", n_frames=6) for scene in SCENES}

    def evaluate():
        out = {}
        for scene in SCENES:
            snapshots = base_runs[scene].all_snapshots()
            out[scene] = {
                "rtx3090": evaluate_system(
                    snapshots, EdgeGPUModel("rtx3090", workload_scale=WORKLOAD_SCALE), "rtx"
                ),
                "gauspu": evaluate_system(
                    snapshots, GauSPUModel(host_device="rtx3090", workload_scale=WORKLOAD_SCALE), "gauspu"
                ),
                "rtgs": evaluate_system(
                    ours_runs[scene].all_snapshots(),
                    RTGSPlugin(host_device="rtx3090", workload_scale=WORKLOAD_SCALE),
                    "rtgs",
                ),
            }
        return out

    evaluations = benchmark(evaluate)
    rows = []
    for scene in SCENES:
        entry = evaluations[scene]
        rows.append(
            [
                scene,
                f"{entry['rtx3090'].tracking_fps:.1f}",
                f"{entry['gauspu'].tracking_fps:.1f}",
                f"{entry['rtgs'].tracking_fps:.1f}",
                f"{gaussian_memory_gb(base_runs[scene].peak_gaussian_count * WORKLOAD_SCALE):.2f}",
                f"{gaussian_memory_gb(ours_runs[scene].peak_gaussian_count * WORKLOAD_SCALE):.2f}",
            ]
        )
    print_table(
        "Fig. 16: SplaTAM per replica-like scene (tracking FPS / peak memory)",
        ["scene", "RTX3090 FPS", "GauSPU FPS", "RTGS FPS", "RTX/GauSPU Mem(GB)", "RTGS Mem(GB)"],
        rows,
    )
    for scene in SCENES:
        assert evaluations[scene]["rtgs"].tracking_fps > evaluations[scene]["gauspu"].tracking_fps
        assert ours_runs[scene].peak_gaussian_count <= base_runs[scene].peak_gaussian_count
