"""Figure 15: end-to-end FPS and energy efficiency of RTGS vs ONX and DISTWAR.

(a) modelled overall FPS for the base algorithms on the ONX GPU, with DISTWAR,
with RTGS accelerating tracking only, and with full RTGS (tracking + mapping).
(b) energy-efficiency improvement (energy per frame) of full RTGS over the ONX
baseline.
Shapes: RTGS > DISTWAR > baseline everywhere; full RTGS reaches real-time
(>=30 FPS modelled at paper-scale workloads); energy efficiency improves by a
large factor.
"""

from benchmarks.conftest import WORKLOAD_SCALE, get_run, print_table
from repro.hardware import energy_efficiency_improvement, evaluate_configurations

ALGORITHMS = ["gs_slam", "mono_gs", "photo_slam"]
DATASETS = ["tum", "replica"]


def test_fig15_fps_and_energy(benchmark):
    runs = {
        (dataset, algorithm): get_run(algorithm, dataset, variant="rtgs")
        for dataset in DATASETS
        for algorithm in ALGORITHMS
    }

    def evaluate_all():
        return {
            key: evaluate_configurations(run.all_snapshots(), "onx", workload_scale=WORKLOAD_SCALE)
            for key, run in runs.items()
        }

    evaluations = benchmark(evaluate_all)

    fps_rows, energy_rows = [], []
    for (dataset, algorithm), configs in evaluations.items():
        fps_rows.append(
            [
                dataset,
                algorithm,
                f"{configs['baseline'].overall_fps:.2f}",
                f"{configs['distwar'].overall_fps:.2f}",
                f"{configs['rtgs_tracking_only'].overall_fps:.2f}",
                f"{configs['rtgs'].overall_fps:.2f}",
            ]
        )
        energy_rows.append(
            [
                dataset,
                algorithm,
                f"{energy_efficiency_improvement(configs['baseline'].energy_per_frame_j, configs['rtgs'].energy_per_frame_j):.1f}x",
            ]
        )
    print_table(
        "Fig. 15(a): end-to-end FPS (ONX / +DISTWAR / RTGS w/o mapping / RTGS)",
        ["dataset", "algorithm", "ONX", "DISTWAR", "RTGS w/o map", "RTGS"],
        fps_rows,
    )
    print_table(
        "Fig. 15(b): energy-efficiency improvement of RTGS over the ONX baseline",
        ["dataset", "algorithm", "improvement"],
        energy_rows,
    )
    for configs in evaluations.values():
        assert configs["rtgs"].overall_fps >= configs["distwar"].overall_fps
        assert configs["distwar"].overall_fps >= configs["baseline"].overall_fps * 0.99
        assert configs["rtgs"].overall_fps >= configs["rtgs_tracking_only"].overall_fps
        assert configs["rtgs"].energy_per_frame_j < configs["baseline"].energy_per_frame_j
