"""Figure 10: heavy/light pixel symmetry inside subtiles justifies pairwise scheduling."""

from benchmarks.conftest import get_run, print_table
from repro.profiling import subtile_pair_symmetry


def test_fig10_pair_symmetry(benchmark):
    run = get_run("mono_gs", "tum")
    snapshots = run.tracking_snapshots()

    def compute():
        return [subtile_pair_symmetry(snapshot) for snapshot in snapshots[:6]]

    results = benchmark(compute)
    fraction = sum(r["symmetric_fraction"] for r in results) / len(results)
    rows = [
        ["mean symmetric subtile fraction", f"{fraction:.2%}"],
        ["mean pair deviation", f"{sum(r['mean_pair_deviation'] for r in results) / len(results):.3f}"],
        ["subtiles sampled", sum(r["n_subtiles"] for r in results)],
    ]
    print_table("Fig. 10: subtile heavy/light workload symmetry", ["metric", "value"], rows)
    # The paper reports ~89% symmetric subtiles; the synthetic scenes are even friendlier.
    assert fraction > 0.6
