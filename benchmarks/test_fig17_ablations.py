"""Figure 17: workload-balancing ablation and the overall speedup breakdown.

(a) RE cycles under no balancing / streaming / streaming + pairwise scheduling
/ ideal balancing (Fig. 17(a)).
(b) cumulative speedup as each RTGS technique is enabled on top of the ONX
baseline: pipeline balancing, GMU, R&B Buffer, WSU, adaptive pruning, dynamic
downsampling (Fig. 17(b)).
"""

from benchmarks.conftest import WORKLOAD_SCALE, get_run, print_table
from repro.hardware import (
    EdgeGPUModel,
    RTGSArchitectureConfig,
    RTGSFeatureFlags,
    RTGSPlugin,
    SchedulingMode,
    WorkloadSchedulingUnit,
)


def test_fig17a_workload_balancing(benchmark):
    run = get_run("mono_gs", "replica", variant="base")
    snapshot = run.tracking_snapshots()[2]
    subtiles = snapshot.pixel_workloads_per_subtile()
    wsu = WorkloadSchedulingUnit(RTGSArchitectureConfig())

    def schedule_all():
        return {
            mode.value: wsu.schedule(subtiles, mode).total_cycles
            for mode in (
                SchedulingMode.NONE,
                SchedulingMode.STREAMING,
                SchedulingMode.BOTH,
                SchedulingMode.IDEAL,
            )
        }

    cycles = benchmark(schedule_all)
    baseline = cycles["none"]
    rows = [
        [mode, cycles[mode], f"{baseline / max(cycles[mode], 1):.2f}x"]
        for mode in ("none", "streaming", "both", "ideal")
    ]
    print_table("Fig. 17(a): workload-imbalance mitigation (RE cycles)", ["mode", "cycles", "speedup"], rows)
    assert cycles["streaming"] <= cycles["none"]
    assert cycles["both"] <= cycles["streaming"]
    assert cycles["ideal"] <= cycles["both"]


def test_fig17b_speedup_breakdown(benchmark):
    base_run = get_run("mono_gs", "tum", variant="base")
    ours_run = get_run("mono_gs", "tum", variant="rtgs")
    snapshots = base_run.all_snapshots()
    gpu_latency = EdgeGPUModel("onx", workload_scale=WORKLOAD_SCALE).frame_latency(snapshots).total

    steps = [
        ("+ pipeline (RE/PE)", RTGSFeatureFlags(use_gmu=False, use_rb_buffer=False, use_wsu=False, use_streaming=False, reuse_sorting=False)),
        ("+ GMU", RTGSFeatureFlags(use_rb_buffer=False, use_wsu=False, use_streaming=False, reuse_sorting=False)),
        ("+ R&B buffer", RTGSFeatureFlags(use_wsu=False, use_streaming=False, reuse_sorting=False)),
        ("+ WSU", RTGSFeatureFlags(reuse_sorting=False)),
        ("+ sorting reuse", RTGSFeatureFlags()),
    ]

    def compute():
        latencies = {}
        for name, flags in steps:
            plugin = RTGSPlugin(features=flags, workload_scale=WORKLOAD_SCALE)
            latencies[name] = plugin.frame_latency(snapshots).total
        full = RTGSPlugin(workload_scale=WORKLOAD_SCALE)
        latencies["+ pruning & downsampling"] = full.frame_latency(ours_run.all_snapshots()).total
        return latencies

    latencies = benchmark(compute)
    rows = [["ONX baseline", f"{gpu_latency * 1e3:.1f} ms", "1.00x"]]
    previous = gpu_latency
    cumulative = []
    for name in [s[0] for s in steps] + ["+ pruning & downsampling"]:
        latency = latencies[name]
        rows.append([name, f"{latency * 1e3:.1f} ms", f"{gpu_latency / latency:.2f}x"])
        cumulative.append(gpu_latency / latency)
        previous = latency
    print_table("Fig. 17(b): cumulative speedup breakdown (MonoGS, tum-like)", ["configuration", "latency", "speedup vs ONX"], rows)
    # Speedups accumulate: the full configuration is the fastest.
    assert cumulative[-1] >= cumulative[0]
    assert cumulative[-1] > 1.0
