"""Figure 13: (a) accuracy/efficiency trade-off vs precise pruners and (b) drift vs pruning ratio.

(a) RTGS's gradient-reuse pruning reaches higher modelled FPS than
LightGaussian / FlashGS-style pruning (which pay for dedicated importance
passes) at comparable ATE.
(b) Cumulative ATE stays close to the unpruned baseline up to ~50% pruning and
degrades at 80%.
"""

import numpy as np

from benchmarks.conftest import WORKLOAD_SCALE, get_run, print_table
from repro.hardware import EdgeGPUModel, evaluate_system

PRUNERS_13A = ["base", "lightgaussian", "flashgs", "rtgs"]
RATIOS_13B = [0.0, 0.25, 0.5, 0.8]


def _fps(run):
    model = EdgeGPUModel("onx", workload_scale=WORKLOAD_SCALE)
    return evaluate_system(run.all_snapshots(), model, "onx").overall_fps


def test_fig13a_accuracy_efficiency_tradeoff(benchmark):
    runs = {name: get_run("mono_gs", "replica", variant=name) for name in PRUNERS_13A}
    fps = benchmark(lambda: {name: _fps(run) for name, run in runs.items()})
    rows = [
        [name, f"{run.ate():.2f}", f"{fps[name]:.2f}"] for name, run in runs.items()
    ]
    print_table("Fig. 13(a): accuracy vs efficiency (MonoGS, replica-like)", ["method", "ATE(cm)", "FPS"], rows)
    # RTGS pruning is at least as fast as the precise pruners (no extra passes).
    assert fps["rtgs"] >= fps["lightgaussian"] * 0.95
    assert fps["rtgs"] >= fps["base"]


def test_fig13b_drift_vs_pruning_ratio(benchmark):
    runs = {
        ratio: get_run("mono_gs", "replica", variant="fixed" if ratio > 0 else "base", prune_ratio=ratio)
        for ratio in RATIOS_13B
    }
    curves = benchmark(lambda: {ratio: run.drift_curve() for ratio, run in runs.items()})
    rows = [
        [f"{ratio:.0%} pruning", f"{curves[ratio][-1]:.2f}", f"{runs[ratio].cloud.n_total}"]
        for ratio in RATIOS_13B
    ]
    print_table(
        "Fig. 13(b): cumulative ATE vs pruning ratio (MonoGS, replica-like)",
        ["pruning ratio", "final cumulative ATE (cm)", "final #Gaussians"],
        rows,
    )
    # Shape: moderate pruning keeps the map much smaller at bounded extra drift.
    assert runs[0.8].cloud.n_total < runs[0.25].cloud.n_total
    assert np.isfinite(curves[0.8][-1])
