"""Committed performance baselines and the CI perf-regression gate.

The fast paths this repository ships (the flat rasterizer backend, the
batched mapping scheduler) are pinned by committed *speedup ratios* under
``benchmarks/baselines/*.json``.  Ratios of two timings measured back-to-back
on the same machine are far more stable across hardware than absolute
wall-clock, which is what makes them gateable on shared CI runners.

A benchmark measures its ratio and calls :func:`check_speedup`; the measured
value is always printed, and the assertion fires when the gate is active and
the ratio regressed more than :data:`MAX_REGRESSION` (20%) below the
committed baseline.  The gate is active

* locally (a quiet developer machine — same policy as the existing
  ``STRICT_TIMING`` switch), and
* in the dedicated CI ``perf`` job, which sets ``REPRO_PERF_STRICT=1``;

on ordinary CI runners (``CI`` set, ``REPRO_PERF_STRICT`` unset) the check is
advisory so a scheduler hiccup in an unrelated job cannot fail the build.

After an intentional performance change, re-measure and update the baseline
JSON in the same commit.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

# A measured speedup may fall this far below its committed baseline before the
# gate fails the run.
MAX_REGRESSION = 0.20

# When set, every measured ratio is also written to
# ``$REPRO_PERF_OUTPUT_DIR/<name>.json`` (same shape as the baseline files,
# plus a ``<key>:baseline`` entry for context).  The CI perf job points this
# at its artifact directory so the bench trajectory accumulates run over run
# and the job log can print a measured-vs-baseline summary table.
OUTPUT_ENV = "REPRO_PERF_OUTPUT_DIR"


def perf_gate_active() -> bool:
    """True when a failed baseline check must fail the test run."""
    if os.environ.get("REPRO_PERF_STRICT"):
        return True
    return not os.environ.get("CI")


# Every gate skipped this session, as (name, key, reason): the conftest prints
# them in the terminal summary so a skipped gate is always visible in the job
# log, never a silent pass.
SKIPPED_GATES: list[tuple[str, str, str]] = []


def skip_gate(name: str, key: str, reason: str) -> None:
    """Skip a perf gate with a logged, machine-readable reason.

    Prints the ``[perf:skip]`` line (the convention CI log scrapers and the
    terminal-summary hook key on), records it in :data:`SKIPPED_GATES`, and
    raises ``pytest.skip`` so the test reports as skipped — a gate that cannot
    measure must never silently pass.
    """
    SKIPPED_GATES.append((name, key, reason))
    print(f"[perf:skip] {name}.{key}: {reason}")
    import pytest

    pytest.skip(f"{name}.{key}: {reason}")


def load_baselines(name: str) -> dict[str, float]:
    path = BASELINE_DIR / f"{name}.json"
    if not path.exists():
        raise FileNotFoundError(
            f"no committed perf baseline {path}; add it with the benchmark "
            "that measures it"
        )
    with open(path) as handle:
        return json.load(handle)


def record_measurement(name: str, key: str, measured: float, baseline: float) -> None:
    """Persist one measured ratio to the perf output directory, if configured."""
    output_dir = os.environ.get(OUTPUT_ENV)
    if not output_dir:
        return
    directory = Path(output_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    data: dict[str, float] = {}
    if path.exists():
        with open(path) as handle:
            data = json.load(handle)
    data[key] = measured
    data[f"{key}:baseline"] = baseline
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def check_speedup(name: str, key: str, measured: float, minimum: float | None = None) -> None:
    """Gate ``measured`` (a speedup ratio) against the committed baseline.

    ``minimum`` optionally enforces an absolute floor on top of the relative
    regression check (e.g. "the batched path must stay >= 1.5x" regardless of
    what the baseline file says).

    A missing baseline file or key skips the gate with a logged
    ``[perf:skip]`` reason (via :func:`skip_gate`) instead of erroring or
    silently passing: freshly added benchmarks whose baseline has not been
    committed yet stay visible in the job log until the baseline lands.
    """
    try:
        baselines = load_baselines(name)
    except FileNotFoundError:
        skip_gate(
            name,
            key,
            f"missing-baseline:benchmarks/baselines/{name}.json is not committed; "
            "add it with the benchmark that measures it",
        )
        return
    if key not in baselines:
        skip_gate(
            name,
            key,
            f"missing-baseline-key:benchmarks/baselines/{name}.json has no entry "
            f"{key!r}; add it with the benchmark that measures it",
        )
        return
    baseline = baselines[key]
    record_measurement(name, key, measured, baseline)
    floor = baseline * (1.0 - MAX_REGRESSION)
    if minimum is not None:
        floor = max(floor, minimum)
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(
        f"[perf:{verdict}] {name}.{key}: measured {measured:.2f}x, "
        f"baseline {baseline:.2f}x, floor {floor:.2f}x"
    )
    if perf_gate_active():
        assert measured >= floor, (
            f"performance regression on {name}.{key}: measured {measured:.2f}x "
            f"but the gate floor is {floor:.2f}x (committed baseline "
            f"{baseline:.2f}x, max regression {MAX_REGRESSION:.0%}"
            + (f", absolute minimum {minimum:.2f}x" if minimum is not None else "")
            + "); if the slowdown is intentional, update "
            f"benchmarks/baselines/{name}.json in the same change"
        )


def best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall-clock of ``fn()`` (the standard timing loop here)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
