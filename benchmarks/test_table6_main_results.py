"""Table 6: base algorithms vs Taming-3DGS pruning vs RTGS across datasets.

Reports ATE / PSNR / modelled FPS / peak memory for each (algorithm, variant)
pair.  Expected shape: "Ours" (RTGS algorithm) raises FPS by ~2.5-3.6x with a
small quality change, while Taming-3DGS-style pruning is both less effective
and less accurate in the few-iteration SLAM regime.

The full paper matrix covers four datasets; to keep the harness affordable the
default sweep uses the two extremes (tum-like and replica-like) - add more
dataset names to ``DATASETS`` to widen it.
"""

from benchmarks.conftest import WORKLOAD_SCALE, format_db, get_run, get_sequence, print_table
from repro.hardware import EdgeGPUModel, evaluate_system
from repro.metrics import gaussian_memory_gb

DATASETS = ["tum", "replica"]
ALGORITHMS = ["gs_slam", "mono_gs", "photo_slam"]
VARIANTS = ["base", "taming", "rtgs"]


def _evaluate(run):
    model = EdgeGPUModel("onx", workload_scale=WORKLOAD_SCALE)
    return evaluate_system(run.all_snapshots(), model, "onx")


def test_table6_main_results(benchmark):
    rows = []
    fps_by_variant: dict[str, list[float]] = {variant: [] for variant in VARIANTS}
    runs = {}
    for dataset in DATASETS:
        for algorithm in ALGORITHMS:
            for variant in VARIANTS:
                runs[(dataset, algorithm, variant)] = get_run(algorithm, dataset, variant=variant)

    evaluations = benchmark(lambda: {key: _evaluate(run) for key, run in runs.items()})

    for (dataset, algorithm, variant), run in runs.items():
        sequence = get_sequence(dataset)
        evaluation = evaluations[(dataset, algorithm, variant)]
        fps_by_variant[variant].append(evaluation.overall_fps)
        rows.append(
            [
                dataset,
                f"{algorithm}+{variant}",
                f"{run.ate():.2f}",
                format_db(run.evaluate_psnr(sequence, 2)),
                f"{evaluation.overall_fps:.2f}",
                f"{gaussian_memory_gb(run.peak_gaussian_count * WORKLOAD_SCALE):.2f}",
            ]
        )
    print_table(
        "Table 6: base vs Taming-3DGS vs RTGS (workload modelled on ONX)",
        ["dataset", "method", "ATE(cm)", "PSNR(dB)", "FPS", "Mem(GB)"],
        rows,
    )
    mean = lambda values: sum(values) / len(values)
    # Shape check: the RTGS algorithm variant is the fastest of the three.
    assert mean(fps_by_variant["rtgs"]) > mean(fps_by_variant["base"])
    assert mean(fps_by_variant["rtgs"]) > mean(fps_by_variant["taming"])
