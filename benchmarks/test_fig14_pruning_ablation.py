"""Figure 14: (a) pruning-ratio sweep and (b) FF/BP speedup from the algorithm techniques.

(a) sweeps the Gaussian prune ratio and reports final ATE plus modelled
per-frame latency; latency falls with the ratio while ATE degrades sharply
beyond ~50%.
(b) reports the forward (FF) and backward (BP) workload reduction obtained by
adaptive pruning and dynamic downsampling, mirroring the paper's 1.5-2.6x
per-technique factors.
"""

from benchmarks.conftest import WORKLOAD_SCALE, get_run, print_table
from repro.hardware import EdgeGPUModel

RATIOS = [0.0, 0.14, 0.3, 0.5, 0.7]


def _per_frame_latency(run):
    model = EdgeGPUModel("onx", workload_scale=WORKLOAD_SCALE)
    total = model.frame_latency(run.all_snapshots()).total
    return total / max(len(run.frame_records), 1)


def test_fig14a_pruning_ratio_sweep(benchmark):
    runs = {
        ratio: get_run("mono_gs", "replica", variant="fixed" if ratio > 0 else "base", prune_ratio=ratio)
        for ratio in RATIOS
    }
    latency = benchmark(lambda: {ratio: _per_frame_latency(run) for ratio, run in runs.items()})
    rows = [
        [f"{ratio:.2f}", f"{runs[ratio].ate():.2f}", f"{latency[ratio] * 1e3:.1f}"]
        for ratio in RATIOS
    ]
    print_table(
        "Fig. 14(a): pruning ratio sweep (MonoGS, replica-like)",
        ["prune ratio", "final ATE (cm)", "latency/frame (ms)"],
        rows,
    )
    assert latency[RATIOS[-1]] < latency[0.0]


def test_fig14b_algorithm_speedup_breakdown(benchmark):
    base = get_run("mono_gs", "replica", variant="base")
    ours = get_run("mono_gs", "replica", variant="rtgs")

    def workloads():
        def split(run):
            forward = sum(s.total_fragments for s in run.all_snapshots())
            backward = sum(s.total_pixel_level_updates for s in run.all_snapshots())
            return forward, backward

        return split(base), split(ours)

    (base_ff, base_bp), (ours_ff, ours_bp) = benchmark(workloads)
    rows = [
        ["forward (FF) workload reduction", f"{base_ff / max(ours_ff, 1):.2f}x"],
        ["backward (BP) workload reduction", f"{base_bp / max(ours_bp, 1):.2f}x"],
    ]
    print_table(
        "Fig. 14(b): FF/BP workload reduction from pruning + downsampling",
        ["quantity", "value"],
        rows,
    )
    assert base_ff / max(ours_ff, 1) > 1.2
    assert base_bp / max(ours_bp, 1) > 1.2
