"""Dispatch-overhead gate: the engine batch path vs direct ``rasterize_batch_views``.

The engine rework routes every render through ``RenderEngine`` — request
construction, backend resolution, arena ownership tracking — and that
indirection must stay free.  This benchmark times the mapping-shaped batch
forward (the hottest render path) twice over identical state:

* **direct**: ``rasterize_batch_views`` with a hand-recycled arena — the
  pre-engine call pattern of the mapping scheduler;
* **engine**: ``RenderEngine.render_batch`` with its managed recycled arena
  (released each iteration, as the fused backward does in the scheduler).

The ratio direct/engine is gated with an absolute floor of 0.95x: the engine
path may not cost more than 5% of the direct baseline regardless of what the
committed baseline says.  Outputs are asserted bit-identical first so the
timing cannot drift into comparing different math.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import get_sequence, print_table
from benchmarks.perf_gate import best_of, check_speedup
from repro.engine import EngineConfig, RenderEngine
from repro.gaussians import GaussianCloud
from repro.gaussians.batch import rasterize_batch_views

N_VIEWS = 3
SEED_STRIDE = 3


def _scene():
    sequence = get_sequence("tum")
    first = sequence.frame(0)
    cloud = GaussianCloud.from_rgbd(
        first.image, first.depth, first.camera, first.gt_pose_cw, stride=SEED_STRIDE
    )
    views = [sequence.frame(index) for index in range(N_VIEWS)]
    return cloud, [frame.camera for frame in views], [frame.gt_pose_cw for frame in views]


def test_engine_batch_dispatch_overhead():
    cloud, cameras, poses = _scene()
    engine = RenderEngine(EngineConfig(backend="flat", geom_cache=False))

    class _Direct:
        def __init__(self):
            self.arena = None

        def __call__(self):
            batch = rasterize_batch_views(cloud, cameras, poses, arena=self.arena)
            self.arena = batch.arena
            return batch

    direct = _Direct()

    def engined():
        batch = engine.render_batch(cloud, cameras, poses)
        engine.release(batch)
        return batch

    # Bit-identical first: both paths run the same flat batch implementation.
    direct_batch = direct()
    engine_batch = engined()
    for direct_view, engine_view in zip(direct_batch.views, engine_batch.views):
        np.testing.assert_array_equal(direct_view.image, engine_view.image)
        assert np.array_equal(
            direct_view.fragments_per_pixel, engine_view.fragments_per_pixel
        )

    # Dispatch overhead is µs against a ~10 ms render, so the signal is far
    # below scheduler noise; lengthen each sample (3 batches) and take the
    # best of many so the ratio converges to the true floor-to-floor one.
    def run_direct():
        for _ in range(4):
            direct()

    def run_engine():
        for _ in range(4):
            engined()

    time_direct = best_of(run_direct, repeats=12)
    time_engine = best_of(run_engine, repeats=12)
    ratio = time_direct / time_engine

    print_table(
        f"Engine dispatch overhead ({N_VIEWS}-view batch forward)",
        ["path", "wall-clock", "relative"],
        [
            ["direct rasterize_batch_views", f"{time_direct * 1e3:.1f} ms", "1.00x"],
            ["RenderEngine.render_batch", f"{time_engine * 1e3:.1f} ms", f"{ratio:.2f}x"],
        ],
    )
    # The engine path must stay >= 0.95x of the direct baseline (no dispatch
    # overhead regression), on top of the committed-ratio regression check.
    check_speedup("engine_overhead", "engine_vs_direct_batch", ratio, minimum=0.95)
