"""Figure 5: similarity of consecutive frames (Observation 5).

RMSE between consecutive frames is low and SSIM high, especially for
non-keyframes close to a keyframe - the redundancy dynamic downsampling taps.
"""

from benchmarks.conftest import get_sequence, print_table
from repro.profiling import frame_similarity_series
from repro.profiling.similarity import similarity_by_keyframe_distance


def test_fig5_similarity(benchmark):
    sequence = get_sequence("tum", n_frames=8)
    series = benchmark(lambda: frame_similarity_series(sequence, keyframe_interval=4))
    grouped = similarity_by_keyframe_distance(series)
    rows = [
        [f"distance {distance}", f"{stats['rmse']:.4f}", f"{stats['ssim']:.3f}", stats["count"]]
        for distance, stats in grouped.items()
    ]
    print_table(
        "Fig. 5: consecutive-frame similarity vs keyframe distance (tum-like)",
        ["keyframe distance", "RMSE", "SSIM", "frames"],
        rows,
    )
    assert series["rmse"].mean() < 0.2
    assert series["ssim"].mean() > 0.5
