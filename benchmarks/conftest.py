"""Shared benchmark fixtures: cached SLAM runs reused by every table/figure harness.

Each benchmark module regenerates one table or figure of the paper.  Because a
full SLAM run is the expensive part, runs are cached per (algorithm, dataset,
variant) in a session-scoped store; the pytest-benchmark timings then measure
the analysis/hardware-model kernels on top of those runs.

``WORKLOAD_SCALE`` rescales the synthetic workload counts to the paper's
full-resolution pixel counts so the modelled FPS numbers are in a comparable
regime (the synthetic frames are ~150x smaller than TUM's 480x640).
"""

from __future__ import annotations

import pytest

from repro.core import FixedRatioPruner, RTGSAlgorithmConfig, build_pipeline, make_pruner
from repro.datasets import make_sequence
from repro.metrics import format_db  # noqa: F401  (re-exported for benchmark tables)
from repro.slam import make_algorithm

# Keep the benchmark matrix affordable on a laptop-class machine.
N_FRAMES = 8
RESOLUTION_SCALE = 0.7
WORKLOAD_SCALE = 150.0

_SEQUENCE_CACHE: dict[tuple, object] = {}
_RUN_CACHE: dict[tuple, object] = {}


def get_sequence(dataset: str, scene: str | None = None, n_frames: int = N_FRAMES):
    """Build (or fetch) a cached synthetic sequence."""
    key = (dataset, scene, n_frames)
    if key not in _SEQUENCE_CACHE:
        _SEQUENCE_CACHE[key] = make_sequence(
            dataset, scene=scene, n_frames=n_frames, resolution_scale=RESOLUTION_SCALE
        )
    return _SEQUENCE_CACHE[key]


def get_run(
    algorithm: str = "mono_gs",
    dataset: str = "tum",
    scene: str | None = None,
    variant: str = "base",
    n_frames: int = N_FRAMES,
    prune_ratio: float = 0.5,
):
    """Run (or fetch) a cached SLAM run.

    ``variant`` is one of ``base``, ``rtgs`` (adaptive pruning + dynamic
    downsampling), ``taming`` / ``lightgaussian`` / ``flashgs`` (baseline
    pruners) or ``fixed`` (fixed-ratio pruning at ``prune_ratio``).
    """
    key = (algorithm, dataset, scene, variant, n_frames, round(prune_ratio, 3))
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]

    config = make_algorithm(algorithm, fast=True)
    sequence = get_sequence(dataset, scene, n_frames)
    if variant == "base":
        pipeline = build_pipeline(config)
    elif variant == "rtgs":
        pipeline = build_pipeline(config, RTGSAlgorithmConfig())
    elif variant == "fixed":
        pipeline = build_pipeline(config, pruner=FixedRatioPruner(prune_ratio))
    else:
        pipeline = build_pipeline(config, pruner=make_pruner(variant, prune_ratio=prune_ratio))
    result = pipeline.run(sequence, n_frames=n_frames)
    _RUN_CACHE[key] = result
    return result


@pytest.fixture(scope="session")
def workload_scale() -> float:
    return WORKLOAD_SCALE


def pytest_terminal_summary(terminalreporter) -> None:
    """Surface skipped perf gates in the session summary.

    A perf gate that could not measure (missing baseline, too few cores)
    skips with a machine-readable reason via ``perf_gate.skip_gate``; echoing
    those reasons here keeps them visible at the end of long CI logs instead
    of buried in per-test captured output.
    """
    from benchmarks.perf_gate import SKIPPED_GATES

    if not SKIPPED_GATES:
        return
    terminalreporter.write_sep("-", "skipped perf gates")
    for name, key, reason in SKIPPED_GATES:
        terminalreporter.write_line(f"[perf:skip] {name}.{key}: {reason}")


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print a table in a format comparable to the paper's."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0)) for i in range(len(header))]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
