"""RTGS algorithm configuration: attaching pruning + downsampling to a base SLAM.

The paper positions the RTGS algorithm techniques as a plug-and-play extension
of existing 3DGS-SLAM algorithms (Sec. 6.1).  :func:`build_pipeline` mirrors
that: given a base :class:`~repro.slam.algorithms.SLAMConfig` and an
:class:`RTGSAlgorithmConfig`, it constructs a pipeline with the pruner hooked
into tracking and the dynamic downsampler driving non-keyframe resolution.

For Photo-SLAM, whose tracking backpropagation is classical/geometric, the
pruner has no tracking gradients to reuse; as in the paper, the techniques are
applied to its rendering/mapping path only (the downsampler still applies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.baselines import (
    FlashGSPruner,
    LightGaussianPruner,
    MaskGaussianPruner,
    TamingPruner,
)
from repro.core.downsampling import DownsamplingConfig, DynamicDownsampler
from repro.core.pruning import AdaptiveGaussianPruner, FixedRatioPruner, PruningConfig
from repro.slam.algorithms import SLAMConfig
from repro.slam.pipeline import SLAMPipeline
from repro.slam.tracking import TrackingHook


@dataclass
class RTGSAlgorithmConfig:
    """Which RTGS algorithm techniques to enable, and their parameters."""

    enable_pruning: bool = True
    enable_downsampling: bool = True
    pruning: PruningConfig = field(default_factory=PruningConfig)
    downsampling: DownsamplingConfig = field(default_factory=DownsamplingConfig)


PRUNER_REGISTRY = {
    "rtgs": lambda: AdaptiveGaussianPruner(),
    "taming": lambda: TamingPruner(),
    "lightgaussian": lambda: LightGaussianPruner(),
    "flashgs": lambda: FlashGSPruner(),
    "maskgaussian": lambda: MaskGaussianPruner(),
}


def make_pruner(name: str, **kwargs) -> TrackingHook:
    """Instantiate a pruner by name (``rtgs`` or one of the baselines)."""
    if name == "rtgs":
        return AdaptiveGaussianPruner(PruningConfig(**kwargs)) if kwargs else AdaptiveGaussianPruner()
    if name == "fixed":
        return FixedRatioPruner(**kwargs)
    if name in PRUNER_REGISTRY and not kwargs:
        return PRUNER_REGISTRY[name]()
    factories = {
        "taming": TamingPruner,
        "lightgaussian": LightGaussianPruner,
        "flashgs": FlashGSPruner,
        "maskgaussian": MaskGaussianPruner,
    }
    if name not in factories:
        raise ValueError(f"unknown pruner '{name}'; options: {sorted(factories) + ['rtgs', 'fixed']}")
    return factories[name](**kwargs)


def build_pipeline(
    base: SLAMConfig,
    rtgs: RTGSAlgorithmConfig | None = None,
    pruner: TrackingHook | None = None,
) -> SLAMPipeline:
    """Create a SLAM pipeline for ``base``, optionally RTGS-enhanced.

    Parameters
    ----------
    base:
        A base algorithm configuration (``gs_slam()``, ``mono_gs()``, ...).
    rtgs:
        RTGS algorithm configuration.  ``None`` runs the unmodified baseline.
    pruner:
        Optional explicit pruning hook (e.g. a baseline pruner or a
        :class:`~repro.core.pruning.FixedRatioPruner` for ratio sweeps); when
        given it overrides ``rtgs.enable_pruning``.
    """
    if rtgs is None and pruner is None:
        return SLAMPipeline(base)

    hook: TrackingHook | None = pruner
    if hook is None and rtgs is not None and rtgs.enable_pruning and base.tracker == "gradient":
        hook = AdaptiveGaussianPruner(rtgs.pruning)

    resolution_policy = None
    if rtgs is not None and rtgs.enable_downsampling:
        resolution_policy = DynamicDownsampler(rtgs.downsampling)

    return SLAMPipeline(base, tracking_hook=hook, resolution_policy=resolution_policy)
