"""Dynamic downsampling (Sec. 4.2).

Keyframes are processed at full resolution ``R0``.  A non-keyframe that
immediately follows a keyframe is processed at ``R0 / 16`` (one sixteenth of
the pixels); each further consecutive non-keyframe multiplies the fraction by
``m`` until it saturates at ``R0 / 4``; the next keyframe resets to ``R0``.

The policy reuses the keyframe decision the base algorithm already makes, so
it costs nothing to evaluate - the paper's point about exploiting the existing
pipeline to avoid redundancy-identification overhead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DownsamplingConfig:
    """Parameters of the resolution schedule (paper default ``m = 2``)."""

    initial_fraction: float = 1.0 / 16.0
    max_fraction: float = 1.0 / 4.0
    growth_factor: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_fraction <= 1.0:
            raise ValueError("initial_fraction must lie in (0, 1]")
        if not self.initial_fraction <= self.max_fraction <= 1.0:
            raise ValueError("max_fraction must lie in [initial_fraction, 1]")
        if self.growth_factor < 1.0:
            raise ValueError("growth_factor must be >= 1")


class DynamicDownsampler:
    """Per-frame resolution policy implementing the Sec. 4.2 schedule."""

    def __init__(self, config: DownsamplingConfig | None = None):
        self.config = config or DownsamplingConfig()
        self.history: list[float] = []

    def resolution_fraction(
        self, frame_index: int, is_keyframe: bool, last_keyframe_index: int | None
    ) -> float:
        """Return the pixel fraction for ``frame_index``.

        ``last_keyframe_index`` is the index of the most recent keyframe (the
        paper's ``k``); the fraction grows geometrically with the distance to
        it.
        """
        fraction = self._fraction_for(frame_index, is_keyframe, last_keyframe_index)
        self.history.append(fraction)
        return fraction

    def _fraction_for(
        self, frame_index: int, is_keyframe: bool, last_keyframe_index: int | None
    ) -> float:
        if is_keyframe or last_keyframe_index is None:
            return 1.0
        distance = max(frame_index - last_keyframe_index - 1, 0)
        fraction = self.config.initial_fraction * self.config.growth_factor**distance
        return float(min(fraction, self.config.max_fraction))

    def average_fraction(self) -> float:
        """Mean pixel fraction over the frames seen so far (efficiency proxy)."""
        if not self.history:
            return 1.0
        return float(sum(self.history) / len(self.history))
