"""RTGS algorithm (the paper's primary algorithmic contribution).

* :mod:`importance` - gradient-reuse importance scoring (Eq. 7)
* :mod:`pruning` - adaptive mask-then-prune Gaussian pruning (Sec. 4.1)
* :mod:`downsampling` - dynamic non-keyframe downsampling (Sec. 4.2)
* :mod:`baselines` - Taming-3DGS / LightGaussian / FlashGS / MaskGaussian pruners
* :mod:`rtgs` - plug-and-play attachment of the techniques to base SLAM configs
"""

from repro.core.baselines import (
    FlashGSPruner,
    LightGaussianPruner,
    MaskGaussianPruner,
    TamingPruner,
)
from repro.core.downsampling import DownsamplingConfig, DynamicDownsampler
from repro.core.importance import ImportanceScorer
from repro.core.pruning import (
    AdaptiveGaussianPruner,
    FixedRatioPruner,
    PruningConfig,
    PruningStats,
)
from repro.core.rtgs import RTGSAlgorithmConfig, build_pipeline, make_pruner

__all__ = [
    "AdaptiveGaussianPruner",
    "DownsamplingConfig",
    "DynamicDownsampler",
    "FixedRatioPruner",
    "FlashGSPruner",
    "ImportanceScorer",
    "LightGaussianPruner",
    "MaskGaussianPruner",
    "PruningConfig",
    "PruningStats",
    "RTGSAlgorithmConfig",
    "TamingPruner",
    "build_pipeline",
    "make_pruner",
]
