"""Gradient-reuse importance scoring (Eq. 7 of the paper).

The importance of a Gaussian is the weighted sum of the L2 norms of the loss
gradients with respect to its 3D mean and its covariance:

``Score_gaussian = ||dL/dmu|| + lambda * ||dL/dSigma||``

Both gradients are *already computed* by tracking/mapping backpropagation, so
evaluating the score adds no extra loss or gradient computation - the property
that distinguishes RTGS from LightGaussian/FlashGS-style pruners that need
dedicated importance passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.backward import CloudGradients


@dataclass
class ImportanceScorer:
    """Accumulates per-Gaussian importance scores from tracking gradients.

    Scores are accumulated (summed) over the iterations of the current pruning
    window so that a Gaussian's importance reflects its sustained contribution
    to pose optimisation rather than a single iteration's noise - addressing
    the "can we prune in a single frame?" caveat of Sec. 3.
    """

    position_weight: float = 1.0
    covariance_weight: float = 0.8
    _accumulated: np.ndarray | None = field(default=None, repr=False)
    _iterations_seen: int = field(default=0, repr=False)

    def reset(self, n_gaussians: int) -> None:
        """Clear accumulated scores for a cloud of ``n_gaussians``."""
        self._accumulated = np.zeros(n_gaussians)
        self._iterations_seen = 0

    @property
    def iterations_seen(self) -> int:
        return self._iterations_seen

    def score_single(self, gradients: CloudGradients) -> np.ndarray:
        """Eq. 7 for one backward pass (no accumulation)."""
        mu_norm, sigma_norm = gradients.importance_inputs()
        return self.position_weight * mu_norm + self.covariance_weight * sigma_norm

    def observe(self, gradients: CloudGradients) -> np.ndarray:
        """Accumulate the scores of one backward pass; returns this pass's scores."""
        scores = self.score_single(gradients)
        if self._accumulated is None or self._accumulated.shape != scores.shape:
            self.reset(scores.shape[0])
        self._accumulated += scores
        self._iterations_seen += 1
        return scores

    def accumulated(self) -> np.ndarray:
        """Mean accumulated score per Gaussian over the current window."""
        if self._accumulated is None or self._iterations_seen == 0:
            return np.zeros(0)
        return self._accumulated / self._iterations_seen

    def resize(self, n_gaussians: int) -> None:
        """Adapt the accumulator when the cloud grew or shrank mid-window."""
        if self._accumulated is None:
            self.reset(n_gaussians)
            return
        if self._accumulated.shape[0] == n_gaussians:
            return
        resized = np.zeros(n_gaussians)
        keep = min(self._accumulated.shape[0], n_gaussians)
        resized[:keep] = self._accumulated[:keep]
        self._accumulated = resized

    def keep_rows(self, keep_mask: np.ndarray) -> None:
        """Drop accumulator rows for removed Gaussians."""
        if self._accumulated is not None and self._accumulated.shape[0] == keep_mask.shape[0]:
            self._accumulated = self._accumulated[np.asarray(keep_mask, dtype=bool)]
