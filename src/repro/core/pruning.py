"""Adaptive Gaussian pruning (Sec. 4.1).

The pruner plugs into tracking as a :class:`~repro.slam.tracking.TrackingHook`:

1. every backward pass, it accumulates the Eq. 7 importance score of each
   Gaussian *from the gradients tracking already computed*;
2. it **masks** (rather than deletes) the lowest-scoring Gaussians so they stop
   participating in rendering, capped at ``max_prune_ratio`` of the map;
3. after ``K`` iterations it **permanently removes** the masked Gaussians and
   adapts ``K``: if the tile-Gaussian intersection signature changed by more
   than ``change_ratio_threshold`` the interval is halved (the scene geometry
   is moving quickly, so decisions go stale), otherwise it is doubled.

Masking is preferred over immediate deletion precisely so the intersection
change ratio can still be measured over the full Gaussian set (the paper's
stated reason for the mask-prune strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.importance import ImportanceScorer
from repro.gaussians.backward import CloudGradients
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.rasterizer import RenderResult
from repro.gaussians.sorting import intersection_change_ratio
from repro.slam.frame import Frame
from repro.slam.tracking import TrackingHook


@dataclass
class PruningConfig:
    """Hyper-parameters of adaptive pruning (paper defaults in Sec. 6.1)."""

    importance_lambda: float = 0.8
    initial_interval: int = 5
    min_interval: int = 1
    max_interval: int = 40
    change_ratio_threshold: float = 0.05
    prune_fraction_per_window: float = 0.15
    max_prune_ratio: float = 0.5
    min_gaussians: int = 64
    protect_keyframes: bool = True


@dataclass
class PruningStats:
    """Counters describing what the pruner did during a run."""

    masked_total: int = 0
    removed_total: int = 0
    windows_completed: int = 0
    interval_history: list[int] = field(default_factory=list)
    change_ratios: list[float] = field(default_factory=list)


class AdaptiveGaussianPruner(TrackingHook):
    """RTGS's gradient-reuse, mask-then-prune Gaussian pruner."""

    def __init__(self, config: PruningConfig | None = None):
        self.config = config or PruningConfig()
        self.scorer = ImportanceScorer(
            position_weight=1.0, covariance_weight=self.config.importance_lambda
        )
        self.stats = PruningStats()
        self._interval = self.config.initial_interval
        self._iterations_in_window = 0
        self._initial_count: int | None = None
        self._current_alive = 0
        self._previous_signature: set[int] | None = None
        self._removal_listeners: list[Callable[[np.ndarray], None]] = []

    # -- pipeline integration -------------------------------------------------
    def add_removal_listener(self, listener: Callable[[np.ndarray], None]) -> None:
        """Register a callback invoked with the keep-mask whenever Gaussians are removed."""
        self._removal_listeners.append(listener)

    @property
    def interval(self) -> int:
        """Current pruning interval ``K``."""
        return self._interval

    @property
    def pruned_ratio(self) -> float:
        """Fraction of the original map removed or masked so far in this run."""
        if not self._initial_count:
            return 0.0
        return 1.0 - min(1.0, self._current_alive / self._initial_count)

    # -- TrackingHook API -------------------------------------------------------
    def begin_frame(self, cloud: GaussianCloud, frame: Frame) -> None:
        if self._initial_count is None:
            self._initial_count = max(cloud.n_total, 1)
        self._current_alive = cloud.n_active
        self.scorer.resize(cloud.n_total)

    def after_backward(
        self,
        cloud: GaussianCloud,
        gradients: CloudGradients,
        render: RenderResult,
        iteration: int,
    ) -> None:
        self.scorer.resize(cloud.n_total)
        self.scorer.observe(gradients)
        self._iterations_in_window += 1
        self._current_alive = cloud.n_active

        if self._iterations_in_window >= self._interval:
            self._mask_low_importance(cloud)
            self._finish_window(cloud, render)

    def end_frame(self, cloud: GaussianCloud, is_keyframe: bool) -> None:
        # Keyframes drive mapping; the paper skips pruning/pose write-back for
        # them, so remove only what is already masked and keep scores fresh.
        removed = self._commit_removal(cloud)
        self.stats.removed_total += removed
        self._current_alive = cloud.n_active

    # -- internals ---------------------------------------------------------------
    def _mask_low_importance(self, cloud: GaussianCloud) -> None:
        """Mask the lowest-importance active Gaussians for the rest of the window."""
        scores = self.scorer.accumulated()
        if scores.size != cloud.n_total or cloud.n_total <= self.config.min_gaussians:
            return
        active_idx = cloud.active_indices()
        if active_idx.size <= self.config.min_gaussians:
            return

        initial = self._initial_count or cloud.n_total
        already_gone = 1.0 - active_idx.size / initial
        budget_ratio = max(0.0, self.config.max_prune_ratio - already_gone)
        n_prunable = int(min(budget_ratio * initial,
                             self.config.prune_fraction_per_window * active_idx.size))
        n_prunable = min(n_prunable, active_idx.size - self.config.min_gaussians)
        if n_prunable <= 0:
            return

        active_scores = scores[active_idx]
        order = np.argsort(active_scores)
        to_mask = active_idx[order[:n_prunable]]
        cloud.mask(to_mask)
        self.stats.masked_total += len(to_mask)

    def _finish_window(self, cloud: GaussianCloud, render: RenderResult) -> None:
        """Close a pruning window: adapt ``K`` from the intersection change ratio."""
        signature = render.intersections.intersection_signature()
        if self._previous_signature is not None:
            ratio = intersection_change_ratio(self._previous_signature, signature)
            self.stats.change_ratios.append(ratio)
            if ratio > self.config.change_ratio_threshold:
                self._interval = max(self.config.min_interval, self._interval // 2)
            else:
                self._interval = min(self.config.max_interval, self._interval * 2)
        self._previous_signature = signature
        self.stats.interval_history.append(self._interval)
        self.stats.windows_completed += 1
        self._iterations_in_window = 0
        self.scorer.reset(cloud.n_total)

    def _commit_removal(self, cloud: GaussianCloud) -> int:
        """Permanently delete masked Gaussians and notify listeners."""
        inactive = ~cloud.active
        n_remove = int(inactive.sum())
        if n_remove == 0:
            return 0
        keep_mask = ~inactive
        for listener in self._removal_listeners:
            listener(keep_mask)
        self.scorer.keep_rows(keep_mask)
        cloud.keep_only(keep_mask)
        return n_remove


class FixedRatioPruner(TrackingHook):
    """Ablation helper: prune a fixed fraction of Gaussians once per frame.

    Used by the pruning-ratio sweeps of Fig. 13(b) and Fig. 14(a), where the
    independent variable is the final prune ratio rather than RTGS's adaptive
    schedule.
    """

    def __init__(self, prune_ratio: float, importance_lambda: float = 0.8):
        if not 0.0 <= prune_ratio < 1.0:
            raise ValueError(f"prune_ratio must lie in [0, 1), got {prune_ratio}")
        self.prune_ratio = prune_ratio
        self.scorer = ImportanceScorer(covariance_weight=importance_lambda)
        self._removal_listeners: list[Callable[[np.ndarray], None]] = []

    def add_removal_listener(self, listener: Callable[[np.ndarray], None]) -> None:
        self._removal_listeners.append(listener)

    def begin_frame(self, cloud: GaussianCloud, frame: Frame) -> None:
        self.scorer.reset(cloud.n_total)

    def after_backward(self, cloud, gradients, render, iteration) -> None:
        self.scorer.resize(cloud.n_total)
        self.scorer.observe(gradients)

    def end_frame(self, cloud: GaussianCloud, is_keyframe: bool) -> None:
        if self.prune_ratio <= 0.0 or cloud.n_total < 32:
            return
        scores = self.scorer.accumulated()
        if scores.size != cloud.n_total:
            return
        n_remove = int(self.prune_ratio * cloud.n_total)
        if n_remove == 0:
            return
        order = np.argsort(scores)
        keep_mask = np.ones(cloud.n_total, dtype=bool)
        keep_mask[order[:n_remove]] = False
        for listener in self._removal_listeners:
            listener(keep_mask)
        cloud.keep_only(keep_mask)
