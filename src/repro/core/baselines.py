"""Pruning baselines the paper compares against (Tab. 1, Tab. 6, Fig. 13a).

Each baseline mirrors the *decision rule and cost profile* of the published
method rather than its full implementation:

* :class:`TamingPruner` (Taming 3DGS) scores Gaussians by the variance of
  their gradient history and needs many iterations before its scores are
  trustworthy - far more than a SLAM frame provides, which is why the paper
  finds it degrades accuracy.
* :class:`LightGaussianPruner` scores by global hit counts x opacity x volume
  and requires a dedicated evaluation pass over the rendered image (extra
  cost, no gradient reuse).
* :class:`FlashGSPruner` additionally weighs Gaussians by an image-saliency
  map, the most expensive importance evaluation of the three.
* :class:`MaskGaussianPruner` samples probabilistic masks, keeping Gaussians
  stochastically in proportion to their importance.

All of them expose the same :class:`~repro.slam.tracking.TrackingHook`
interface as RTGS's pruner so they can be swapped into the pipeline, and each
reports an ``extra_evaluation_ops`` estimate so the hardware model can charge
their importance-evaluation overhead (RTGS's is zero by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.gaussians.backward import CloudGradients
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.rasterizer import RenderResult
from repro.slam.frame import Frame
from repro.slam.tracking import TrackingHook


@dataclass
class BaselinePrunerStats:
    """Cost accounting shared by the baseline pruners."""

    extra_evaluation_ops: int = 0
    removed_total: int = 0
    iterations_observed: int = 0


class _BaselinePruner(TrackingHook):
    """Shared machinery: removal listeners and once-per-frame pruning."""

    def __init__(self, prune_ratio: float, min_gaussians: int = 64):
        if not 0.0 <= prune_ratio < 1.0:
            raise ValueError(f"prune_ratio must lie in [0, 1), got {prune_ratio}")
        self.prune_ratio = prune_ratio
        self.min_gaussians = min_gaussians
        self.stats = BaselinePrunerStats()
        self._removal_listeners: list[Callable[[np.ndarray], None]] = []

    def add_removal_listener(self, listener: Callable[[np.ndarray], None]) -> None:
        self._removal_listeners.append(listener)

    # Subclasses override ------------------------------------------------------
    def _scores(self, cloud: GaussianCloud) -> np.ndarray | None:
        raise NotImplementedError

    def _ready(self) -> bool:
        return True

    # Hook implementation --------------------------------------------------------
    def end_frame(self, cloud: GaussianCloud, is_keyframe: bool) -> None:
        if self.prune_ratio <= 0 or cloud.n_total <= self.min_gaussians or not self._ready():
            return
        scores = self._scores(cloud)
        if scores is None or scores.shape[0] != cloud.n_total:
            return
        n_remove = int(min(self.prune_ratio * cloud.n_total, cloud.n_total - self.min_gaussians))
        if n_remove <= 0:
            return
        order = np.argsort(scores)
        keep_mask = np.ones(cloud.n_total, dtype=bool)
        keep_mask[order[:n_remove]] = False
        for listener in self._removal_listeners:
            listener(keep_mask)
        self._keep_rows(keep_mask)
        cloud.keep_only(keep_mask)
        self.stats.removed_total += n_remove

    def _keep_rows(self, keep_mask: np.ndarray) -> None:
        """Subclasses drop their per-Gaussian state here."""


class TamingPruner(_BaselinePruner):
    """Taming-3DGS-style pruning from gradient-change history.

    Importance is the mean absolute change of the position gradient across the
    observed iterations; the method needs ``warmup_iterations`` of history
    before it makes any decision (the paper notes the original needs hundreds,
    which a 15-100-iteration SLAM frame cannot supply).
    """

    def __init__(self, prune_ratio: float = 0.5, warmup_iterations: int = 30):
        super().__init__(prune_ratio)
        self.warmup_iterations = warmup_iterations
        self._history: list[np.ndarray] = []

    def begin_frame(self, cloud: GaussianCloud, frame: Frame) -> None:
        pass  # history persists across frames; that is the point of the method

    def after_backward(self, cloud, gradients: CloudGradients, render, iteration) -> None:
        norms = np.linalg.norm(gradients.positions, axis=1)
        self._history.append(norms)
        self.stats.iterations_observed += 1

    def _ready(self) -> bool:
        return self.stats.iterations_observed >= self.warmup_iterations

    def _scores(self, cloud: GaussianCloud) -> np.ndarray | None:
        usable = [h for h in self._history if h.shape[0] == cloud.n_total]
        if len(usable) < 2:
            return None
        stacked = np.stack(usable[-self.warmup_iterations :])
        return np.abs(np.diff(stacked, axis=0)).mean(axis=0)

    def _keep_rows(self, keep_mask: np.ndarray) -> None:
        self._history = [h[keep_mask] for h in self._history if h.shape[0] == keep_mask.shape[0]]


class LightGaussianPruner(_BaselinePruner):
    """LightGaussian-style global significance: hit count x opacity x scale volume."""

    def __init__(self, prune_ratio: float = 0.5):
        super().__init__(prune_ratio)
        self._hit_counts: np.ndarray | None = None

    def begin_frame(self, cloud: GaussianCloud, frame: Frame) -> None:
        if self._hit_counts is None or self._hit_counts.shape[0] != cloud.n_total:
            self._hit_counts = np.zeros(cloud.n_total)

    def after_backward(
        self, cloud, gradients: CloudGradients, render: RenderResult, iteration
    ) -> None:
        if self._hit_counts is None or self._hit_counts.shape[0] != cloud.n_total:
            self._hit_counts = np.zeros(cloud.n_total)
        counts = np.zeros(cloud.n_total)
        projected = render.projected
        for cache in render.tile_caches:
            per_row = (cache.weights > 0).sum(axis=0)
            np.add.at(counts, projected.indices[cache.rows], per_row)
        self._hit_counts += counts
        # The dedicated visibility-counting pass is extra work the GPU must do.
        self.stats.extra_evaluation_ops += int(render.n_fragments)
        self.stats.iterations_observed += 1

    def _scores(self, cloud: GaussianCloud) -> np.ndarray | None:
        if self._hit_counts is None:
            return None
        volume = np.prod(cloud.scales(), axis=1) ** (1.0 / 3.0)
        return self._hit_counts * cloud.opacities() * volume

    def _keep_rows(self, keep_mask: np.ndarray) -> None:
        if self._hit_counts is not None and self._hit_counts.shape[0] == keep_mask.shape[0]:
            self._hit_counts = self._hit_counts[keep_mask]


class FlashGSPruner(LightGaussianPruner):
    """FlashGS-style pruning: LightGaussian significance weighted by image saliency."""

    def __init__(self, prune_ratio: float = 0.5):
        super().__init__(prune_ratio)
        self._saliency_weight: np.ndarray | None = None

    def after_backward(self, cloud, gradients, render: RenderResult, iteration) -> None:
        super().after_backward(cloud, gradients, render, iteration)
        saliency = _image_saliency(render.image)
        weights = np.zeros(cloud.n_total)
        projected = render.projected
        for cache in render.tile_caches:
            v_idx, u_idx = cache.pixel_indices
            pixel_saliency = saliency[v_idx, u_idx]
            per_row = cache.weights.T @ pixel_saliency
            np.add.at(weights, projected.indices[cache.rows], per_row)
        if self._saliency_weight is None or self._saliency_weight.shape[0] != cloud.n_total:
            self._saliency_weight = np.zeros(cloud.n_total)
        self._saliency_weight += weights
        # Saliency-map construction is another full-image pass.
        self.stats.extra_evaluation_ops += int(render.image.size)

    def _scores(self, cloud: GaussianCloud) -> np.ndarray | None:
        base = super()._scores(cloud)
        if base is None or self._saliency_weight is None:
            return base
        return base * (1.0 + self._saliency_weight)

    def _keep_rows(self, keep_mask: np.ndarray) -> None:
        super()._keep_rows(keep_mask)
        if (
            self._saliency_weight is not None
            and self._saliency_weight.shape[0] == keep_mask.shape[0]
        ):
            self._saliency_weight = self._saliency_weight[keep_mask]


class MaskGaussianPruner(_BaselinePruner):
    """MaskGaussian-style probabilistic masking driven by opacity-scaled importance."""

    def __init__(self, prune_ratio: float = 0.5, seed: int = 0):
        super().__init__(prune_ratio)
        self._rng = np.random.default_rng(seed)
        self._importance: np.ndarray | None = None

    def begin_frame(self, cloud: GaussianCloud, frame: Frame) -> None:
        self._importance = np.zeros(cloud.n_total)

    def after_backward(self, cloud, gradients: CloudGradients, render, iteration) -> None:
        if self._importance is None or self._importance.shape[0] != cloud.n_total:
            self._importance = np.zeros(cloud.n_total)
        self._importance += np.linalg.norm(gradients.positions, axis=1)
        self.stats.iterations_observed += 1

    def _scores(self, cloud: GaussianCloud) -> np.ndarray | None:
        if self._importance is None:
            return None
        noise = self._rng.uniform(0.0, 1e-8, size=self._importance.shape)
        return self._importance * cloud.opacities() + noise

    def _keep_rows(self, keep_mask: np.ndarray) -> None:
        if self._importance is not None and self._importance.shape[0] == keep_mask.shape[0]:
            self._importance = self._importance[keep_mask]


def _image_saliency(image: np.ndarray) -> np.ndarray:
    """Cheap gradient-magnitude saliency map used by the FlashGS baseline."""
    grey = image.mean(axis=2)
    gy, gx = np.gradient(grey)
    magnitude = np.sqrt(gx**2 + gy**2)
    peak = magnitude.max()
    if peak <= 0:
        return np.zeros_like(magnitude)
    return magnitude / peak
