"""``RenderEngine``: one owned session object for the whole render surface.

The engine owns everything the free-function era threaded by hand through
~16 call sites:

* **backend selection** — resolved per call through the
  :class:`repro.engine.registry.BackendRegistry` (``EngineConfig.backend``
  pins a backend; ``None`` follows the process default so the legacy
  ``use_backend`` scoping still works);
* **the geometry cache** — one :class:`repro.gaussians.geom_cache.GeometryCache`
  built lazily from the config's ``cache_*`` knobs and handed to every
  *managed* render on a cache-capable backend;
* **the flat fragment arena** — recycled grow-only across managed batches,
  with ownership tracking: rendering a new managed batch while a previous
  one's ``RenderResult`` caches still alias the arena raises
  :class:`ArenaInUseError` instead of silently corrupting them;
* **workload snapshot emission** — :meth:`RenderEngine.snapshot` builds the
  :class:`~repro.slam.records.WorkloadSnapshot` of a render and forwards it
  to the config's ``profiling_sink``.

Managed vs unmanaged: ``managed=True`` asks the engine to supply its own
scratch state (cache or recycled arena) and to track ownership; it is the
mode the SLAM stack runs in.  ``managed=False`` reproduces the stateless
legacy free-function semantics — fresh arena, caller-supplied ``cache=`` /
``arena=`` passed through verbatim — and is what the deprecated shims use,
keeping them bit-identical to the pre-engine behaviour.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Sequence

from repro.engine.config import EngineConfig
from repro.engine.registry import (
    BackendCapabilities,
    BatchRenderRequest,
    REGISTRY,
    RenderBackend,
    RenderRequest,
)
from repro.gaussians.geom_cache import GeometryCache

if TYPE_CHECKING:
    import numpy as np

    from repro.gaussians.backward import CloudGradients
    from repro.gaussians.batch import BatchGradients, BatchRenderResult
    from repro.gaussians.camera import Camera
    from repro.gaussians.fast_raster import FlatArena
    from repro.gaussians.gaussian_model import GaussianCloud
    from repro.gaussians.geom_cache import CacheStats
    from repro.gaussians.projection import ProjectedGaussians
    from repro.gaussians.rasterizer import RenderResult
    from repro.gaussians.se3 import SE3
    from repro.gaussians.sorting import TileIntersections
    from repro.slam.records import WorkloadSnapshot


class ArenaInUseError(RuntimeError):
    """A managed render was requested while a previous one still aliases the arena."""


class RenderEngine:
    """Session object owning backend selection, cache, arena and profiling."""

    def __init__(self, config: EngineConfig | None = None):
        self.config = config if config is not None else EngineConfig.from_env()
        self._backends: dict[str, RenderBackend] = {}
        self._cache: GeometryCache | None = None
        self._arena: "FlatArena | None" = None
        # Weakrefs to the managed render/batch whose tile caches currently
        # alias the engine-owned arena (or the cache's shared arena): the
        # result object itself plus, for a batch, every per-view
        # RenderResult — a caller may keep `batch.views` alive after
        # dropping the wrapper, and those views alias the arena just the
        # same.  A new managed render must not start until the claim is
        # consumed (backward), released, or every referent is collected.
        self._outstanding: "list[weakref.ref] | None" = None
        self._outstanding_label: str = ""

    # -- backend resolution --------------------------------------------------
    def _resolve_backend_name(self, override: str | None) -> str:
        if override is not None:
            return override
        if self.config.backend is not None:
            return self.config.backend
        from repro.gaussians.rasterizer import get_default_backend

        return get_default_backend()

    def backend(self, name: str | None = None) -> RenderBackend:
        """The (cached) backend instance ``name`` resolves to for this engine."""
        resolved = self._resolve_backend_name(name)
        instance = self._backends.get(resolved)
        if instance is None:
            instance = REGISTRY.create(resolved, self.config)
            self._backends[resolved] = instance
        return instance

    @property
    def backend_name(self) -> str:
        """The backend name the engine currently resolves to by default."""
        return self._resolve_backend_name(None)

    def capabilities(self, name: str | None = None) -> BackendCapabilities:
        return self.backend(name).capabilities()

    def availability(self, name: str | None = None) -> str | None:
        """``None`` when the resolved backend can execute under this config.

        Otherwise a short machine-readable reason (``kind:detail``) naming
        what is missing — e.g. the sharded backend resolving to fewer than two
        worker processes reports ``workers:...`` with the knob and the host
        core count.  Backends opt in by exposing an ``availability()`` method;
        backends without one are always available.  This is what
        capability-aware harnesses (the scenario matrix) consult to *skip*
        a configuration with an explained reason instead of silently running
        a degraded substitute.
        """
        try:
            impl = self.backend(name)
        except ValueError as error:
            return f"unknown-backend:{error}"
        capabilities = impl.capabilities()
        if capabilities.availability is not None:
            return capabilities.availability
        # Legacy backends that predate availability-in-capabilities expose a
        # bare availability() method instead.
        probe = getattr(impl, "availability", None)
        if callable(probe):
            return probe()
        return None

    def _batch_capable(self, impl: RenderBackend, override: str | None) -> RenderBackend:
        """Resolve a batch-capable backend, mirroring the legacy contract.

        Batched rendering was flat *by design* before the engine: even under
        ``use_backend("tile")`` the batch path stayed flat.  So when the
        resolved backend lacks batch support and the caller did not name one
        explicitly, fall back to the first registered batch-capable backend;
        an explicit batch-incapable override is an error.
        """
        if impl.capabilities().batch:
            return impl
        if override is not None:
            raise ValueError(
                f"backend {override!r} does not support batched rendering"
            )
        for name in REGISTRY.names():
            candidate = self.backend(name)
            if candidate.capabilities().batch:
                return candidate
        raise ValueError("no registered rasterizer backend supports batched rendering")

    # -- owned state ---------------------------------------------------------
    @property
    def cache(self) -> GeometryCache | None:
        """The engine-owned geometry cache (``None`` when disabled by config)."""
        if not self.config.geom_cache:
            return None
        if self._cache is None:
            self._cache = GeometryCache(self.config.cache_config())
        return self._cache

    def cache_stats(self) -> "CacheStats | None":
        return self._cache.stats if self._cache is not None else None

    def invalidate_cache(self) -> None:
        """Drop every cached Step 1-2 entry (arena high-water mark is kept).

        Backends holding worker-resident mirrors of the engine cache (the
        sharded backend's per-worker caches) are told to drop theirs too, so
        densify/prune invalidation reaches every process that caches this
        engine's geometry.
        """
        if self._cache is not None:
            self._cache.clear()
            for impl in self._backends.values():
                broadcast = getattr(impl, "invalidate_worker_caches", None)
                if callable(broadcast):
                    broadcast(self._cache)

    @property
    def arena(self) -> "FlatArena | None":
        """The engine-owned recycled arena (``None`` until the first managed batch)."""
        return self._arena

    # -- ownership tracking --------------------------------------------------
    def _claim_guard(self, operation: str) -> None:
        if self._outstanding is None:
            return
        if all(ref() is None for ref in self._outstanding):
            # Every aliasing result was garbage collected: nothing can read
            # the stale caches any more, so the arena is free again.
            self._outstanding = None
            return
        raise ArenaInUseError(
            f"cannot start {operation}: the result of a previous managed "
            f"{self._outstanding_label} still aliases this engine's fragment "
            "arena and would be silently overwritten.  Consume it first "
            "(RenderEngine.backward / backward_batch) or drop it explicitly "
            "with RenderEngine.release()."
        )

    def _claim(self, result: object, label: str) -> None:
        referents = [result] + list(getattr(result, "views", ()))
        self._outstanding = [weakref.ref(referent) for referent in referents]
        self._outstanding_label = label

    def _release_if_claimed(self, result: object) -> None:
        # Only the claimed result itself (referent 0) releases the claim: a
        # backward pass over one *view* of a managed batch leaves the other
        # views' caches aliased, so the batch stays claimed until the batch
        # object is consumed or released.
        if self._outstanding is not None and self._outstanding[0]() is result:
            self._outstanding = None

    def release(self, result: object | None = None) -> None:
        """Mark a managed render/batch as consumed, freeing the arena.

        With ``result`` the release only applies if that object is the
        outstanding one (safe to call unconditionally); without arguments the
        claim is dropped regardless.
        """
        if result is None:
            self._outstanding = None
        else:
            self._release_if_claimed(result)

    # -- rendering -----------------------------------------------------------
    def render(
        self,
        cloud: "GaussianCloud",
        camera: "Camera",
        pose_cw: "SE3",
        *,
        background: "np.ndarray | None" = None,
        tile_size: int | None = None,
        subtile_size: int | None = None,
        active_only: bool = True,
        precomputed: "tuple[ProjectedGaussians, TileIntersections] | None" = None,
        backend: str | None = None,
        cache: GeometryCache | None = None,
        managed: bool = False,
    ) -> "RenderResult":
        """Render one view.

        ``managed=True`` routes the render through the engine-owned geometry
        cache (when enabled and supported by the backend) and claims arena
        ownership for it; ``cache=`` passes an external cache through
        unmanaged (the legacy shim path).  Tile/subtile sizes default to the
        engine config.
        """
        impl = self.backend(backend)
        if managed:
            if cache is not None:
                raise ValueError("pass either managed=True or an explicit cache, not both")
            if impl.capabilities().cache:
                cache = self.cache
            if cache is not None:
                self._claim_guard("render")
        request = RenderRequest(
            cloud=cloud,
            camera=camera,
            pose_cw=pose_cw,
            background=background,
            tile_size=self.config.tile_size if tile_size is None else tile_size,
            subtile_size=self.config.subtile_size if subtile_size is None else subtile_size,
            active_only=active_only,
            precomputed=precomputed,
            cache=cache,
        )
        result = impl.render(request)
        if managed and cache is not None:
            self._claim(result, "render")
        return result

    def render_batch(
        self,
        cloud: "GaussianCloud",
        cameras: "Sequence[Camera]",
        poses_cw: "Sequence[SE3]",
        backgrounds: "np.ndarray | Sequence[np.ndarray | None] | None" = None,
        *,
        tile_size: int | None = None,
        subtile_size: int | None = None,
        active_only: bool = True,
        backend: str | None = None,
        cache: GeometryCache | None = None,
        arena: "FlatArena | None" = None,
        managed: bool = True,
    ) -> "BatchRenderResult":
        """Render a multi-view batch through a batch-capable backend.

        ``managed=True`` (the default) supplies engine-owned scratch state —
        the geometry cache when enabled, else the recycled grow-only arena —
        and claims ownership until the batch is consumed by
        :meth:`backward_batch` (or :meth:`release`).  ``managed=False``
        reproduces the legacy free-function semantics with caller-supplied
        ``cache`` / ``arena`` passed through verbatim.
        """
        impl = self._batch_capable(self.backend(backend), backend)
        if managed:
            if cache is not None or arena is not None:
                raise ValueError(
                    "pass either managed=True or explicit cache/arena state, not both"
                )
            self._claim_guard("render_batch")
            if impl.capabilities().cache:
                cache = self.cache
            if cache is None:
                arena = self._arena
        request = BatchRenderRequest(
            cloud=cloud,
            cameras=cameras,
            poses_cw=poses_cw,
            backgrounds=backgrounds,
            tile_size=self.config.tile_size if tile_size is None else tile_size,
            subtile_size=self.config.subtile_size if subtile_size is None else subtile_size,
            active_only=active_only,
            arena=arena,
            cache=cache,
        )
        batch = impl.render_batch(request)
        if managed:
            # Sharded batches return arena=None (worker-owned arenas) or the
            # recycled arena untouched; only adopt a real parent-side arena.
            if cache is None and batch.arena is not None:
                self._arena = batch.arena
            self._claim(batch, "render_batch")
        return batch

    # -- speculative pipelining ----------------------------------------------
    def speculate_batch(
        self,
        cloud: "GaussianCloud",
        cameras: "Sequence[Camera]",
        poses_cw: "Sequence[SE3]",
        backgrounds: "np.ndarray | Sequence[np.ndarray | None] | None" = None,
        *,
        tile_size: int | None = None,
        subtile_size: int | None = None,
        active_only: bool = True,
        backend: str | None = None,
    ):
        """Hint that this exact batch will be rendered next; start it early.

        On a pipelining backend (``async``) this launches the identical
        deterministic render on a background thread against a backend-owned
        shadow arena — *not* the engine's live arena, so no claim is taken
        and :class:`ArenaInUseError` aliasing protection is untouched.  The
        next matching managed :meth:`render_batch` adopts the early result
        (and its arena, completing the double-buffer swap); any intervening
        cloud mutation invalidates the speculation and it is discarded.

        Returns the backend's :class:`~repro.gaussians.batch.SpeculativePlanHandle`,
        or ``None`` when the backend does not pipeline — callers may invoke
        this unconditionally.
        """
        impl = self.backend(backend)
        speculate = getattr(impl, "speculate_batch", None)
        if speculate is None:
            return None
        cache = self.cache if impl.capabilities().cache else None
        request = BatchRenderRequest(
            cloud=cloud,
            cameras=cameras,
            poses_cw=poses_cw,
            backgrounds=backgrounds,
            tile_size=self.config.tile_size if tile_size is None else tile_size,
            subtile_size=self.config.subtile_size if subtile_size is None else subtile_size,
            active_only=active_only,
            arena=None,
            cache=cache,
        )
        return speculate(request)

    def drain(self, backend: str | None = None) -> None:
        """Barrier: retire any in-flight speculative work on the backend.

        A no-op on non-pipelining backends.  After ``drain()`` the engine's
        next render is exactly the serial computation — the differential
        harness's ``async == flat`` bitwise pin holds from this point.
        """
        impl = self.backend(backend)
        drain = getattr(impl, "drain", None)
        if drain is not None:
            drain()

    # -- backward ------------------------------------------------------------
    def backward(
        self,
        result: "RenderResult",
        cloud: "GaussianCloud",
        dL_dimage: "np.ndarray",
        dL_ddepth: "np.ndarray | None" = None,
        *,
        compute_pose_gradient: bool = True,
        backend: str | None = None,
    ) -> "CloudGradients":
        """Steps 4-5 for one render; releases its arena claim when managed.

        ``backend=None`` follows the backend that produced ``result`` (the
        legacy ``render_backward`` contract), falling back to the engine's
        default for results tagged with an unregistered name.
        """
        if backend is None:
            produced_by = getattr(result, "backend", None)
            if produced_by in REGISTRY:
                backend = produced_by
        impl = self.backend(backend)
        gradients = impl.backward(result, cloud, dL_dimage, dL_ddepth, compute_pose_gradient)
        self._release_if_claimed(result)
        return gradients

    def backward_batch(
        self,
        batch: "BatchRenderResult",
        cloud: "GaussianCloud",
        dL_dimages: "Sequence[np.ndarray]",
        dL_ddepths: "Sequence[np.ndarray | None] | None" = None,
        *,
        compute_pose_gradient: bool = False,
        backend: str | None = None,
    ) -> "BatchGradients":
        """Fused Steps 4-5 for a batch; releases its arena claim when managed."""
        if backend is None and batch.views:
            produced_by = getattr(batch.views[0], "backend", None)
            if produced_by in REGISTRY:
                backend = produced_by
        impl = self._batch_capable(self.backend(backend), backend)
        gradients = impl.backward_batch(
            batch, cloud, dL_dimages, dL_ddepths, compute_pose_gradient
        )
        self._release_if_claimed(batch)
        return gradients

    # -- profiling -----------------------------------------------------------
    def snapshot(
        self,
        render: "RenderResult",
        gradients: "CloudGradients | None" = None,
        *,
        stage: str,
        frame_index: int,
        iteration: int,
        is_keyframe: bool,
        loss: float,
        n_gaussians_total: int,
        n_gaussians_active: int,
        resolution_fraction: float = 1.0,
        trace=None,
        batch_size: int = 1,
        view_index: int = 0,
        shard_workers: int = 1,
        shard_worker_id: int = 0,
        shard_seconds: float = 0.0,
        shard_stitch_seconds: float = 0.0,
        shard_plan_seconds: float = 0.0,
        plan_site: str = "parent",
        fault_events: int = 0,
        fault_retries: int = 0,
        fault_quarantines: int = 0,
        fault_escalated: bool = False,
        session_id: str = "",
        queue_wait_seconds: float = 0.0,
        service_seconds: float = 0.0,
        async_published: bool = False,
        published_epoch: int = -1,
        async_overlap_seconds: float = 0.0,
        async_mapping_seconds: float = 0.0,
    ) -> "WorkloadSnapshot":
        """Build the workload snapshot of a render and forward it to the sink."""
        from repro.slam.records import WorkloadSnapshot

        snap = WorkloadSnapshot.from_iteration(
            render,
            gradients,
            stage=stage,
            frame_index=frame_index,
            iteration=iteration,
            is_keyframe=is_keyframe,
            loss=loss,
            n_gaussians_total=n_gaussians_total,
            n_gaussians_active=n_gaussians_active,
            resolution_fraction=resolution_fraction,
            trace=trace,
            batch_size=batch_size,
            view_index=view_index,
            shard_workers=shard_workers,
            shard_worker_id=shard_worker_id,
            shard_seconds=shard_seconds,
            shard_stitch_seconds=shard_stitch_seconds,
            shard_plan_seconds=shard_plan_seconds,
            plan_site=plan_site,
            fault_events=fault_events,
            fault_retries=fault_retries,
            fault_quarantines=fault_quarantines,
            fault_escalated=fault_escalated,
            session_id=session_id,
            queue_wait_seconds=queue_wait_seconds,
            service_seconds=service_seconds,
            async_published=async_published,
            published_epoch=published_epoch,
            async_overlap_seconds=async_overlap_seconds,
            async_mapping_seconds=async_mapping_seconds,
        )
        if self.config.profiling_sink is not None:
            self.config.profiling_sink(snap)
        return snap


# -- process-default engine ---------------------------------------------------
_default_engine: RenderEngine | None = None


def default_engine() -> RenderEngine:
    """The lazily created process-default engine the deprecated shims use.

    Its config comes from :meth:`EngineConfig.from_env` but with
    ``backend=None``: ``REPRO_RASTER_BACKEND`` *seeds* the process default
    (via :func:`repro.gaussians.rasterizer.get_default_backend`) rather than
    pinning this engine, so ``use_backend`` / ``set_default_backend``
    scoping keeps overriding the environment exactly like the free
    functions did.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = RenderEngine(EngineConfig.from_env(backend=None))
    return _default_engine


def set_default_engine(engine: RenderEngine | None) -> RenderEngine | None:
    """Replace the process-default engine; returns the previous one.

    ``None`` resets to a fresh env-derived engine on next use.
    """
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous
