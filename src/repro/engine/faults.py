"""Deterministic fault injection for the sharded backend.

The self-healing dispatch loop in :mod:`repro.engine.sharded` is only
trustworthy if every failure mode it claims to survive can be produced on
demand, deterministically, in tests and in the CI chaos job.  This module is
that switchboard: a :class:`FaultPlan` names *sites* — (worker, batch
operation, optional view) coordinates — at which a shard worker should
**crash** (hard ``os._exit``), **hang** (sleep past the dispatch deadline),
run **slow** (sleep, then answer normally) or return a **poisoned**
(structurally invalid) reply.  The parent resolves the plan against each
dispatch round and ships the matching sites to the workers inside the
request payload; workers apply them blindly before touching shared memory.
Nothing here runs unless a plan is activated, so the production hot path
pays only a ``None`` check.

Plans come from three places, in precedence order:

1. :func:`set_fault_plan` / the :func:`fault_plan` context manager
   (tests, :mod:`repro.testing.differential`),
2. the ``REPRO_SHARD_FAULTS`` environment variable (CI chaos job),
3. nothing — the default.

Spec grammar (``;``-separated entries)::

    KIND@WORKER.BATCH[.VIEW][:OPT,OPT,...]
    random:SEED:RATE[:KIND+KIND+...]

``KIND`` is one of ``crash|hang|slow|poison``; ``WORKER`` and ``BATCH`` are
integers or ``*`` (any).  ``BATCH`` counts *dispatch operations* on the
backend instance (each sharded forward dispatch and each sharded backward
dispatch increments it), so ``crash@1.0`` means "worker 1 crashes on the
first sharded operation".  ``VIEW`` restricts the site to rounds where that
view index is part of the worker's assignment.  Options: ``delay=SECONDS``
(sleep length for ``slow``/``hang``), ``sticky`` (fire every time instead
of once), ``wedge`` (ignore ``SIGTERM`` first, so only ``kill()`` can stop
the worker — exercises the quarantine/close escalation),
``phase=render|backward`` (restrict to one dispatch phase).

``random`` mode seeds a per-(operation, worker) draw through
:func:`repro.utils.random.derive_seed`: with probability ``RATE`` the
worker suffers one of the listed kinds (default ``crash+slow+poison`` —
``hang`` is excluded because it costs a full deadline per firing).  The
same seed always yields the same fault schedule, which is what lets the
hypothesis property in ``tests/test_sharded.py`` assert bitwise equality
for *any* schedule.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.utils.random import derive_seed

ENV_SHARD_FAULTS = "REPRO_SHARD_FAULTS"

FAULT_KINDS = ("crash", "hang", "slow", "poison")

_DEFAULT_RANDOM_KINDS = ("crash", "slow", "poison")
_DEFAULT_SLOW_DELAY_S = 0.05


@dataclass(frozen=True)
class FaultSite:
    """One injection site: *kind* fired at (worker, batch[, view])."""

    kind: str
    worker: int | None  # None = any worker
    batch: int | None  # None = any dispatch operation
    view: int | None = None  # only when the worker's round includes this view
    delay_s: float = 0.0
    sticky: bool = False
    wedge: bool = False
    phase: str | None = None  # "render" | "backward" | None = any

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.phase not in (None, "render", "backward"):
            raise ValueError(f"unknown fault phase {self.phase!r}")
        if self.delay_s < 0:
            raise ValueError(f"fault delay must be >= 0, got {self.delay_s}")

    def matches(
        self,
        *,
        op_index: int,
        phase: str,
        worker_id: int,
        views: Sequence[int],
    ) -> bool:
        if self.phase is not None and self.phase != phase:
            return False
        if self.worker is not None and self.worker != worker_id:
            return False
        if self.batch is not None and self.batch != op_index:
            return False
        if self.view is not None and self.view not in views:
            return False
        return True

    def wire(self, key: str) -> dict:
        """The payload shipped to (and applied blindly by) the worker."""
        delay = self.delay_s
        if delay == 0.0 and self.kind == "slow":
            delay = _DEFAULT_SLOW_DELAY_S
        return {"key": key, "kind": self.kind, "delay": delay, "wedge": self.wedge}


@dataclass(frozen=True)
class FaultPlan:
    """A set of explicit sites plus an optional seeded random component."""

    sites: tuple[FaultSite, ...] = ()
    seed: int | None = None  # random mode off when None
    rate: float = 0.0
    random_kinds: tuple[str, ...] = _DEFAULT_RANDOM_KINDS

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        for kind in self.random_kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in random_kinds")

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_SHARD_FAULTS`` grammar (see module docstring)."""
        sites: list[FaultSite] = []
        seed: int | None = None
        rate = 0.0
        random_kinds = _DEFAULT_RANDOM_KINDS
        for raw_entry in text.split(";"):
            entry = raw_entry.strip()
            if not entry:
                continue
            if entry.startswith("random:"):
                parts = entry.split(":")
                if len(parts) not in (3, 4):
                    raise ValueError(
                        f"bad random fault entry {entry!r}; "
                        "expected random:SEED:RATE[:KIND+KIND]"
                    )
                seed = _parse_int(parts[1], entry)
                rate = _parse_float(parts[2], entry)
                if len(parts) == 4:
                    random_kinds = tuple(k for k in parts[3].split("+") if k)
                continue
            head, _, opts = entry.partition(":")
            kind, sep, site_txt = head.partition("@")
            if not sep:
                raise ValueError(
                    f"bad fault entry {entry!r}; expected KIND@WORKER.BATCH[.VIEW]"
                )
            coords = site_txt.split(".")
            if len(coords) not in (2, 3):
                raise ValueError(
                    f"bad fault site {site_txt!r} in {entry!r}; "
                    "expected WORKER.BATCH[.VIEW]"
                )
            worker = _parse_coord(coords[0], entry)
            batch = _parse_coord(coords[1], entry)
            view = _parse_coord(coords[2], entry) if len(coords) == 3 else None
            delay_s = 0.0
            sticky = False
            wedge = False
            phase: str | None = None
            for opt in opts.split(","):
                opt = opt.strip()
                if not opt:
                    continue
                if opt == "sticky":
                    sticky = True
                elif opt == "wedge":
                    wedge = True
                elif opt.startswith("delay="):
                    delay_s = _parse_float(opt[len("delay=") :], entry)
                elif opt.startswith("phase="):
                    phase = opt[len("phase=") :]
                else:
                    raise ValueError(f"unknown fault option {opt!r} in {entry!r}")
            sites.append(
                FaultSite(
                    kind=kind,
                    worker=worker,
                    batch=batch,
                    view=view,
                    delay_s=delay_s,
                    sticky=sticky,
                    wedge=wedge,
                    phase=phase,
                )
            )
        return cls(sites=tuple(sites), seed=seed, rate=rate, random_kinds=random_kinds)

    def sites_for(
        self,
        *,
        op_index: int,
        phase: str,
        assignment: Mapping[int, Sequence[int]],
        fired: set,
    ) -> dict[int, list[dict]]:
        """Resolve the plan for one dispatch round.

        ``assignment`` maps worker id -> the view indices it is about to
        receive.  ``fired`` is the caller-owned set of already-consumed
        (non-sticky) site keys; keys returned here are *not* added to it —
        the caller disarms sites once the round's outcome is observed, so a
        desync-aborted round does not silently eat a fault.
        Returns worker id -> wire payloads (possibly empty dict).
        """
        out: dict[int, list[dict]] = {}
        for worker_id, views in assignment.items():
            payloads: list[dict] = []
            for index, site in enumerate(self.sites):
                key = f"s{index}"
                if not site.sticky and key in fired:
                    continue
                if site.matches(
                    op_index=op_index, phase=phase, worker_id=worker_id, views=views
                ):
                    payloads.append(site.wire(key))
            if self.seed is not None and self.rate > 0.0 and self.random_kinds:
                rng = np.random.default_rng(
                    derive_seed(self.seed, op_index * 131 + worker_id + 1)
                )
                if rng.random() < self.rate:
                    kind = self.random_kinds[
                        int(rng.integers(len(self.random_kinds)))
                    ]
                    site = FaultSite(kind=kind, worker=worker_id, batch=op_index)
                    payloads.append(site.wire(f"r{op_index}.{worker_id}"))
            if payloads:
                out[worker_id] = payloads
        return out

    def sticky_keys(self) -> set:
        return {
            f"s{index}" for index, site in enumerate(self.sites) if site.sticky
        }


# ---------------------------------------------------------------------------
# Active-plan plumbing

_ACTIVE: FaultPlan | None = None
# Cache of the last env parse so active_fault_plan() stays cheap when the
# variable is set for a whole process (the CI chaos job).
_ENV_CACHE: tuple[str, FaultPlan] | None = None


def set_fault_plan(plan: FaultPlan | str | None) -> None:
    """Install ``plan`` process-wide (``None`` clears it).

    Strings are parsed with :meth:`FaultPlan.parse`.  An installed plan
    takes precedence over ``REPRO_SHARD_FAULTS``.
    """
    global _ACTIVE
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _ACTIVE = plan


@contextmanager
def fault_plan(plan: FaultPlan | str) -> Iterator[FaultPlan]:
    """Scoped :func:`set_fault_plan`; restores the previous plan on exit."""
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    previous = _ACTIVE
    set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)


def active_fault_plan() -> FaultPlan | None:
    """The plan the sharded backend should consult right now, if any."""
    global _ENV_CACHE
    if _ACTIVE is not None:
        return _ACTIVE
    raw = os.environ.get(ENV_SHARD_FAULTS)
    if not raw:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, FaultPlan.parse(raw))
    return _ENV_CACHE[1]


def _parse_int(raw: str, entry: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"bad integer {raw!r} in fault entry {entry!r}") from None


def _parse_float(raw: str, entry: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"bad number {raw!r} in fault entry {entry!r}") from None


def _parse_coord(raw: str, entry: str) -> int | None:
    if raw == "*":
        return None
    return _parse_int(raw, entry)


__all__ = [
    "ENV_SHARD_FAULTS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSite",
    "active_fault_plan",
    "fault_plan",
    "set_fault_plan",
]
