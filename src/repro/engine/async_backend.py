"""``async`` backend: double-buffered speculative planning over the sharded pool.

The mapping loop is a strict serial chain per window *k*: plan (Step 1-2) ->
rasterize (Step 3) -> backward (Step 4-5) -> optimiser update.  The fused
Step-5 backward and the parent-side bookkeeping that follows it (visibility
recording, snapshot emission, window selection) keep the parent busy while
the shard workers sit idle — yet window *k+1*'s Step 1-2 planning touches a
*disjoint* arena and could already be running on those workers.

:class:`AsyncBackend` exploits exactly that slack.  It wraps a
:class:`~repro.engine.sharded.ShardedBackend` and adds one verb:

* :meth:`speculate_batch` launches the *identical* deterministic sharded
  render of an anticipated batch on a background thread, targeting a
  backend-owned **shadow arena** (never the engine's live arena, so a claimed
  batch can never be aliased — the ``ArenaInUseError`` rail stays intact).
  The speculation is tagged with a :class:`~repro.gaussians.batch.SpeculationKey`
  capturing every pixel-relevant input, including the cloud's full mutation
  epoch state.
* :meth:`render_batch` first looks for a pending speculation whose key
  matches the request **bitwise**.  A hit waits for the thread and returns
  its result — the returned batch carries the shadow arena, the engine
  adopts it, and the engine's previous arena is recycled as the next shadow
  (classic double buffering).  A miss means the inputs changed since
  speculation (epoch bump from densify/prune/``notify_removed``, a different
  window): every pending plan is **discarded whole** — never stitched — and
  the request renders synchronously.
* :meth:`drain` is the barrier: it retires every in-flight speculation
  (statuses become ``drained``) so subsequent renders are exactly the serial
  sharded/flat computation.  The differential harness pins ``async == flat``
  bitwise after ``drain()`` on every scenario, cache on/off, under seeded
  fault schedules.

Consumed-or-discarded is the whole correctness story: a speculation is the
same pure function evaluated early, and it is only ever used when its inputs
provably did not change.  At most ``EngineConfig.async_depth`` speculations
may be in flight; exceeding the depth raises
:class:`~repro.engine.engine.ArenaInUseError` because it would require a
third live arena the engine does not own.

A single internal pool lock serialises all worker-pool traffic (speculative
forwards vs. backward passes), so pipe protocols never interleave.
Single-view renders bypass the pool entirely (the sharded backend degrades
them to the serial flat path), which is what lets a tracker thread render
concurrently with mapper speculation in the SLAM-level pipeline overlap.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.engine.registry import (
    BackendCapabilities,
    BatchRenderRequest,
    RenderRequest,
    register_backend,
)
from repro.engine.sharded import ShardedBackend
from repro.gaussians.batch import SpeculationKey, SpeculativePlanHandle

if TYPE_CHECKING:
    from repro.engine.config import EngineConfig
    from repro.gaussians.batch import BatchGradients, BatchRenderResult, RenderPlan
    from repro.gaussians.gaussian_model import GaussianCloud
    from repro.gaussians.geom_cache import GeometryCache
    from repro.gaussians.rasterizer import RenderResult


class _Speculation:
    """One in-flight speculative render: thread + result slot + bookkeeping."""

    def __init__(self, handle: SpeculativePlanHandle, request: BatchRenderRequest):
        self.handle = handle
        self.request = request
        self.batch: "BatchRenderResult | None" = None
        self.error: BaseException | None = None
        self.cancelled = False
        self.thread: threading.Thread | None = None


def _speculation_key(request: BatchRenderRequest) -> SpeculationKey:
    return SpeculationKey.from_batch_inputs(
        request.cloud,
        request.cameras,
        request.poses_cw,
        request.backgrounds,
        tile_size=request.tile_size,
        subtile_size=request.subtile_size,
        active_only=request.active_only,
        cache=request.cache,
    )


class AsyncBackend:
    """Speculative double-buffered execution over the sharded worker pool.

    Everything renders through an inner :class:`ShardedBackend`; this class
    only decides *when* (speculatively, on a background thread, into a shadow
    arena) and *whether the early result is still valid* (SpeculationKey
    match, else discard).  Outputs are therefore bitwise-identical to the
    serial sharded backend — which is itself bitwise-pinned to ``flat``.
    """

    name = "async"

    def __init__(self, config: "EngineConfig"):
        self.config = config
        self._inner = ShardedBackend(config)
        self.depth = max(1, int(getattr(config, "async_depth", 1)))
        # _state guards the pending list / spare arenas; _pool serialises all
        # traffic over the inner backend's worker pipes (a speculation thread
        # dispatching concurrently with a backward pass would interleave
        # protocols).  Lock order: _state is never held while taking _pool.
        self._state = threading.Lock()
        self._pool = threading.Lock()
        self._pending: list[_Speculation] = []
        # Arenas recycled out of consumed double-buffer swaps, reused as the
        # next speculations' shadow arenas (grow-only, so they converge to
        # the high-water fragment count just like the engine's own arena).
        self._spare_arenas: list = []
        self.stats = {"speculated": 0, "consumed": 0, "discarded": 0, "drained": 0}

    # -- capabilities / sizing ----------------------------------------------
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            batch=True,
            cache=True,
            distributed_planning=True,
            worker_resident_cache=True,
            reference=False,
            description=(
                "double-buffered speculative planning over the sharded pool "
                "(repro.engine.async_backend)"
            ),
            availability=self.availability(),
        )

    def resolved_workers(self) -> int:
        return self._inner.resolved_workers()

    def availability(self) -> str | None:
        """Pipelining needs a real pool; inherit the sharded gating verbatim."""
        return self._inner.availability()

    # -- speculation ----------------------------------------------------------
    def speculate_batch(self, request: BatchRenderRequest) -> SpeculativePlanHandle:
        """Start rendering ``request`` on a background thread, into a shadow arena.

        Returns a :class:`SpeculativePlanHandle` whose key must still match
        at the next :meth:`render_batch` for the early result to be adopted.
        Speculating the same key twice is an idempotent no-op (the existing
        handle is returned).  Exceeding ``async_depth`` in-flight speculations
        raises :class:`ArenaInUseError`: each slot owns a live arena, and the
        engine only double-buffers — it does not own unbounded arenas.
        """
        from repro.engine.engine import ArenaInUseError

        key = _speculation_key(request)
        with self._state:
            for speculation in self._pending:
                if speculation.handle.key == key and speculation.handle.pending:
                    return speculation.handle
            if len(self._pending) >= self.depth:
                raise ArenaInUseError(
                    f"async backend already has {len(self._pending)} speculative "
                    f"plan(s) in flight (async_depth={self.depth}); consume or "
                    "drain() before speculating further — each slot aliases a "
                    "live shadow arena"
                )
            shadow = self._spare_arenas.pop() if self._spare_arenas else None
            speculation = _Speculation(
                SpeculativePlanHandle(key=key), replace(request, arena=shadow)
            )
            speculation.thread = threading.Thread(
                target=self._run_speculation,
                args=(speculation,),
                name="repro-async-speculate",
                daemon=True,
            )
            self._pending.append(speculation)
            self.stats["speculated"] += 1
        speculation.thread.start()
        return speculation.handle

    def _run_speculation(self, speculation: _Speculation) -> None:
        try:
            with self._pool:
                if speculation.cancelled:
                    return
                speculation.batch = self._inner.render_batch(speculation.request)
        except BaseException as error:  # surfaced on consume, dropped on discard
            speculation.error = error

    def _retire(self, speculations: list[_Speculation], status: str) -> None:
        """Join finished/cancelled speculations and recycle their arenas."""
        for speculation in speculations:
            speculation.cancelled = True
            if speculation.thread is not None:
                speculation.thread.join()
            speculation.handle.status = status
            self.stats[status] += 1
            arena = speculation.request.arena
            if arena is not None:
                with self._state:
                    self._spare_arenas.append(arena)

    def drain(self) -> None:
        """Barrier: wait out and retire every in-flight speculation.

        After ``drain()`` the backend holds no speculative state — the next
        render is exactly the serial sharded computation, which is what the
        differential harness's bitwise pin relies on.
        """
        with self._state:
            pending, self._pending = self._pending, []
        self._retire(pending, "drained")

    def _discard_pending(self) -> None:
        with self._state:
            pending, self._pending = self._pending, []
        self._retire(pending, "discarded")

    # -- forward -------------------------------------------------------------
    def render(self, request: RenderRequest) -> "RenderResult":
        # Single views run the serial flat path (no pool traffic), so they
        # deliberately do NOT take the pool lock: a tracker thread can render
        # while a speculation is mid-flight on the workers.
        return self._inner.render(request)

    def plan_batch(self, request: BatchRenderRequest) -> "RenderPlan":
        return self._inner.plan_batch(request)

    def execute_units(
        self, plan: "RenderPlan", request: BatchRenderRequest
    ) -> "BatchRenderResult":
        return self._inner.execute_units(plan, request)

    def render_batch(self, request: BatchRenderRequest) -> "BatchRenderResult":
        key = _speculation_key(request)
        match: _Speculation | None = None
        with self._state:
            for index, speculation in enumerate(self._pending):
                if speculation.handle.key == key:
                    match = self._pending.pop(index)
                    break
        if match is not None:
            assert match.thread is not None
            match.thread.join()
            if match.error is not None:
                match.handle.status = "discarded"
                self.stats["discarded"] += 1
                raise match.error
            if match.batch is None:  # cancelled before it ran: render for real
                match.handle.status = "discarded"
                self.stats["discarded"] += 1
            else:
                match.handle.status = "consumed"
                self.stats["consumed"] += 1
                batch = match.batch
                # Double-buffer swap: the consumed batch carries the shadow
                # arena (the engine will adopt it); the arena the caller sent
                # with this request is free again and becomes the next shadow.
                if (
                    request.arena is not None
                    and batch.arena is not None
                    and batch.arena is not request.arena
                ):
                    with self._state:
                        self._spare_arenas.append(request.arena)
                return batch
        else:
            # The inputs moved on (epoch bump, different window): every
            # pending plan is stale.  Discard whole — never stitch.
            self._discard_pending()
        with self._pool:
            return self._inner.render_batch(request)

    # -- backward ------------------------------------------------------------
    def backward(self, result, cloud, dL_dimage, dL_ddepth=None, compute_pose_gradient=False):
        with self._pool:
            return self._inner.backward(
                result, cloud, dL_dimage, dL_ddepth, compute_pose_gradient
            )

    def backward_batch(
        self,
        batch: "BatchRenderResult",
        cloud: "GaussianCloud",
        dL_dimages,
        dL_ddepths=None,
        compute_pose_gradient: bool = False,
    ) -> "BatchGradients":
        with self._pool:
            return self._inner.backward_batch(
                batch, cloud, dL_dimages, dL_ddepths, compute_pose_gradient
            )

    # -- cache invalidation ---------------------------------------------------
    def invalidate_worker_caches(self, cache: "GeometryCache | None" = None) -> None:
        """Discard in-flight speculation (its epochs are stale by definition)
        and forward the invalidation broadcast to the worker-resident caches."""
        self._discard_pending()
        with self._pool:
            self._inner.invalidate_worker_caches(cache)


register_backend("async", AsyncBackend)
"""``async``: speculative double-buffered pipelining of mapping windows.

Registered like every other strategy — call sites select it with
``EngineConfig(backend="async")`` / ``REPRO_RASTER_BACKEND=async`` and change
nothing else.  Callers that never call :meth:`AsyncBackend.speculate_batch`
get plain sharded behaviour (every render is a key miss on an empty pending
list); callers that do — the :class:`~repro.slam.mapping.StreamingMapper`
speculates window *k+1* right after window *k*'s optimiser update — overlap
the parent's Step-5 backward and bookkeeping with the workers' Step 1-2
planning of the next window.
"""
