"""Built-in backends: the flat fragment-list fast path and the tile reference.

Both are thin strategy wrappers over the existing rasterizer internals —
``rasterize_flat`` / ``rasterize_batch_views`` and ``rasterize_tile`` — so an
engine-mediated render is the *same code path* as the legacy free functions
and stays bit-identical (pinned by ``DifferentialRunner.verify_engine``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.engine.registry import (
    BackendCapabilities,
    BatchRenderRequest,
    RenderRequest,
    register_backend,
)
from repro.gaussians.backward import preprocess_backward, rasterize_backward
from repro.gaussians.batch import (
    execute_plan,
    plan_batch_views,
    render_backward_batch_views,
)
from repro.gaussians.fast_raster import rasterize_flat
from repro.gaussians.rasterizer import rasterize_tile

if TYPE_CHECKING:
    import numpy as np

    from repro.engine.config import EngineConfig
    from repro.gaussians.backward import CloudGradients
    from repro.gaussians.batch import BatchGradients, BatchRenderResult, RenderPlan
    from repro.gaussians.gaussian_model import GaussianCloud
    from repro.gaussians.rasterizer import RenderResult


def _render_backward_core(
    backend: str,
    result: "RenderResult",
    cloud: "GaussianCloud",
    dL_dimage: "np.ndarray",
    dL_ddepth: "np.ndarray | None",
    compute_pose_gradient: bool,
) -> "CloudGradients":
    """Steps 4-5 over one render, shared by both built-in backends."""
    screen = rasterize_backward(result, dL_dimage, dL_ddepth, backend=backend)
    return preprocess_backward(screen, cloud, compute_pose_gradient=compute_pose_gradient)


class FlatBackend:
    """Flat fragment-list backend: the production default.

    Supports batched rendering (one arena for all views, shared per-Gaussian
    preprocessing, fused Step-5 backward) and the Step 1-2 geometry cache.
    """

    name = "flat"

    def __init__(self, config: "EngineConfig"):
        self.config = config

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            batch=True,
            cache=True,
            reference=False,
            description="flat fragment-list fast path (repro.gaussians.fast_raster)",
        )

    def render(self, request: RenderRequest) -> "RenderResult":
        # rasterize_flat owns the cache-vs-precomputed dispatch.
        return rasterize_flat(
            request.cloud,
            request.camera,
            request.pose_cw,
            background=request.background,
            tile_size=request.tile_size,
            subtile_size=request.subtile_size,
            active_only=request.active_only,
            precomputed=request.precomputed,
            cache=request.cache,
        )

    def render_batch(self, request: BatchRenderRequest) -> "BatchRenderResult":
        # The canonical plan/execute composition of the RenderBackend seam.
        return self.execute_units(self.plan_batch(request), request)

    def plan_batch(self, request: BatchRenderRequest) -> "RenderPlan":
        return plan_batch_views(
            request.cloud,
            request.cameras,
            request.poses_cw,
            backgrounds=request.backgrounds,
            tile_size=request.tile_size,
            subtile_size=request.subtile_size,
            active_only=request.active_only,
            cache=request.cache,
        )

    def execute_units(
        self, plan: "RenderPlan", request: BatchRenderRequest
    ) -> "BatchRenderResult":
        return execute_plan(plan, arena=request.arena)

    def backward(
        self,
        result: "RenderResult",
        cloud: "GaussianCloud",
        dL_dimage: "np.ndarray",
        dL_ddepth: "np.ndarray | None",
        compute_pose_gradient: bool,
    ) -> "CloudGradients":
        return _render_backward_core(
            "flat", result, cloud, dL_dimage, dL_ddepth, compute_pose_gradient
        )

    def backward_batch(
        self,
        batch: "BatchRenderResult",
        cloud: "GaussianCloud",
        dL_dimages: "Sequence[np.ndarray]",
        dL_ddepths: "Sequence[np.ndarray | None] | None",
        compute_pose_gradient: bool,
    ) -> "BatchGradients":
        return render_backward_batch_views(
            batch,
            cloud,
            dL_dimages,
            dL_ddepths,
            compute_pose_gradient=compute_pose_gradient,
        )


class TileBackend:
    """Reference per-tile loop: bit-exact source of truth for the goldens.

    Single-view only, and — matching its legacy contract — it ignores the
    geometry cache (requests carrying one render uncached).
    """

    name = "tile"

    def __init__(self, config: "EngineConfig"):
        self.config = config

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            batch=False,
            cache=False,
            reference=True,
            description="reference per-tile loop (repro.gaussians.rasterizer)",
        )

    def render(self, request: RenderRequest) -> "RenderResult":
        return rasterize_tile(
            request.cloud,
            request.camera,
            request.pose_cw,
            background=request.background,
            tile_size=request.tile_size,
            subtile_size=request.subtile_size,
            active_only=request.active_only,
            precomputed=request.precomputed,
        )

    def render_batch(self, request: BatchRenderRequest) -> "BatchRenderResult":
        raise NotImplementedError(
            "the tile reference backend does not support batched rendering"
        )

    def plan_batch(self, request: BatchRenderRequest) -> "RenderPlan":
        raise NotImplementedError(
            "the tile reference backend does not support batched rendering"
        )

    def execute_units(
        self, plan: "RenderPlan", request: BatchRenderRequest
    ) -> "BatchRenderResult":
        raise NotImplementedError(
            "the tile reference backend does not support batched rendering"
        )

    def backward(
        self,
        result: "RenderResult",
        cloud: "GaussianCloud",
        dL_dimage: "np.ndarray",
        dL_ddepth: "np.ndarray | None",
        compute_pose_gradient: bool,
    ) -> "CloudGradients":
        return _render_backward_core(
            "tile", result, cloud, dL_dimage, dL_ddepth, compute_pose_gradient
        )

    def backward_batch(
        self,
        batch: "BatchRenderResult",
        cloud: "GaussianCloud",
        dL_dimages: "Sequence[np.ndarray]",
        dL_ddepths: "Sequence[np.ndarray | None] | None",
        compute_pose_gradient: bool,
    ) -> "BatchGradients":
        raise NotImplementedError(
            "the tile reference backend does not support batched rendering"
        )


# "flat" first: it is the production default and the backend batch requests
# fall back to when the resolved backend has no batch support.
register_backend("flat", FlatBackend)
register_backend("tile", TileBackend)
