"""``sharded``: multi-process, worker-planned execution of batched renders.

The mapping workload is embarrassingly parallel across the views of a
keyframe window.  Earlier revisions of this backend planned every view's
Step 1-2 (projection, tiling, fragment build) in the parent and shipped the
finished work units to a worker pool; planning is now *worker-resident*: the
parent computes only the view-independent Step 1 half
(:func:`~repro.gaussians.projection.shared_preprocess`) and each worker runs
its views' projection, tile assignment, sorting and fragment build itself —
optionally through a worker-resident
:class:`~repro.gaussians.geom_cache.GeometryCache`, which is what lets the
sharded backend and the geometry cache compose on one render.

Execution model
---------------

* **Pool** — a lazily started, spawn-safe pool of ``shard_workers``
  processes (``EngineConfig(shard_workers=N)`` / ``REPRO_SHARD_WORKERS``;
  unset sizes it from ``os.cpu_count()``).  Pools are shared process-wide per
  worker count, each worker seeded deterministically via
  :func:`repro.utils.random.derive_seed` so sharded runs are reproducible
  regardless of scheduling order.  Worker BLAS pools are pinned to one
  thread at spawn so shards do not oversubscribe the cores they were created
  to use.
* **Forward** — the parent packs the shared per-Gaussian Step 1 arrays (when
  any worker will need to rebuild) plus per-view camera/pose metadata and
  per-view output reservations into one :mod:`multiprocessing.shared_memory`
  block; workers plan and rasterize their views, write the forward outputs
  (image, depth, alpha, fragment counts) into the block and reply with the
  small per-view planning products the parent-side bookkeeping needs
  (visible-row indices, intersection pair counts, cache statuses, timings).
  The parent stitches per-view
  :class:`~repro.gaussians.rasterizer.RenderResult` objects in view order,
  attaching per-shard attribution with ``plan_site="worker"``
  (:class:`~repro.gaussians.batch.ShardAttribution`).
* **Worker-resident geometry cache** — when the request carries a
  :class:`GeometryCache`, each worker holds its own cache (one per parent
  cache, addressed by a namespace id) keyed by the *same*
  :class:`GaussianCloud` mutation epochs; the parent ships the epoch scalars
  and the full-cloud appearance arrays every batch (appearance splicing on
  the refresh tier needs them) and the shared Step 1 arrays only when its
  **classification mirror** — per-(worker, view-key)
  :class:`~repro.gaussians.geom_cache.EntryMeta` records running the same
  :func:`~repro.gaussians.geom_cache.classify_reuse` decision the workers
  run — predicts at least one miss.  A worker that must rebuild without the
  shared payload (mirror desync: a replaced pool, reassigned views) replies
  with a ``desync`` marker and the parent retries once with the full
  payload.  :meth:`ShardedBackend.invalidate_worker_caches` broadcasts
  cache invalidation (densify / prune / ``notify_removed``) to every live
  pool — epoch keying already makes stale entries unservable; the broadcast
  eagerly frees their memory and keeps the mirror honest.
* **Backward** — each worker retains the per-fragment tile caches of the
  views it rendered, so Step 4 *Rendering BP* runs in parallel where the
  data already lives; workers return screen-space gradients and fill
  parent-reserved shared-memory regions with the heavy projection
  intermediates (camera-frame points, Jacobians, 3D covariances, conics,
  opacities) that the parent's one fused Step 5 pass
  (:func:`~repro.gaussians.backward.preprocess_backward_batch`) reads.
* **Degradation** — ``workers <= 1``, single-view batches and platforms
  whose spawn fails all fall back to the serial flat execution of the same
  request (cache included, served by the parent-resident cache).
* **Fault tolerance** — a dispatched batch *always completes*.  Each
  dispatch round waits ``shard_deadline_s + round * shard_backoff_s``
  (:class:`~repro.engine.config.EngineConfig` /
  ``REPRO_SHARD_DEADLINE_S``/``REPRO_SHARD_BACKOFF_S``) for replies; a
  worker that dies, times out, or returns a structurally invalid
  ("poisoned") reply is **quarantined** (killed, pipe closed) and its views
  are **redispatched** to the surviving workers under a fresh token, with
  dead slots respawned between rounds (each respawn bumps the slot's
  *epoch*, which purges the parent's classification-mirror entries for that
  worker so a rebuilt worker is never predicted to hold geometry it lost).
  After ``shard_retry_limit`` redispatch rounds (``REPRO_SHARD_RETRIES``) —
  or when no live worker remains — the unfinished views **escalate to
  serial flat execution in the parent**, which runs the exact plan+raster
  sequence a worker would have run, so the stitched batch is bitwise
  identical to an all-healthy run (cached batches served through exact-tier
  cache configs included; toleranced tiers degrade lost views to a rebuild,
  which is *more* accurate, not less).  Every retry, quarantine, respawn
  and escalation is recorded on
  :attr:`~repro.gaussians.batch.ShardAttribution.fault_events` and flows
  into :class:`~repro.slam.records.WorkloadSnapshot` ``fault_*`` fields.
  A worker-*reported* error (an ``("error", traceback)`` reply from a
  healthy worker) is not a fault: render errors re-raise from the parent's
  serial re-execution of those views, and backward errors (e.g. a
  legitimately superseded batch) raise :class:`ShardWorkerError` with the
  worker traceback.  Deterministic fault injection for all of the above
  lives in :mod:`repro.engine.faults` (``REPRO_SHARD_FAULTS``).
* **Backward under faults** — a view whose owning worker was quarantined,
  respawned (epoch mismatch) or had its retained batch superseded by an
  in-batch redispatch recomputes its backward pass in the parent
  (re-deriving the worker's exact tile caches from the cloud, which is
  unchanged between forward and backward in every engine consumer), again
  bitwise-identical to the worker result.

Sharded per-view results carry no parent-side tile caches or per-tile lists
(those are worker-resident); their backward pass must run through the
engine/backend that produced them, which routes it to the owning worker.
"""

from __future__ import annotations

import atexit
import itertools
import os
import time
import traceback
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.engine.faults import active_fault_plan
from repro.engine.registry import (
    BackendCapabilities,
    BatchRenderRequest,
    RenderRequest,
    register_backend,
)
from repro.gaussians.backward import preprocess_backward, preprocess_backward_batch
from repro.gaussians.batch import (
    BatchGradients,
    BatchRenderResult,
    RenderPlan,
    ShardAttribution,
    _normalise_backgrounds,
    execute_plan,
    plan_batch_views,
    render_backward_batch_views,
)
from repro.gaussians.fast_raster import rasterize_flat
from repro.gaussians.geom_cache import classify_reuse, view_key
from repro.gaussians.projection import (
    ProjectedGaussians,
    SharedGaussianData,
    shared_preprocess,
)
from repro.gaussians.sorting import TileIntersections
from repro.gaussians.tiling import TileGrid
from repro.utils.random import derive_seed

if TYPE_CHECKING:
    from repro.engine.config import EngineConfig
    from repro.gaussians.backward import CloudGradients, ScreenSpaceGradients
    from repro.gaussians.gaussian_model import GaussianCloud
    from repro.gaussians.geom_cache import EntryMeta, GeometryCache
    from repro.gaussians.rasterizer import RenderResult

# Pool sizing/behaviour knobs.  The default worker count is cpu-count aware
# but capped: mapping windows rarely exceed a handful of views, so more
# workers than views only cost spawn time and memory.
DEFAULT_MAX_WORKERS = 8
_READY_TIMEOUT_S = 120.0
_REQUEST_TIMEOUT_S = 600.0
# Worker-retained uncached batches (each holds its views' tile caches).  Two
# tolerates an interleaved second engine without letting a long run
# accumulate arenas.  Cached batches are retained per namespace instead: a
# new cached render of a namespace supersedes (and drops) its predecessor,
# whose tile caches alias the same worker-cache arena.
_MAX_RETAINED_BATCHES = 2
_SHM_ALIGN = 64

_TOKENS = itertools.count(1)
# Namespace ids link one parent GeometryCache to its worker-resident
# counterparts; assigned lazily, the first time a cache rides a sharded batch.
_NAMESPACE_IDS = itertools.count(1)

#: Shared Step 1 arrays shipped parent -> worker when any view must rebuild.
_SHARED_FIELDS = ("indices", "positions", "cov3d", "opacities", "colors")
#: Heavy per-view projection intermediates shipped worker -> parent at
#: backward time (everything Step 5 reads beyond what the parent already
#: holds), keyed to the trailing shape after the visible-row dimension.
_BACKWARD_PROJECTED_FIELDS = (
    ("points_cam", (3,)),
    ("jacobians", (2, 3)),
    ("cov3d", (3, 3)),
    ("conics", (2, 2)),
    ("opacities", ()),
)


class ShardWorkerError(RuntimeError):
    """A shard worker died, timed out, or reported an error mid-request."""


class ShardPoolLostError(ShardWorkerError):
    """Every worker slot is gone and could not be respawned.

    Internal control flow: :meth:`ShardedBackend.render_batch` catches it
    and completes the batch on the serial flat path, so callers never see
    it for plain worker faults.
    """


@dataclass(frozen=True)
class WorkerFault:
    """One observed worker failure during a :meth:`ShardedPool.gather`."""

    kind: str  # "died" | "timeout" | "send-failed" | "error"
    worker_id: int
    detail: str


class _WorkerGone(Exception):
    """Internal: transport-level loss of one worker (died / timeout / EOF)."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


# -- shared-memory packing ----------------------------------------------------
class _ShmLayout:
    """Builds one shared-memory block from copied-in arrays and reservations."""

    def __init__(self) -> None:
        self.size = 0
        self._pending: list[tuple[int, np.ndarray]] = []

    def reserve(self, shape: tuple[int, ...], dtype) -> tuple[int, str, tuple[int, ...]]:
        """Reserve an aligned region; returns its (offset, dtype, shape) spec."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        offset = self.size
        self.size += -(-nbytes // _SHM_ALIGN) * _SHM_ALIGN
        return (offset, dtype.str, tuple(int(dim) for dim in shape))

    def add(self, array: np.ndarray) -> tuple[int, str, tuple[int, ...]]:
        """Schedule ``array`` to be copied into the block; returns its spec."""
        array = np.ascontiguousarray(array)
        spec = self.reserve(array.shape, array.dtype)
        self._pending.append((spec[0], array))
        return spec

    def create(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(self.size, 1))
        for offset, array in self._pending:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset)
            view[...] = array
            del view
        self._pending.clear()
        return shm


def _shm_view(shm, spec: tuple[int, str, tuple[int, ...]]) -> np.ndarray:
    offset, dtype, shape = spec
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)


def _attach_shm(name: str):
    """Attach to an existing block without registering with the tracker.

    The parent owns every block's lifetime (it created and will unlink it);
    before 3.13 (``track=False``) a child attach also registers with the
    *shared* resource tracker, whose duplicate-unregister complaints are pure
    noise — suppress the registration instead.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


# -- parent-side stand-ins for worker-resident planning products ---------------
def _stitched_projection(indices: np.ndarray, camera, pose_cw) -> ProjectedGaussians:
    """Parent-side stand-in for a worker-resident projection.

    Carries the real visible-row ``indices`` (visibility recording and
    ``n_visible`` accounting read them) and the view's camera/pose; the heavy
    per-row intermediates stay in the worker and are swapped in by the
    backward pass before the fused Step 5 runs.
    """
    return ProjectedGaussians(
        indices=np.asarray(indices),
        means2d=np.zeros((0, 2)),
        depths=np.zeros(0),
        cov2d=np.zeros((0, 2, 2)),
        conics=np.zeros((0, 2, 2)),
        radii=np.zeros(0),
        colors=np.zeros((0, 3)),
        opacities=np.zeros(0),
        points_cam=np.zeros((0, 3)),
        jacobians=np.zeros((0, 2, 3)),
        cov3d=np.zeros((0, 3, 3)),
        rotation_cw=pose_cw.rotation,
        camera=camera,
        pose_cw=pose_cw,
    )


class _StitchedIntersections(TileIntersections):
    """Intersections of a worker-planned view, seen from the parent.

    The per-tile lists are worker-resident, but the worker reports the true
    pair count so workload snapshots (which read ``n_pairs``) stay faithful.
    """

    def __init__(self, grid: TileGrid, projected: ProjectedGaussians, n_pairs: int):
        super().__init__(grid=grid, per_tile=[], projected=projected)
        self._n_pairs = int(n_pairs)

    @property
    def n_pairs(self) -> int:
        return self._n_pairs


def _cache_namespace(cache) -> int:
    """The worker-side namespace id of ``cache``, assigned on first use."""
    namespace = getattr(cache, "_shard_namespace", None)
    if namespace is None:
        namespace = next(_NAMESPACE_IDS)
        cache._shard_namespace = namespace
    return namespace


# -- worker process ------------------------------------------------------------
class _WorkerCloudView:
    """Duck-typed stand-in for :class:`GaussianCloud` inside shard workers.

    Carries exactly what the geometry cache reads when planning/building with
    donated shared preprocessing: the mutation-epoch scalars classification
    keys on, plus the full-cloud colours and post-sigmoid opacities that
    appearance splicing gathers on the refresh tier.  Projection geometry
    never touches it (``project_gaussians`` reads only the donated shared
    arrays).
    """

    def __init__(self, meta: dict, colors: np.ndarray, opacities: np.ndarray):
        self.uid = meta["uid"]
        self.epoch = meta["epoch"]
        self.structure_epoch = meta["structure_epoch"]
        self.unbounded_epoch = meta["unbounded_epoch"]
        self.cum_position_delta = meta["cum_position_delta"]
        self.cum_log_scale_delta = meta["cum_log_scale_delta"]
        self.cum_opacity_delta = meta["cum_opacity_delta"]
        self.colors = colors
        self._opacities = opacities

    def opacities(self, rows: np.ndarray | None = None) -> np.ndarray:
        if rows is None:
            return np.array(self._opacities)
        return self._opacities[rows]


class _WorkerContext:
    """Per-worker persistent state: retained batches, arenas, geometry caches.

    Uncached batches rotate over ``_MAX_RETAINED_BATCHES`` grow-only arena
    slots (the worker-side mirror of the parent's ``ensure_flat_arena``
    recycling); the batch occupying a slot is dropped before its arena is
    reused.  Cached batches render into their namespace's worker-resident
    :class:`GeometryCache` arena instead, so a new cached batch of a
    namespace drops that namespace's previous retained batch (whose tile
    caches alias the same arena) rather than consuming a slot.
    """

    def __init__(self) -> None:
        # token -> {"results": {index: RenderResult}, "slot": int | None,
        #           "namespace": int | None}
        self.batches: OrderedDict = OrderedDict()
        self.arenas: dict[int, object] = {}  # slot -> FlatArena
        self.caches: dict[int, object] = {}  # namespace -> GeometryCache
        self.render_count = 0


def _write_view_outputs(shm, outputs: dict, result) -> None:
    _shm_view(shm, outputs["image"])[...] = result.image
    _shm_view(shm, outputs["depth"])[...] = result.depth
    _shm_view(shm, outputs["alpha"])[...] = result.alpha
    _shm_view(shm, outputs["fragments_per_pixel"])[...] = result.fragments_per_pixel


def _worker_render_batch(ctx: _WorkerContext, token: int, shm, batch: dict) -> dict:
    """Plan (Step 1-2) and rasterize this worker's views of one batch."""
    from repro.gaussians.fast_raster import (
        build_flat_fragments,
        ensure_flat_arena,
        rasterize_flat_into,
    )
    from repro.gaussians.geom_cache import GeometryCache, entry_meta
    from repro.gaussians.projection import project_gaussians
    from repro.gaussians.sorting import build_tile_lists

    namespace = batch["namespace"]
    active_only = batch["active_only"]
    views = batch["views"]
    shared = None
    if batch["shared"] is not None:
        shared = SharedGaussianData(
            **{name: _shm_view(shm, batch["shared"][name]) for name in _SHARED_FIELDS}
        )

    view_replies: list[dict] = []
    results: dict[int, object] = {}

    if namespace is None:
        if shared is None:
            raise RuntimeError(
                "uncached sharded batch arrived without shared preprocessing data"
            )
        slot = ctx.render_count % _MAX_RETAINED_BATCHES
        ctx.render_count += 1
        for stale_token, entry in list(ctx.batches.items()):
            if entry["namespace"] is None and entry["slot"] == slot:
                _worker_drop_batch(ctx, stale_token)
        planned = []
        total = 0
        for meta in views:
            start = time.perf_counter()
            # ``project_gaussians`` reads nothing from the cloud once shared
            # data is donated, so no cloud object crosses the process line.
            projected = project_gaussians(
                None, meta["camera"], meta["pose_cw"], active_only=active_only, shared=shared
            )
            grid = TileGrid(
                meta["camera"].width,
                meta["camera"].height,
                meta["tile_size"],
                meta["subtile_size"],
            )
            intersections = build_tile_lists(projected, grid)
            fragments = build_flat_fragments(intersections)
            planned.append((projected, intersections, fragments, time.perf_counter() - start))
            total += fragments.n_fragments
        arena = ensure_flat_arena(ctx.arenas.get(slot), total)
        ctx.arenas[slot] = arena
        base = 0
        for meta, (projected, intersections, fragments, plan_seconds) in zip(views, planned):
            start = time.perf_counter()
            result = rasterize_flat_into(
                projected, intersections, fragments, meta["background"], arena, base
            )
            base += fragments.n_fragments
            _write_view_outputs(shm, meta["outputs"], result)
            results[meta["index"]] = result
            view_replies.append(
                {
                    "index": meta["index"],
                    "indices": projected.indices,
                    "n_pairs": int(intersections.n_pairs),
                    "plan_seconds": plan_seconds,
                    "raster_seconds": time.perf_counter() - start,
                    "cache_status": "uncached",
                    "meta": None,
                }
            )
        ctx.batches[token] = {"results": results, "slot": slot, "namespace": None}
        return {"views": view_replies, "evicted": [], "truncation_fallbacks": 0}

    # Cached path: plan/build/render through this namespace's worker-resident
    # cache.  The previous retained batch of the namespace aliases the cache
    # arena this render writes, so it is dropped first.
    for stale_token, entry in list(ctx.batches.items()):
        if entry["namespace"] == namespace:
            _worker_drop_batch(ctx, stale_token)
    cache = ctx.caches.get(namespace)
    if cache is None or cache.config != batch["cache_config"]:
        cache = GeometryCache(batch["cache_config"])
        ctx.caches[namespace] = cache
    cloud = _WorkerCloudView(
        batch["cloud_meta"],
        colors=_shm_view(shm, batch["appearance"]["colors"]),
        opacities=_shm_view(shm, batch["appearance"]["opacities"]),
    )
    known_keys = cache.entry_keys()
    plans = []
    for meta in views:
        start = time.perf_counter()
        plan = cache.plan_view(
            cloud,
            meta["camera"],
            meta["pose_cw"],
            meta["tile_size"],
            meta["subtile_size"],
            active_only,
        )
        if plan.status == "miss":
            if shared is None:
                # The parent's mirror predicted pure reuse and withheld the
                # shared Step 1 payload; report the desync (a structured
                # reply, not an error — the pool stays healthy) so it
                # resends with the full payload.
                return {"desync": [meta["index"]]}
            cache.build_view(
                plan,
                cloud,
                meta["camera"],
                meta["pose_cw"],
                meta["tile_size"],
                meta["subtile_size"],
                active_only,
                shared=shared,
            )
        # Capture the fragment schedule now: rendering refines entries in
        # place, and the cumulative bases must match this snapshot.
        plans.append((plan, plan.fragments_used, time.perf_counter() - start))
    total = sum(fragments.n_fragments for _, fragments, _ in plans)
    arena = cache.ensure_arena(total)
    truncation_before = cache.stats.truncation_fallbacks
    base = 0
    for meta, (plan, fragments, plan_seconds) in zip(views, plans):
        start = time.perf_counter()
        result = cache.render_view(plan, meta["background"], arena, base)
        base += fragments.n_fragments
        _write_view_outputs(shm, meta["outputs"], result)
        results[meta["index"]] = result
        view_replies.append(
            {
                "index": meta["index"],
                "indices": result.projected.indices,
                "n_pairs": int(result.intersections.n_pairs),
                "plan_seconds": plan_seconds,
                "raster_seconds": time.perf_counter() - start,
                "cache_status": plan.status,
                "meta": entry_meta(plan.entry),
            }
        )
    ctx.batches[token] = {"results": results, "slot": None, "namespace": namespace}
    return {
        "views": view_replies,
        "evicted": [key for key in known_keys if key not in cache.entry_keys()],
        "truncation_fallbacks": cache.stats.truncation_fallbacks - truncation_before,
    }


def _apply_worker_faults(faults) -> tuple[list, "str | None"]:
    """Blindly execute fault payloads shipped by the parent (test-only).

    Returns ``(fired slow/hang site keys, poison site key or None)``.
    ``crash`` never returns; an un-delayed ``hang`` sleeps until the
    parent's deadline quarantines (and kills) this worker.  ``wedge`` makes
    the process ignore ``SIGTERM`` first, so only ``kill()`` can stop it —
    that is what exercises the terminate->kill escalation paths.
    """
    if not faults:
        return [], None
    import signal

    slow_keys: list = []
    poison_key: str | None = None
    for site in faults:
        if site.get("wedge"):
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        kind = site["kind"]
        if kind == "crash":
            os._exit(23)
        elif kind == "hang":
            time.sleep(site.get("delay") or 3600.0)
            slow_keys.append(site["key"])
        elif kind == "slow":
            time.sleep(site.get("delay") or 0.05)
            slow_keys.append(site["key"])
        elif kind == "poison" and poison_key is None:
            poison_key = site["key"]
    return slow_keys, poison_key


def _worker_handle_render(ctx: _WorkerContext, payload) -> tuple:
    token, shm_name, batch = payload
    # Faults fire before the block is attached so a crashing/hanging worker
    # never holds a mapping the parent's unlink would have to wait out.
    slow_keys, poison_key = _apply_worker_faults(batch.get("faults"))
    if poison_key is not None:
        return ("ok", {"poisoned": True, "fault_sites": slow_keys + [poison_key]})
    shm = _attach_shm(shm_name)
    try:
        reply = _worker_render_batch(ctx, token, shm, batch)
        if slow_keys:
            reply["fault_sites"] = slow_keys
    finally:
        # Everything the render keeps from the block is gathered or copied
        # (projection gathers candidate rows, outputs are copied in), so the
        # mapping drops as soon as the handler finishes.  On an error the
        # traceback frames can briefly pin views; the BufferError then leaves
        # the mapping to die with the worker — rare and bounded.
        try:
            shm.close()
        except BufferError:
            pass
    return ("ok", reply)


def _worker_handle_backward(ctx: _WorkerContext, payload) -> tuple:
    from repro.gaussians.fast_raster import rasterize_backward_flat

    shm_name, items, faults = payload
    slow_keys, poison_key = _apply_worker_faults(faults)
    if poison_key is not None:
        return ("ok", {"poisoned": True, "fault_sites": slow_keys + [poison_key]})
    shm = _attach_shm(shm_name)
    try:
        replies = []
        # Items carry per-view tokens: after an in-batch redispatch one
        # worker can hold views of the same logical batch under several
        # tokens.
        for token, view_index, image_spec, depth_spec, projected_specs in items:
            entry = ctx.batches.get(token)
            if entry is None:
                raise RuntimeError(
                    f"batch {token} is no longer resident in this worker "
                    "(superseded by newer batches); run the backward pass "
                    "before rendering further batches"
                )
            start = time.perf_counter()
            dL_dimage = _shm_view(shm, image_spec)
            dL_ddepth = None if depth_spec is None else _shm_view(shm, depth_spec)
            result = entry["results"][view_index]
            screen = rasterize_backward_flat(result, dL_dimage, dL_ddepth)
            # The parent's stitched views carry only the visible-row indices;
            # fill its reservations with the heavy projection intermediates
            # the fused Step 5 reads.
            for name, spec in projected_specs.items():
                _shm_view(shm, spec)[...] = getattr(result.projected, name)
            # trace.fragments_per_pixel is a copy of the forward counts the
            # parent already holds (stitched from this very render), so it
            # is rebuilt parent-side instead of pickled back per view.
            replies.append(
                (
                    view_index,
                    screen.colors,
                    screen.opacities,
                    screen.means2d,
                    screen.conics,
                    screen.depths,
                    screen.trace.tile_ids,
                    screen.trace.per_tile_source_indices,
                    screen.trace.per_tile_pixel_counts,
                    time.perf_counter() - start,
                )
            )
            del dL_dimage, dL_ddepth
        return ("ok", {"views": replies, "fault_sites": slow_keys})
    finally:
        try:
            shm.close()
        except BufferError:
            pass


def _worker_handle_invalidate(ctx: _WorkerContext, payload) -> tuple:
    """Drop worker-resident cache state for one namespace (or all of them)."""
    namespace = payload
    if namespace is None:
        ctx.caches.clear()
    else:
        ctx.caches.pop(namespace, None)
    for token, entry in list(ctx.batches.items()):
        if entry["namespace"] is not None and namespace in (None, entry["namespace"]):
            _worker_drop_batch(ctx, token)
    return ("ok", None)


def _worker_drop_batch(ctx: _WorkerContext, token: int) -> None:
    entry = ctx.batches.pop(token)
    entry["results"].clear()


def _worker_main(conn, worker_id: int, seed_base: int | None) -> None:
    """Entry point of one shard worker (spawn-safe: importable top-level)."""
    seed = derive_seed(seed_base, worker_id)
    np.random.seed(seed % 2**32)
    # Deterministic per-worker generator for any stochastic kernel a future
    # backend feature runs shard-side.
    globals()["_WORKER_RNG"] = np.random.default_rng(seed)
    ctx = _WorkerContext()
    conn.send(("ready", worker_id))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        command = message[0]
        if command == "shutdown":
            break
        try:
            if command == "render":
                reply = _worker_handle_render(ctx, message[1])
            elif command == "backward":
                reply = _worker_handle_backward(ctx, message[1])
            elif command == "invalidate":
                reply = _worker_handle_invalidate(ctx, message[1])
            elif command == "ping":
                reply = ("ok", worker_id)
            else:
                raise ValueError(f"unknown shard command {command!r}")
        except BaseException:
            reply = ("error", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, EOFError, OSError):
            break
    for token in list(ctx.batches):
        _worker_drop_batch(ctx, token)


# -- pool ----------------------------------------------------------------------
_BLAS_ENV_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS")


@contextmanager
def _single_threaded_blas_for_children():
    """Pin child BLAS pools to one thread (workers parallelise across shards).

    The variables are set around ``Process.start()`` only — spawn snapshots
    the environment at exec — and restored so the parent keeps its own BLAS
    configuration.  Explicit user settings are left untouched.
    """
    previous = {name: os.environ.get(name) for name in _BLAS_ENV_VARS}
    for name in _BLAS_ENV_VARS:
        os.environ.setdefault(name, "1")
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@dataclass
class _Worker:
    process: object
    conn: object
    worker_id: int
    # Bumped on every respawn of this slot.  A handle/mirror entry recorded
    # against an older epoch refers to state the rebuilt worker no longer
    # holds.
    epoch: int = 0
    quarantined: bool = False


class ShardedPool:
    """Persistent pool of spawn-started shard workers with pipe transports.

    Worker failures no longer condemn the pool: a dead/hung worker is
    *quarantined* (killed, pipe closed, slot marked) and
    :meth:`ensure_workers` respawns quarantined slots — deterministically,
    same ``worker_id`` and ``seed_base`` — bumping the slot's epoch.  The
    pool is ``broken`` only once closed or when every slot is quarantined
    and respawn failed.
    """

    def __init__(
        self,
        n_workers: int,
        seed_base: int | None = None,
        start_timeout: float = _READY_TIMEOUT_S,
    ):
        import multiprocessing

        self._context = multiprocessing.get_context("spawn")
        self.n_workers = int(n_workers)
        self.seed_base = seed_base
        self._start_timeout = start_timeout
        self._closed = False
        self._workers: list[_Worker] = []
        # Parent-side mirror of each worker's retained-batch window (see
        # _worker_render_batch): uncached tokens rotate out FIFO once a worker
        # has acknowledged _MAX_RETAINED_BATCHES newer uncached renders, and
        # each cache namespace retains only its latest token.  Handles consult
        # the mirror (token_resident) before a backward request is sent, so a
        # batch the worker already evicted heals through the parent-recompute
        # path instead of surfacing the worker's residency error.
        self._resident_uncached: dict[int, deque] = {}
        self._resident_cached: dict[int, dict] = {}
        try:
            with _single_threaded_blas_for_children():
                for worker_id in range(self.n_workers):
                    self._workers.append(self._spawn(worker_id))
            for worker in self._workers:
                self._handshake(worker)
        except BaseException:
            self.close()
            raise

    def _spawn(self, worker_id: int) -> _Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, worker_id, self.seed_base),
            name=f"repro-shard-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn, worker_id)

    def _handshake(self, worker: _Worker) -> None:
        reply = self._receive(worker, timeout=self._start_timeout)
        if reply != ("ready", worker.worker_id):
            raise ShardWorkerError(
                f"shard worker {worker.worker_id} sent unexpected handshake "
                f"{reply!r}"
            )

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """True when the pool cannot serve requests and must be replaced."""
        return self._closed or not self.live_worker_ids()

    def live_worker_ids(self) -> list[int]:
        """Ids of workers currently able to take requests."""
        return [
            worker.worker_id
            for worker in self._workers
            if not worker.quarantined and worker.process.is_alive()
        ]

    def worker_epoch(self, worker_id: int) -> int:
        return self._workers[worker_id].epoch

    def worker_usable(self, worker_id: int, epoch: int) -> bool:
        """Can worker ``worker_id`` still serve state recorded at ``epoch``?"""
        if self._closed or worker_id >= len(self._workers):
            return False
        worker = self._workers[worker_id]
        return (
            not worker.quarantined
            and worker.epoch == epoch
            and worker.process.is_alive()
        )

    def note_resident(self, worker_id: int, token: int, namespace=None) -> None:
        """Mirror a successful render ack: ``token`` is now worker-resident.

        Mimics the worker's own retention policy exactly: uncached batches
        share a FIFO window of ``_MAX_RETAINED_BATCHES`` slots, cached batches
        supersede the namespace's previous token.
        """
        if namespace is None:
            window = self._resident_uncached.setdefault(
                worker_id, deque(maxlen=_MAX_RETAINED_BATCHES)
            )
            window.append(token)
        else:
            self._resident_cached.setdefault(worker_id, {})[namespace] = token

    def note_invalidated(self, namespace=None) -> None:
        """Mirror a cache invalidation: the namespace's batches are gone."""
        for retained in self._resident_cached.values():
            if namespace is None:
                retained.clear()
            else:
                retained.pop(namespace, None)

    def token_resident(self, worker_id: int, token: int) -> bool:
        """Does the parent-side mirror still consider ``token`` retained?"""
        return token in self._resident_uncached.get(
            worker_id, ()
        ) or token in self._resident_cached.get(worker_id, {}).values()

    def quarantine(self, worker_id: int) -> None:
        """Take a worker out of service: kill it and close its pipe.

        Escalates ``terminate()`` -> ``kill()`` so a SIGTERM-ignoring hung
        worker cannot leak; idempotent.  The slot stays in the pool for
        :meth:`ensure_workers` to respawn.
        """
        worker = self._workers[worker_id]
        if worker.quarantined:
            return
        worker.quarantined = True
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def ensure_workers(self) -> list[int]:
        """Health-check every slot and respawn the quarantined/dead ones.

        Returns the ids respawned (their epochs are bumped).  A slot whose
        respawn fails stays quarantined; callers work around it via
        :meth:`live_worker_ids` and the pool reads ``broken`` once no slot
        is live.
        """
        if self._closed:
            raise ShardWorkerError("shard pool is closed")
        for worker in self._workers:
            if not worker.quarantined and not worker.process.is_alive():
                self.quarantine(worker.worker_id)
        respawned: list[int] = []
        for index, worker in enumerate(self._workers):
            if not worker.quarantined:
                continue
            try:
                with _single_threaded_blas_for_children():
                    fresh = self._spawn(worker.worker_id)
            except Exception:
                continue
            try:
                self._handshake(fresh)
            except Exception:
                if fresh.process.is_alive():
                    fresh.process.kill()
                    fresh.process.join(timeout=5.0)
                try:
                    fresh.conn.close()
                except OSError:
                    pass
                continue
            fresh.epoch = worker.epoch + 1
            self._workers[index] = fresh
            respawned.append(worker.worker_id)
        return respawned

    def gather(
        self, messages: dict[int, tuple], timeout: float = _REQUEST_TIMEOUT_S
    ) -> tuple[dict[int, object], list[WorkerFault]]:
        """Send one message per worker id, then drain replies without raising.

        All sends complete before the first receive so the shards execute
        concurrently; ``timeout`` is one absolute deadline for the whole
        drain.  Transport failures (send failure, death, timeout, EOF)
        quarantine the worker and come back as :class:`WorkerFault` records;
        an ``("error", traceback)`` reply comes back as a kind-``"error"``
        fault but leaves the worker in service — the worker is healthy, the
        request was bad.  Successful payloads land in the first mapping.
        """
        faults: list[WorkerFault] = []
        sent: list[int] = []
        for worker_id, message in messages.items():
            worker = self._workers[worker_id]
            if worker.quarantined:
                faults.append(
                    WorkerFault("send-failed", worker_id, "worker is quarantined")
                )
                continue
            try:
                worker.conn.send(message)
                sent.append(worker_id)
            except (BrokenPipeError, OSError) as error:
                self.quarantine(worker_id)
                faults.append(
                    WorkerFault(
                        "send-failed",
                        worker_id,
                        f"shard worker {worker_id} is gone (send failed: {error})",
                    )
                )
        replies: dict[int, object] = {}
        deadline = time.monotonic() + timeout
        for worker_id in sent:
            worker = self._workers[worker_id]
            try:
                reply = self._receive_until(worker, deadline)
            except _WorkerGone as error:
                self.quarantine(worker_id)
                faults.append(WorkerFault(error.kind, worker_id, str(error)))
                continue
            if reply and reply[0] == "error":
                faults.append(WorkerFault("error", worker_id, reply[1]))
            else:
                replies[worker_id] = reply[1] if reply else None
        return replies, faults

    def request_all(
        self, messages: dict[int, tuple], timeout: float = _REQUEST_TIMEOUT_S
    ) -> dict[int, object]:
        """Raising wrapper over :meth:`gather` (invalidation/ping paths).

        Any fault raises :class:`ShardWorkerError` after every healthy
        reply has been drained (the pipes stay in sync); transport-level
        losses have already quarantined the worker by then.
        """
        replies, faults = self.gather(messages, timeout=timeout)
        if faults:
            fault = faults[0]
            if fault.kind == "error":
                raise ShardWorkerError(
                    f"shard worker {fault.worker_id} failed:\n{fault.detail}"
                )
            raise ShardWorkerError(fault.detail)
        return replies

    def _receive_until(self, worker: _Worker, deadline: float):
        while not worker.conn.poll(0.02):
            if not worker.process.is_alive():
                raise _WorkerGone(
                    "died",
                    f"shard worker {worker.worker_id} died before replying "
                    f"(exit code {worker.process.exitcode})",
                )
            if time.monotonic() > deadline:
                raise _WorkerGone(
                    "timeout",
                    f"shard worker {worker.worker_id} did not reply before "
                    "the dispatch deadline",
                )
        try:
            return worker.conn.recv()
        except (EOFError, OSError) as error:
            raise _WorkerGone(
                "died",
                f"shard worker {worker.worker_id} hung up mid-reply: {error}",
            ) from None

    def _receive(self, worker: _Worker, timeout: float = _REQUEST_TIMEOUT_S) -> tuple:
        try:
            reply = self._receive_until(worker, time.monotonic() + timeout)
        except _WorkerGone as error:
            raise ShardWorkerError(str(error)) from None
        if reply and reply[0] == "error":
            raise ShardWorkerError(
                f"shard worker {worker.worker_id} failed:\n{reply[1]}"
            )
        return reply

    def close(self) -> None:
        """Shut every worker down; escalate terminate() -> kill() on stragglers."""
        for worker in self._workers:
            if worker.quarantined:
                continue
            try:
                worker.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            if not worker.quarantined:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    # A wedged (SIGTERM-ignoring) worker must not outlive the
                    # pool: SIGKILL cannot be ignored.
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers.clear()
        self._closed = True


# Pools are shared process-wide per (worker count, seed): spawn + numpy import
# costs seconds per worker, and every engine pinned to the same configuration
# can safely share workers because batch state is token-keyed and cache state
# is namespace-keyed.
_POOLS: dict[tuple[int, int | None], ShardedPool] = {}


def _shared_pool(n_workers: int, seed_base: int | None = None) -> ShardedPool:
    key = (n_workers, seed_base)
    pool = _POOLS.get(key)
    if pool is not None and pool.broken:
        pool.close()
        del _POOLS[key]
        pool = None
    if pool is None:
        pool = ShardedPool(n_workers, seed_base=seed_base)
        _POOLS[key] = pool
    return pool


def _discard_pool(pool: ShardedPool) -> None:
    for key, candidate in list(_POOLS.items()):
        if candidate is pool:
            del _POOLS[key]
    pool.close()


def shutdown_shard_pools() -> None:
    """Terminate every shared shard pool (idempotent; re-created on next use)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_shard_pools)


# -- the backend ---------------------------------------------------------------
@dataclass
class _ShardHandle:
    """Links a parent-side view result to the worker holding its tile caches.

    ``epoch`` pins the worker incarnation that rendered the view; ``lost``
    marks a handle whose retained batch was superseded worker-side by an
    in-batch redispatch.  Backward treats an unusable handle (lost, stale
    epoch, quarantined/dead worker, closed pool, or a token that later
    dispatches on the shared pool rotated out of the worker's retained set —
    the pool mirrors that rotation parent-side) as a fault and recomputes
    the view's backward pass in the parent instead of asking the worker.
    """

    pool: ShardedPool
    token: int
    worker_id: int
    view_index: int
    epoch: int = 0
    active_only: bool = True
    lost: bool = False

    def usable(self) -> bool:
        return (
            not self.lost
            and self.pool.worker_usable(self.worker_id, self.epoch)
            and self.pool.token_resident(self.worker_id, self.token)
        )


def default_shard_workers() -> int:
    """The cpu-count-aware worker default used when ``shard_workers`` is unset."""
    return max(1, min(os.cpu_count() or 1, DEFAULT_MAX_WORKERS))


def _assign_round_robin(
    worker_ids: Sequence[int], view_ids: Sequence[int]
) -> dict[int, list[int]]:
    """Deal ``view_ids`` round-robin over ``worker_ids`` (at most one worker
    per view); preserves the historical ``index % n_active`` assignment when
    every worker is live."""
    active = list(worker_ids)[: max(1, min(len(worker_ids), len(view_ids)))]
    assignment: dict[int, list[int]] = {}
    for slot, view_id in enumerate(view_ids):
        assignment.setdefault(active[slot % len(active)], []).append(view_id)
    return assignment


_RENDER_REPLY_VIEW_FIELDS = (
    "indices",
    "n_pairs",
    "plan_seconds",
    "raster_seconds",
    "cache_status",
    "meta",
)


def _validate_render_reply(payload, expected_views: Sequence[int]) -> "str | None":
    """Structural check of one worker render reply; a reason string if bad.

    A reply that fails this check is *poisoned*: the parent cannot trust
    anything about the worker's state, so the caller quarantines it and
    recovers the views elsewhere.
    """
    if not isinstance(payload, dict):
        return f"reply payload is {type(payload).__name__}, not a mapping"
    if payload.get("poisoned"):
        return "worker returned a poisoned reply"
    if payload.get("desync"):
        return None
    views = payload.get("views")
    if not isinstance(views, list):
        return "reply carries no view list"
    if not isinstance(payload.get("evicted"), list):
        return "reply carries no eviction list"
    got: list[int] = []
    for view in views:
        if not isinstance(view, dict) or "index" not in view:
            return "malformed per-view reply"
        got.append(view["index"])
        for field_name in _RENDER_REPLY_VIEW_FIELDS:
            if field_name not in view:
                return f"per-view reply missing {field_name!r}"
    if sorted(got) != sorted(expected_views):
        return f"reply covers views {sorted(got)}, expected {sorted(expected_views)}"
    return None


def _validate_backward_reply(payload, expected_views: Sequence[int]) -> "str | None":
    """Structural check of one worker backward reply; a reason string if bad."""
    if not isinstance(payload, dict):
        return f"reply payload is {type(payload).__name__}, not a mapping"
    if payload.get("poisoned"):
        return "worker returned a poisoned reply"
    views = payload.get("views")
    if not isinstance(views, list):
        return "reply carries no view list"
    got: list[int] = []
    for item in views:
        if not isinstance(item, tuple) or len(item) != 10:
            return "malformed per-view gradient reply"
        got.append(item[0])
    # Order-sensitive: the parent maps replies back to caller views by
    # position, and dispatch-local indices can repeat across the stitched
    # rounds of a service batch, so a reordered reply is structurally bad.
    if got != list(expected_views):
        return f"reply covers views {got}, expected {list(expected_views)}"
    return None


class ShardedBackend:
    """Multi-process worker-planned batch execution behind the backend seam.

    Batches plan *and* rasterize inside the worker pool
    (``distributed_planning``); geometry-cache entries live in the workers
    (``worker_resident_cache``) keyed by the same cloud mutation epochs as
    the parent cache, so sharding and caching compose on one render.
    Single-view renders and degraded batches (no usable pool) run the serial
    flat path with the parent-resident cache unchanged.
    """

    name = "sharded"

    def __init__(self, config: "EngineConfig"):
        self.config = config
        self._unavailable_reason: str | None = None
        # Classification mirror: (worker_id, view key) -> EntryMeta of the
        # entry that worker holds, valid for ``_mirror_pool`` only.  Lets the
        # parent predict which views of the next batch will miss (and
        # therefore whether the shared Step 1 payload must ship) by running
        # the same classify_reuse the workers run.
        self._mirror: dict[tuple[int, tuple], "EntryMeta"] = {}
        self._mirror_pool: ShardedPool | None = None
        # Worker epochs the mirror entries were recorded against; an epoch
        # change (respawn) purges that worker's entries so a rebuilt worker
        # is never predicted to hold geometry it lost.
        self._mirror_epochs: dict[int, int] = {}
        # Fault-injection bookkeeping (no-ops unless a FaultPlan is active):
        # dispatch-operation counter and the once-sites already consumed.
        self._fault_op_counter = 0
        self._fault_fired: set = set()
        self._fault_plan_seen = None

    # -- capabilities / sizing ----------------------------------------------
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            batch=True,
            cache=True,
            distributed_planning=True,
            worker_resident_cache=True,
            reference=False,
            description=(
                "multi-process sharded execution with worker-resident Step 1-2 "
                "planning and geometry caches (repro.engine.sharded)"
            ),
            availability=self.availability(),
        )

    def resolved_workers(self) -> int:
        """Worker count after applying the config/env knob and the cpu default."""
        if self.config.shard_workers is not None:
            return self.config.shard_workers
        return default_shard_workers()

    def availability(self) -> str | None:
        """Machine-readable reason this backend cannot genuinely shard, or ``None``.

        Sharding needs at least two worker processes; fewer (an explicit
        ``shard_workers``/``REPRO_SHARD_WORKERS`` of 0/1, or a single-core
        host sizing the default pool) means every batch would silently run
        the serial flat path — honest harnesses skip instead.  A latched
        spawn failure is also reported.
        """
        workers = self.resolved_workers()
        if workers < 2:
            source = (
                "shard_workers knob" if self.config.shard_workers is not None else "cpu default"
            )
            return f"workers:{workers}<2 ({source}, cpu_count={os.cpu_count()})"
        if self._unavailable_reason is not None:
            return f"spawn-failed:{self._unavailable_reason}"
        return None

    def _pool_for(self, n_views: int) -> ShardedPool | None:
        """The pool to shard over, or ``None`` when serial execution is right.

        Spawn failures (platforms without working process support) latch the
        backend into serial mode; runtime worker failures do *not* — they
        raise and the next batch retries with a fresh pool.
        """
        workers = self.resolved_workers()
        if workers <= 1 or n_views <= 1 or self._unavailable_reason is not None:
            return None
        try:
            return _shared_pool(workers)
        except Exception as error:  # spawn unsupported/failed: degrade for good
            self._unavailable_reason = f"{type(error).__name__}: {error}"
            import warnings

            warnings.warn(
                "the sharded render backend could not start its worker pool "
                f"({self._unavailable_reason}); this engine's batches will run "
                "on the serial flat path from now on",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    # -- forward -------------------------------------------------------------
    def render(self, request: RenderRequest) -> "RenderResult":
        # Single views gain nothing from sharding; run the flat fast path
        # (cache/precomputed dispatch included) so the result keeps its tile
        # caches and its backward pass stays local.
        return rasterize_flat(
            request.cloud,
            request.camera,
            request.pose_cw,
            background=request.background,
            tile_size=request.tile_size,
            subtile_size=request.subtile_size,
            active_only=request.active_only,
            precomputed=request.precomputed,
            cache=request.cache,
        )

    def plan_batch(self, request: BatchRenderRequest) -> RenderPlan:
        """Parent-side Step 1-2 planning (the serial/external-scheduler seam).

        With a live pool :meth:`render_batch` does *not* go through this plan
        — planning is distributed to the workers (``distributed_planning``);
        this seam covers the degraded serial path and callers that schedule
        the units themselves.
        """
        return plan_batch_views(
            request.cloud,
            request.cameras,
            request.poses_cw,
            backgrounds=request.backgrounds,
            tile_size=request.tile_size,
            subtile_size=request.subtile_size,
            active_only=request.active_only,
            cache=request.cache,
        )

    def execute_units(
        self, plan: RenderPlan, request: BatchRenderRequest
    ) -> BatchRenderResult:
        """Serial execution of a parent-side plan (see :meth:`plan_batch`)."""
        return execute_plan(plan, arena=request.arena)

    def render_batch(self, request: BatchRenderRequest) -> BatchRenderResult:
        pool = self._pool_for(len(request.cameras))
        if pool is None:
            return self.execute_units(self.plan_batch(request), request)
        try:
            return self._render_batch_sharded(request, pool)
        except ShardPoolLostError:
            # Completion guarantee, last line of defence: every worker slot
            # is gone and respawn failed, so finish the batch on the serial
            # flat path.  The next batch starts a fresh pool.
            if pool.broken:
                _discard_pool(pool)
            return self.execute_units(self.plan_batch(request), request)

    def _next_fault_op(self):
        """The active fault plan (if any) and this dispatch's operation index.

        A plan swap (tests installing a new schedule) resets the operation
        counter and the consumed once-sites so site coordinates stay
        predictable.
        """
        plan = active_fault_plan()
        if plan is not self._fault_plan_seen:
            self._fault_plan_seen = plan
            self._fault_fired = set()
            self._fault_op_counter = 0
        op_index = self._fault_op_counter
        self._fault_op_counter += 1
        return plan, op_index

    def _disarm_fault_sites(self, plan, fault_sites: dict[int, list[dict]]) -> None:
        if plan is None:
            return
        sticky = plan.sticky_keys()
        for sites in fault_sites.values():
            for site in sites:
                if site["key"] not in sticky:
                    self._fault_fired.add(site["key"])

    def _sync_mirror_epochs(self, pool: ShardedPool) -> None:
        """Purge mirror entries of workers whose epoch moved (respawned)."""
        for worker_id in range(pool.n_workers):
            epoch = pool.worker_epoch(worker_id)
            if self._mirror_epochs.get(worker_id) != epoch:
                self._mirror = {
                    key: meta
                    for key, meta in self._mirror.items()
                    if key[0] != worker_id
                }
                self._mirror_epochs[worker_id] = epoch

    def _render_batch_sharded(
        self, request: BatchRenderRequest, pool: ShardedPool
    ) -> BatchRenderResult:
        """Worker-planned execution: heal the pool, predict misses, dispatch."""
        cache = request.cache
        cloud = request.cloud
        n_views = len(request.cameras)
        fault_log: list[dict] = []
        for worker_id in pool.ensure_workers():
            fault_log.append(
                {"event": "respawn", "worker": worker_id, "phase": "render"}
            )
        live = pool.live_worker_ids()
        if not live:
            raise ShardPoolLostError(
                "no live shard worker remains and respawn failed"
            )
        keys: list[tuple] | None = None
        if cache is not None:
            if pool is not self._mirror_pool:
                # A fresh pool means fresh (empty) worker caches; predictions
                # from the previous pool's entries would desync immediately.
                self._mirror = {}
                self._mirror_epochs = {}
                self._mirror_pool = pool
            self._sync_mirror_epochs(pool)
            keys = [
                view_key(
                    camera,
                    pose_cw,
                    request.tile_size,
                    request.subtile_size,
                    request.active_only,
                    pose_quantum=cache.config.pose_quantum,
                )
                for camera, pose_cw in zip(request.cameras, request.poses_cw)
            ]
            predicted = _assign_round_robin(live, list(range(n_views)))
            worker_of = {
                view: worker_id
                for worker_id, views in predicted.items()
                for view in views
            }
            need_shared = any(
                classify_reuse(
                    cache.config,
                    self._mirror.get((worker_of[index], key)),
                    cloud,
                    pose_cw,
                )
                == "miss"
                for index, (key, pose_cw) in enumerate(zip(keys, request.poses_cw))
            )
        else:
            need_shared = True

        shared = None
        shared_seconds = 0.0
        if need_shared:
            start = time.perf_counter()
            shared = shared_preprocess(cloud, active_only=request.active_only)
            shared_seconds = time.perf_counter() - start

        for _attempt in range(2):
            batch = self._dispatch_sharded(
                request, pool, shared, shared_seconds, keys, fault_log
            )
            if batch is not None:
                return batch
            # Worker cache state diverged from the prediction mirror (view
            # reassignment, a recreated worker cache): resync by clearing the
            # mirror and resending with the full Step 1 payload, after which
            # every worker can rebuild and desync is impossible.
            self._mirror.clear()
            if shared is None:
                start = time.perf_counter()
                shared = shared_preprocess(cloud, active_only=request.active_only)
                shared_seconds = time.perf_counter() - start
        raise ShardWorkerError(
            "shard workers reported a cache desync even with the full shared "
            "payload; this is a bug in the sharded backend"
        )

    def _render_view_serial(self, request, meta: dict, shared: SharedGaussianData):
        """Escalated serial execution of one lost view.

        Runs exactly the worker's uncached plan+raster sequence
        (project -> tile -> fragments -> ``rasterize_flat_into``) against a
        private arena, so the escalated result is bitwise-identical to what
        a healthy worker would have stitched in.
        """
        from repro.gaussians.fast_raster import (
            allocate_flat_arena,
            build_flat_fragments,
            rasterize_flat_into,
        )
        from repro.gaussians.projection import project_gaussians
        from repro.gaussians.sorting import build_tile_lists

        start = time.perf_counter()
        projected = project_gaussians(
            None,
            meta["camera"],
            meta["pose_cw"],
            active_only=request.active_only,
            shared=shared,
        )
        grid = TileGrid(
            meta["camera"].width,
            meta["camera"].height,
            meta["tile_size"],
            meta["subtile_size"],
        )
        intersections = build_tile_lists(projected, grid)
        fragments = build_flat_fragments(intersections)
        plan_seconds = time.perf_counter() - start
        start = time.perf_counter()
        arena = allocate_flat_arena(fragments.n_fragments)
        result = rasterize_flat_into(
            projected, intersections, fragments, meta["background"], arena, 0
        )
        return result, plan_seconds, time.perf_counter() - start

    def _dispatch_sharded(
        self,
        request: BatchRenderRequest,
        pool: ShardedPool,
        shared: SharedGaussianData | None,
        shared_seconds: float,
        keys: "list[tuple] | None",
        fault_log: list[dict],
    ) -> BatchRenderResult | None:
        """One self-healing dispatch attempt; ``None`` signals a cache desync.

        Round 0 fans the views out over the live workers; views lost to a
        quarantined worker are redispatched (fresh token, grown deadline)
        for up to ``shard_retry_limit`` rounds with dead slots respawned in
        between, then escalate to serial parent execution.  The stitched
        result is total: every view completes on some path.
        """
        from repro.gaussians.rasterizer import RenderResult

        cache = request.cache
        cameras = list(request.cameras)
        poses_cw = list(request.poses_cw)
        n_views = len(cameras)
        backgrounds = _normalise_backgrounds(request.backgrounds, n_views)
        retry_limit = self.config.shard_retry_limit
        deadline_s = self.config.shard_deadline_s
        backoff_s = self.config.shard_backoff_s
        plan, op_index = self._next_fault_op()

        dispatch_start = time.perf_counter()
        layout = _ShmLayout()
        shared_specs = None
        if shared is not None:
            shared_specs = {
                name: layout.add(getattr(shared, name)) for name in _SHARED_FIELDS
            }
        namespace = cloud_meta = appearance_specs = cache_config = None
        if cache is not None:
            namespace = _cache_namespace(cache)
            cache_config = cache.config
            cloud = request.cloud
            cloud_meta = {
                "uid": cloud.uid,
                "epoch": cloud.epoch,
                "structure_epoch": cloud.structure_epoch,
                "unbounded_epoch": cloud.unbounded_epoch,
                "cum_position_delta": cloud.cum_position_delta,
                "cum_log_scale_delta": cloud.cum_log_scale_delta,
                "cum_opacity_delta": cloud.cum_opacity_delta,
            }
            # Appearance splicing (the refresh tier) gathers from the full
            # cloud arrays, so they ship every cached batch.
            appearance_specs = {
                "colors": layout.add(cloud.colors),
                "opacities": layout.add(cloud.opacities()),
            }
        view_metas = []
        for index, (camera, pose_cw) in enumerate(zip(cameras, poses_cw)):
            height, width = camera.height, camera.width
            view_metas.append(
                {
                    "index": index,
                    "camera": camera,
                    "pose_cw": pose_cw,
                    "background": backgrounds[index],
                    "tile_size": request.tile_size,
                    "subtile_size": request.subtile_size,
                    "outputs": {
                        "image": layout.reserve((height, width, 3), np.float64),
                        "depth": layout.reserve((height, width), np.float64),
                        "alpha": layout.reserve((height, width), np.float64),
                        "fragments_per_pixel": layout.reserve((height, width), np.int64),
                    },
                }
            )
        shm = layout.create()
        plan_seconds = [0.0] * n_views
        raster_seconds = [0.0] * n_views
        statuses = ["uncached"] * n_views
        indices_by_view: dict[int, np.ndarray] = {}
        n_pairs_by_view: dict[int, int] = {}
        local_results: dict[int, "RenderResult"] = {}  # escalated views
        handle_info: dict[int, tuple[int, int, int]] = {}  # view -> (worker, token, epoch)
        rendered_tokens: dict[int, list[int]] = {}  # worker -> tokens it rendered
        worker_seconds: dict[int, float] = {}
        to_escalate: set[int] = set()
        retries = 0
        shard_wall = 0.0
        desync = False
        try:
            live = pool.live_worker_ids()
            pending = _assign_round_robin(live, list(range(n_views)))
            n_active = len(pending)
            for worker_id in pending:
                worker_seconds.setdefault(worker_id, 0.0)
            dispatch_seconds = time.perf_counter() - dispatch_start
            round_index = 0
            while pending:
                # A fresh token per round: a worker surviving round 0 must
                # not have a redispatched round-1 payload collide with the
                # batch entry it already retains under the old token.
                token = next(_TOKENS)
                fault_sites = (
                    {}
                    if plan is None
                    else plan.sites_for(
                        op_index=op_index,
                        phase="render",
                        assignment=pending,
                        fired=self._fault_fired,
                    )
                )
                messages = {
                    worker_id: (
                        "render",
                        (
                            token,
                            shm.name,
                            {
                                "namespace": namespace,
                                "cache_config": cache_config,
                                "cloud_meta": cloud_meta,
                                "shared": shared_specs,
                                "appearance": appearance_specs,
                                "active_only": request.active_only,
                                "views": [view_metas[i] for i in view_ids],
                                "faults": fault_sites.get(worker_id),
                            },
                        ),
                    )
                    for worker_id, view_ids in pending.items()
                }
                shard_start = time.perf_counter()
                replies, faults = pool.gather(
                    messages, timeout=deadline_s + round_index * backoff_s
                )
                shard_wall += time.perf_counter() - shard_start
                self._disarm_fault_sites(plan, fault_sites)

                lost: list[int] = []
                for fault in faults:
                    fault_views = pending[fault.worker_id]
                    if fault.kind == "error":
                        # Healthy worker, failed render: escalate so a
                        # deterministic render bug re-raises with a clean
                        # parent-side traceback instead of burning retries.
                        fault_log.append(
                            {
                                "event": "worker-error",
                                "worker": fault.worker_id,
                                "phase": "render",
                                "views": list(fault_views),
                                "detail": fault.detail,
                            }
                        )
                        to_escalate.update(fault_views)
                        # The worker rotates its retained-batch window before
                        # planning, so a failed render still consumed a slot
                        # (uncached) or dropped the namespace's previous token
                        # (cached); mirror that with a sentinel no real token
                        # can match, keeping token_resident pessimistic.
                        pool.note_resident(fault.worker_id, -1, namespace)
                    else:
                        fault_log.append(
                            {
                                "event": fault.kind,
                                "worker": fault.worker_id,
                                "phase": "render",
                                "views": list(fault_views),
                                "detail": fault.detail,
                            }
                        )
                        lost.extend(fault_views)
                for worker_id, payload in replies.items():
                    reply_views = pending[worker_id]
                    problem = _validate_render_reply(payload, reply_views)
                    if problem is not None:
                        # Poisoned/malformed reply: the worker's state can't
                        # be trusted — quarantine it and recover the views.
                        pool.quarantine(worker_id)
                        fault_log.append(
                            {
                                "event": "poisoned",
                                "worker": worker_id,
                                "phase": "render",
                                "views": list(reply_views),
                                "detail": problem,
                            }
                        )
                        lost.extend(reply_views)
                        continue
                    if payload.get("fault_sites"):
                        fault_log.append(
                            {
                                "event": "slow",
                                "worker": worker_id,
                                "phase": "render",
                                "views": list(reply_views),
                                "detail": ",".join(map(str, payload["fault_sites"])),
                            }
                        )
                    if payload.get("desync"):
                        # The worker dropped the namespace's retained batch
                        # before reporting the desync — mirror the drop.
                        pool.note_resident(worker_id, -1, namespace)
                        desync = True
                        continue
                    epoch = pool.worker_epoch(worker_id)
                    rendered_tokens.setdefault(worker_id, []).append(token)
                    pool.note_resident(worker_id, token, namespace)
                    for view in payload["views"]:
                        index = view["index"]
                        plan_seconds[index] = view["plan_seconds"]
                        raster_seconds[index] = view["raster_seconds"]
                        statuses[index] = view["cache_status"]
                        indices_by_view[index] = np.asarray(view["indices"])
                        n_pairs_by_view[index] = view["n_pairs"]
                        worker_seconds[worker_id] = (
                            worker_seconds.get(worker_id, 0.0)
                            + view["plan_seconds"]
                            + view["raster_seconds"]
                        )
                        handle_info[index] = (worker_id, token, epoch)
                        if cache is not None:
                            self._mirror[(worker_id, keys[index])] = view["meta"]
                    if cache is not None:
                        for key in payload["evicted"]:
                            self._mirror.pop((worker_id, key), None)
                        cache.stats.evictions += len(payload["evicted"])
                        cache.stats.truncation_fallbacks += payload[
                            "truncation_fallbacks"
                        ]
                if desync:
                    return None
                if not lost:
                    break
                if round_index >= retry_limit:
                    to_escalate.update(lost)
                    break
                for worker_id in pool.ensure_workers():
                    fault_log.append(
                        {"event": "respawn", "worker": worker_id, "phase": "render"}
                    )
                if cache is not None:
                    # Epoch re-broadcast: a respawned worker holds nothing —
                    # purge its mirror entries so no future batch predicts a
                    # hit against geometry it lost.
                    self._sync_mirror_epochs(pool)
                live = pool.live_worker_ids()
                if not live:
                    to_escalate.update(lost)
                    break
                round_index += 1
                retries += 1
                pending = _assign_round_robin(live, sorted(lost))

            # Escalation: finish every unrecovered view in the parent,
            # running exactly the worker's uncached plan+raster sequence so
            # the batch output stays bitwise-identical.
            if to_escalate:
                if shared is None:
                    start = time.perf_counter()
                    shared = shared_preprocess(
                        request.cloud, active_only=request.active_only
                    )
                    shared_seconds += time.perf_counter() - start
                for index in sorted(to_escalate):
                    fault_log.append(
                        {
                            "event": "escalated",
                            "worker": -1,
                            "phase": "render",
                            "views": [index],
                            "detail": "serial parent execution",
                        }
                    )
                    result, view_plan_s, view_raster_s = self._render_view_serial(
                        request, view_metas[index], shared
                    )
                    local_results[index] = result
                    plan_seconds[index] = view_plan_s
                    raster_seconds[index] = view_raster_s
                    statuses[index] = "uncached"

            # Handles superseded worker-side by an in-batch redispatch: a
            # cached batch keeps only a worker's most recent token (the new
            # render rewrote the namespace's cache arena), an uncached batch
            # its last _MAX_RETAINED_BATCHES arena slots.  Marking them lost
            # here routes their backward pass to the parent recompute path
            # instead of a worker that would answer "no longer resident".
            retained = 1 if cache is not None else _MAX_RETAINED_BATCHES
            valid_tokens = {
                worker_id: set(tokens[-retained:])
                for worker_id, tokens in rendered_tokens.items()
            }

            stitch_start = time.perf_counter()
            views: list[RenderResult] = []
            for index, meta in enumerate(view_metas):
                if index in local_results:
                    view = local_results[index]
                    # Stays "sharded" so the engine routes the batch's
                    # backward pass through this backend's mixed handling.
                    # The escalation marker keeps the detached-view guards
                    # honest: an escalated view of an empty/all-culled scene
                    # legitimately has no tile caches AND no worker handle.
                    view.backend = "sharded"
                    view.cache_status = "uncached"
                    view.shard_escalated = True
                    views.append(view)
                    continue
                camera = cameras[index]
                pose_cw = poses_cw[index]
                outputs = meta["outputs"]
                background = (
                    np.zeros(3)
                    if backgrounds[index] is None
                    else np.asarray(backgrounds[index], dtype=np.float64).reshape(3)
                )
                projected = _stitched_projection(indices_by_view[index], camera, pose_cw)
                grid = TileGrid(
                    camera.width, camera.height, request.tile_size, request.subtile_size
                )
                view = RenderResult(
                    image=np.array(_shm_view(shm, outputs["image"])),
                    depth=np.array(_shm_view(shm, outputs["depth"])),
                    alpha=np.array(_shm_view(shm, outputs["alpha"])),
                    fragments_per_pixel=np.array(
                        _shm_view(shm, outputs["fragments_per_pixel"])
                    ),
                    projected=projected,
                    intersections=_StitchedIntersections(
                        grid, projected, n_pairs_by_view[index]
                    ),
                    tile_caches=[],
                    camera=camera,
                    pose_cw=pose_cw,
                    background=background,
                    backend="sharded",
                    cache_status=statuses[index],
                )
                worker_id, view_token, epoch = handle_info[index]
                view.shard_info = _ShardHandle(
                    pool=pool,
                    token=view_token,
                    worker_id=worker_id,
                    view_index=index,
                    epoch=epoch,
                    active_only=request.active_only,
                    lost=view_token not in valid_tokens.get(worker_id, set()),
                )
                views.append(view)
                if cache is not None:
                    cache.stats.count(statuses[index])
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

        quarantined = sorted(
            {
                event["worker"]
                for event in fault_log
                if event["event"] in ("died", "timeout", "poisoned", "send-failed")
            }
        )
        respawned = sorted(
            {event["worker"] for event in fault_log if event["event"] == "respawn"}
        )
        return BatchRenderResult(
            views=views,
            shared=shared,
            # Workers own the arenas the views' tile caches live in; the
            # caller-supplied arena passes through untouched so a later
            # serial batch can still recycle it.
            arena=request.arena,
            shared_seconds=shared_seconds,
            view_seconds=[
                plan_seconds[index] + raster_seconds[index] for index in range(n_views)
            ],
            sharding=ShardAttribution(
                n_workers=n_active,
                worker_ids=[
                    -1 if index in local_results else handle_info[index][0]
                    for index in range(n_views)
                ],
                view_shard_seconds=raster_seconds,
                worker_seconds=worker_seconds,
                dispatch_seconds=dispatch_seconds,
                stitch_seconds=time.perf_counter() - stitch_start,
                shard_wall_seconds=shard_wall,
                plan_site="worker",
                view_plan_seconds=plan_seconds,
                fault_events=fault_log,
                fault_retries=retries,
                fault_quarantined_workers=quarantined,
                fault_respawned_workers=respawned,
                escalated_views=sorted(local_results),
            ),
        )

    # -- invalidation ---------------------------------------------------------
    def invalidate_worker_caches(self, cache: "GeometryCache | None" = None) -> None:
        """Broadcast geometry-cache invalidation to every live shard pool.

        Epoch keying already guarantees stale worker entries can never be
        *served* after a structural mutation; the broadcast eagerly frees
        their memory and drops retained cached batches whose backward state
        aliases them.  ``cache=None`` clears every namespace; passing a cache
        that never rode a sharded batch is a no-op.  Best-effort: a broken
        pool is discarded, not raised through (invalidation sites sit inside
        densify/prune paths that must not fail on pool hiccups).
        """
        self._mirror.clear()
        self._mirror_epochs.clear()
        namespace = None
        if cache is not None:
            namespace = getattr(cache, "_shard_namespace", None)
            if namespace is None:
                return
        for pool in list(_POOLS.values()):
            if pool.broken:
                continue
            try:
                pool.request_all(
                    {
                        worker_id: ("invalidate", namespace)
                        for worker_id in pool.live_worker_ids()
                    }
                )
                pool.note_invalidated(namespace)
            except ShardWorkerError:
                if pool.broken:
                    _discard_pool(pool)

    # -- backward ------------------------------------------------------------
    def _shard_backward(
        self,
        entries: "list[tuple[_ShardHandle, int, np.ndarray, np.ndarray | None]]",
        view_results,
        fault_log: list[dict],
    ) -> "tuple[dict[int, ScreenSpaceGradients], list[int]]":
        """Run Step 4 on the owning workers; ``(screens, failed view ids)``.

        ``entries`` holds ``(handle, view_index, dL_dimage, dL_ddepth)``
        tuples whose handles are usable on one pool; ``view_results`` maps
        each view index to its parent-side :class:`RenderResult`.  Loss
        gradients ship worker-ward and the heavy projection intermediates
        (everything the fused Step 5 reads that the stitched stub lacks)
        ship parent-ward through one shared-memory block; the small
        screen-gradient arrays and traces ride the reply pipes.

        A worker that dies, times out or replies poisoned is quarantined and
        its views come back in the failed list for the caller's parent-side
        recompute.  A worker-*reported* error raises
        :class:`ShardWorkerError` — the worker is healthy and the request
        was bad (e.g. a legitimately superseded batch), a usage error the
        healing paths must not mask.
        """
        from repro.gaussians.backward import GradientTrace, ScreenSpaceGradients

        pool = entries[0][0].pool
        plan, op_index = self._next_fault_op()
        layout = _ShmLayout()
        per_worker: dict[int, list] = {}
        views_by_worker: dict[int, list[int]] = {}
        projected_specs_by_view: dict[int, dict] = {}
        for handle, view_index, dL_dimage, dL_ddepth in entries:
            image_spec = layout.add(np.asarray(dL_dimage, dtype=np.float64))
            depth_spec = (
                None
                if dL_ddepth is None
                else layout.add(np.asarray(dL_ddepth, dtype=np.float64))
            )
            n_visible = int(view_results[view_index].projected.indices.shape[0])
            projected_specs = {
                name: layout.reserve((n_visible, *trailing), np.float64)
                for name, trailing in _BACKWARD_PROJECTED_FIELDS
            }
            projected_specs_by_view[view_index] = projected_specs
            # Per-item tokens: after an in-batch redispatch one worker can
            # hold views of this batch under several tokens.  The index sent
            # worker-ward is the handle's *dispatch-local* one — the key the
            # worker stored the view under — which differs from the caller's
            # batch index when several dispatches were stitched into one
            # batch (the render service's round-based scheduling); replies
            # are mapped back to caller indices by position.
            per_worker.setdefault(handle.worker_id, []).append(
                (handle.token, handle.view_index, image_spec, depth_spec, projected_specs)
            )
            views_by_worker.setdefault(handle.worker_id, []).append(view_index)
        fault_sites = (
            {}
            if plan is None
            else plan.sites_for(
                op_index=op_index,
                phase="backward",
                assignment=views_by_worker,
                fired=self._fault_fired,
            )
        )
        screen_by_view: dict[int, ScreenSpaceGradients] = {}
        failed: list[int] = []
        shm = layout.create()
        try:
            messages = {
                worker_id: (
                    "backward",
                    (shm.name, worker_items, fault_sites.get(worker_id)),
                )
                for worker_id, worker_items in per_worker.items()
            }
            replies, faults = pool.gather(
                messages, timeout=self.config.shard_deadline_s
            )
            self._disarm_fault_sites(plan, fault_sites)
            for fault in faults:
                if fault.kind == "error":
                    raise ShardWorkerError(
                        f"shard worker {fault.worker_id} failed:\n{fault.detail}"
                    )
                fault_log.append(
                    {
                        "event": fault.kind,
                        "worker": fault.worker_id,
                        "phase": "backward",
                        "views": list(views_by_worker[fault.worker_id]),
                        "detail": fault.detail,
                    }
                )
                failed.extend(views_by_worker[fault.worker_id])
            for worker_id, payload in replies.items():
                problem = _validate_backward_reply(
                    payload, [item[1] for item in per_worker[worker_id]]
                )
                if problem is not None:
                    pool.quarantine(worker_id)
                    fault_log.append(
                        {
                            "event": "poisoned",
                            "worker": worker_id,
                            "phase": "backward",
                            "views": list(views_by_worker[worker_id]),
                            "detail": problem,
                        }
                    )
                    failed.extend(views_by_worker[worker_id])
                    continue
                if payload.get("fault_sites"):
                    fault_log.append(
                        {
                            "event": "slow",
                            "worker": worker_id,
                            "phase": "backward",
                            "views": list(views_by_worker[worker_id]),
                            "detail": ",".join(map(str, payload["fault_sites"])),
                        }
                    )
                for slot, (
                    _local_index,
                    colors,
                    opacities,
                    means2d,
                    conics,
                    depths,
                    trace_tile_ids,
                    trace_sources,
                    trace_counts,
                    _seconds,
                ) in enumerate(payload["views"]):
                    # Workers answer items in send order (validated above),
                    # so the slot maps the reply back to the caller's batch
                    # index even when dispatch-local indices collide across
                    # the stitched rounds of a service batch.
                    view_index = views_by_worker[worker_id][slot]
                    view_result = view_results[view_index]
                    # Swap the worker's heavy projection intermediates into
                    # the stitched stub so the fused Step 5 sees the same
                    # arrays a parent-planned render would have kept.
                    projected = replace(
                        view_result.projected,
                        **{
                            name: np.array(_shm_view(shm, spec))
                            for name, spec in projected_specs_by_view[view_index].items()
                        },
                    )
                    screen_by_view[view_index] = ScreenSpaceGradients(
                        projected=projected,
                        colors=colors,
                        opacities=opacities,
                        means2d=means2d,
                        conics=conics,
                        depths=depths,
                        trace=GradientTrace(
                            tile_ids=list(trace_tile_ids),
                            per_tile_source_indices=list(trace_sources),
                            per_tile_pixel_counts=list(trace_counts),
                            fragments_per_pixel=view_result.fragments_per_pixel.copy(),
                        ),
                    )
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        return screen_by_view, failed

    def _recompute_backward_view(
        self,
        cloud: "GaussianCloud",
        view: "RenderResult",
        dL_dimage: np.ndarray,
        dL_ddepth: "np.ndarray | None",
        active_only: bool,
        shared: "SharedGaussianData | None" = None,
    ) -> "ScreenSpaceGradients":
        """Parent-side backward for a view whose worker state is gone.

        Re-derives the worker's exact forward plan (projection, tile lists,
        fragments, tile caches) from the cloud — which is unchanged between
        forward and backward in every engine consumer (mapping applies
        updates only after the backward pass) — then runs the flat Step 4,
        so the gradients are bitwise-identical to the worker's.
        """
        from repro.gaussians.fast_raster import (
            allocate_flat_arena,
            build_flat_fragments,
            rasterize_backward_flat,
            rasterize_flat_into,
        )
        from repro.gaussians.projection import project_gaussians
        from repro.gaussians.sorting import build_tile_lists

        if shared is None:
            shared = shared_preprocess(cloud, active_only=active_only)
        projected = project_gaussians(
            None, view.camera, view.pose_cw, active_only=active_only, shared=shared
        )
        intersections = build_tile_lists(projected, view.grid)
        fragments = build_flat_fragments(intersections)
        arena = allocate_flat_arena(fragments.n_fragments)
        fresh = rasterize_flat_into(
            projected, intersections, fragments, view.background, arena, 0
        )
        return rasterize_backward_flat(fresh, dL_dimage, dL_ddepth)

    def backward(
        self,
        result: "RenderResult",
        cloud: "GaussianCloud",
        dL_dimage: np.ndarray,
        dL_ddepth: "np.ndarray | None",
        compute_pose_gradient: bool,
    ) -> "CloudGradients":
        handle = getattr(result, "shard_info", None)
        if handle is None:
            if (
                getattr(result, "backend", None) == "sharded"
                and not result.tile_caches
                and not getattr(result, "shard_escalated", False)
            ):
                raise ShardWorkerError(
                    "sharded render result carries no worker handle (was it "
                    "copied or unpickled?); its backward pass cannot run"
                )
            # Escalated views (and plain flat results routed here) carry
            # parent-resident tile caches: run the local flat backward.
            from repro.engine.backends import _render_backward_core

            return _render_backward_core(
                "flat", result, cloud, dL_dimage, dL_ddepth, compute_pose_gradient
            )
        self._check_loss_shapes(result, dL_dimage, dL_ddepth)
        screen = None
        if handle.usable():
            screens, failed = self._shard_backward(
                [(handle, handle.view_index, dL_dimage, dL_ddepth)],
                {handle.view_index: result},
                [],
            )
            if handle.view_index not in failed:
                screen = screens[handle.view_index]
        if screen is None:
            # Worker quarantined, respawned (stale epoch), lost to an
            # in-batch redispatch, or failed mid-request: recompute locally.
            screen = self._recompute_backward_view(
                cloud, result, dL_dimage, dL_ddepth, handle.active_only
            )
        return preprocess_backward(screen, cloud, compute_pose_gradient=compute_pose_gradient)

    def backward_batch(
        self,
        batch: BatchRenderResult,
        cloud: "GaussianCloud",
        dL_dimages: "Sequence[np.ndarray]",
        dL_ddepths: "Sequence[np.ndarray | None] | None",
        compute_pose_gradient: bool,
    ) -> BatchGradients:
        from repro.gaussians.fast_raster import rasterize_backward_flat

        handles = [getattr(view, "shard_info", None) for view in batch.views]
        for view, handle in zip(batch.views, handles):
            if (
                handle is None
                and getattr(view, "backend", None) == "sharded"
                and not view.tile_caches
                and not getattr(view, "shard_escalated", False)
            ):
                raise ShardWorkerError(
                    "some views of this sharded batch carry no worker handle "
                    "(were they copied or unpickled?); its backward pass "
                    "cannot run"
                )
        if all(handle is None for handle in handles) and all(
            getattr(view, "backend", None) != "sharded" for view in batch.views
        ):
            # Serial-fallback batches (and flat batches routed here
            # explicitly) have parent-resident tile caches.
            return render_backward_batch_views(
                batch,
                cloud,
                dL_dimages,
                dL_ddepths,
                compute_pose_gradient=compute_pose_gradient,
            )
        dL_dimages = list(dL_dimages)
        if len(dL_dimages) != batch.n_views:
            raise ValueError(
                f"got {len(dL_dimages)} image gradients for {batch.n_views} views"
            )
        if dL_ddepths is None:
            dL_ddepths = [None] * batch.n_views
        else:
            dL_ddepths = list(dL_ddepths)
            if len(dL_ddepths) != batch.n_views:
                raise ValueError(
                    f"got {len(dL_ddepths)} depth gradients for {batch.n_views} views"
                )
        for view, dL_dimage, dL_ddepth in zip(batch.views, dL_dimages, dL_ddepths):
            self._check_loss_shapes(view, dL_dimage, dL_ddepth)

        sharding = getattr(batch, "sharding", None)
        fault_log: list[dict] = (
            sharding.fault_events if sharding is not None else []
        )
        # Partition: worker-resident views run Step 4 where the tile caches
        # live; escalated/local views run it here; views whose worker state
        # is gone (stale handle, in-batch supersession, mid-request fault)
        # recompute here — same gradients, different path.
        worker_entries = []
        recompute: list[int] = []
        screens: dict[int, object] = {}
        for index, (view, handle, dL_dimage, dL_ddepth) in enumerate(
            zip(batch.views, handles, dL_dimages, dL_ddepths)
        ):
            if handle is None:
                screens[index] = rasterize_backward_flat(view, dL_dimage, dL_ddepth)
            elif handle.usable():
                worker_entries.append((handle, index, dL_dimage, dL_ddepth))
            else:
                fault_log.append(
                    {
                        "event": "stale-handle",
                        "worker": handle.worker_id,
                        "phase": "backward",
                        "views": [index],
                        "detail": (
                            "worker state lost (quarantine/respawn/supersession); "
                            "recomputing backward in the parent"
                        ),
                    }
                )
                recompute.append(index)
        if worker_entries:
            worker_screens, failed = self._shard_backward(
                worker_entries, batch.views, fault_log
            )
            screens.update(worker_screens)
            recompute.extend(failed)
        if recompute:
            shared = shared_preprocess(
                cloud, active_only=worker_entries[0][0].active_only
                if worker_entries
                else next(
                    handle.active_only for handle in handles if handle is not None
                ),
            )
            for index in sorted(set(recompute)):
                handle = handles[index]
                screens[index] = self._recompute_backward_view(
                    cloud,
                    batch.views[index],
                    dL_dimages[index],
                    dL_ddepths[index],
                    handle.active_only,
                    shared,
                )
        if sharding is not None and recompute:
            quarantined = {
                event["worker"]
                for event in fault_log
                if event["phase"] == "backward"
                and event["event"] in ("died", "timeout", "poisoned", "send-failed")
            }
            sharding.fault_quarantined_workers = sorted(
                set(sharding.fault_quarantined_workers) | quarantined
            )

        screen = [screens[index] for index in range(batch.n_views)]
        cloud_grads, per_view_twists = preprocess_backward_batch(
            screen, cloud, compute_pose_gradient=compute_pose_gradient
        )
        return BatchGradients(
            cloud=cloud_grads, screen=screen, per_view_pose_twists=per_view_twists
        )

    @staticmethod
    def _check_loss_shapes(result, dL_dimage, dL_ddepth) -> None:
        """Parent-side mirror of the backward shape checks (clean ValueError)."""
        dL_dimage = np.asarray(dL_dimage)
        if dL_dimage.shape != result.image.shape:
            raise ValueError(
                f"dL_dimage shape {dL_dimage.shape} does not match image "
                f"{result.image.shape}"
            )
        if dL_ddepth is not None:
            dL_ddepth = np.asarray(dL_ddepth)
            if dL_ddepth.shape != result.depth.shape:
                raise ValueError(
                    f"dL_ddepth shape {dL_ddepth.shape} does not match depth "
                    f"{result.depth.shape}"
                )


register_backend("sharded", ShardedBackend)
