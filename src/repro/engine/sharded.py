"""``sharded``: multi-process execution of the batched render plan.

The mapping workload is embarrassingly parallel across the views of a
keyframe window, and the plan/execute split in :mod:`repro.gaussians.batch`
makes that parallelism explicit: :func:`~repro.gaussians.batch.plan_batch_views`
runs the shared per-Gaussian Step 1 and the per-view Step 1-2 once in the
parent process and emits self-contained work units; this module executes
those *same* units across a persistent pool of worker processes, so the
sharded batch is bit-identical to the flat backend's serial execution by
construction.

Execution model
---------------

* **Pool** — a lazily started, spawn-safe pool of ``shard_workers``
  processes (``EngineConfig(shard_workers=N)`` / ``REPRO_SHARD_WORKERS``;
  unset sizes it from ``os.cpu_count()``).  Pools are shared process-wide per
  worker count, each worker seeded deterministically via
  :func:`repro.utils.random.derive_seed` so sharded runs are reproducible
  regardless of scheduling order.  Worker BLAS pools are pinned to one
  thread at spawn so shards do not oversubscribe the cores they were created
  to use.
* **Forward** — the planner's per-view Step 1-2 products (projected
  Gaussians, tile layout) are packed into one
  :mod:`multiprocessing.shared_memory` block per batch instead of being
  re-pickled per view; workers map it read-only, rasterize their views into
  worker-local arenas, and write the small forward outputs (image, depth,
  alpha, fragment counts) back into the same block.  The parent stitches
  per-view :class:`~repro.gaussians.rasterizer.RenderResult` objects in view
  order, attaching per-shard attribution
  (:class:`~repro.gaussians.batch.ShardAttribution`).
* **Backward** — each worker retains the per-fragment tile caches of the
  views it rendered, so Step 4 *Rendering BP* runs in parallel where the
  data already lives; workers return screen-space gradients (per-visible-
  Gaussian, small) and the parent runs the one fused Step 5 pass
  (:func:`~repro.gaussians.backward.preprocess_backward_batch`) exactly as
  the flat backend does.
* **Degradation** — ``workers <= 1``, single-view batches, geometry-cache
  batches (cache entries are parent-resident) and platforms whose spawn
  fails all fall back to the serial flat execution of the same plan.  A
  worker that dies or errors mid-batch raises :class:`ShardWorkerError`
  with the worker's traceback — a clean error, never a hang — and the
  shared pool is discarded so the next batch starts fresh.

Sharded per-view results carry no parent-side tile caches (those are
worker-resident); their backward pass must run through the engine/backend
that produced them, which routes it to the owning worker.
"""

from __future__ import annotations

import atexit
import itertools
import os
import time
import traceback
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.engine.registry import (
    BackendCapabilities,
    BatchRenderRequest,
    RenderRequest,
    register_backend,
)
from repro.gaussians.backward import preprocess_backward, preprocess_backward_batch
from repro.gaussians.batch import (
    BatchGradients,
    BatchRenderResult,
    RenderPlan,
    ShardAttribution,
    ViewWorkUnit,
    execute_plan,
    plan_batch_views,
    render_backward_batch_views,
)
from repro.gaussians.fast_raster import rasterize_flat
from repro.utils.random import derive_seed

if TYPE_CHECKING:
    from repro.engine.config import EngineConfig
    from repro.gaussians.backward import CloudGradients, ScreenSpaceGradients
    from repro.gaussians.gaussian_model import GaussianCloud
    from repro.gaussians.rasterizer import RenderResult

# Pool sizing/behaviour knobs.  The default worker count is cpu-count aware
# but capped: mapping windows rarely exceed a handful of views, so more
# workers than views only cost spawn time and memory.
DEFAULT_MAX_WORKERS = 8
_READY_TIMEOUT_S = 120.0
_REQUEST_TIMEOUT_S = 600.0
# Worker-retained batches (each holds its views' tile caches + the mapped
# input block).  Two tolerates an interleaved second engine without letting a
# long run accumulate arenas.
_MAX_RETAINED_BATCHES = 2
_SHM_ALIGN = 64

_TOKENS = itertools.count(1)

# Per-view projected arrays shipped to workers: exactly what Step 3 forward
# and Step 4 backward read.  The Step 5 inputs (Jacobians, 3D covariances,
# camera-frame points) stay in the parent, which runs the fused Step 5.
_PROJECTED_FIELDS = ("indices", "means2d", "depths", "conics", "opacities", "colors")


class ShardWorkerError(RuntimeError):
    """A shard worker died, timed out, or reported an error mid-request."""


# -- shared-memory packing ----------------------------------------------------
class _ShmLayout:
    """Builds one shared-memory block from copied-in arrays and reservations."""

    def __init__(self) -> None:
        self.size = 0
        self._pending: list[tuple[int, np.ndarray]] = []

    def reserve(self, shape: tuple[int, ...], dtype) -> tuple[int, str, tuple[int, ...]]:
        """Reserve an aligned region; returns its (offset, dtype, shape) spec."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        offset = self.size
        self.size += -(-nbytes // _SHM_ALIGN) * _SHM_ALIGN
        return (offset, dtype.str, tuple(int(dim) for dim in shape))

    def add(self, array: np.ndarray) -> tuple[int, str, tuple[int, ...]]:
        """Schedule ``array`` to be copied into the block; returns its spec."""
        array = np.ascontiguousarray(array)
        spec = self.reserve(array.shape, array.dtype)
        self._pending.append((spec[0], array))
        return spec

    def create(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(self.size, 1))
        for offset, array in self._pending:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset)
            view[...] = array
            del view
        self._pending.clear()
        return shm


def _shm_view(shm, spec: tuple[int, str, tuple[int, ...]]) -> np.ndarray:
    offset, dtype, shape = spec
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)


def _attach_shm(name: str):
    """Attach to an existing block without registering with the tracker.

    The parent owns every block's lifetime (it created and will unlink it);
    before 3.13 (``track=False``) a child attach also registers with the
    *shared* resource tracker, whose duplicate-unregister complaints are pure
    noise — suppress the registration instead.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def _unit_payload(unit: ViewWorkUnit, layout: _ShmLayout) -> dict:
    """Describe one work unit for a worker: small metadata + shm array specs."""
    projected = unit.projected
    camera = projected.camera
    height, width = camera.height, camera.width
    return {
        "index": unit.index,
        "camera": camera,
        "pose_cw": projected.pose_cw,
        "background": unit.background,
        "tile_size": unit.tile_size,
        "subtile_size": unit.subtile_size,
        "tile_slices": list(unit.fragments.tile_slices),
        "n_fragments": unit.fragments.n_fragments,
        "max_per_pixel": unit.fragments.max_per_pixel,
        "arrays": {
            name: layout.add(getattr(projected, name)) for name in _PROJECTED_FIELDS
        },
        "tile_rows": [layout.add(rows) for rows in unit.fragments.tile_rows],
        "tile_pixel_lin": [layout.add(lin) for lin in unit.fragments.tile_pixel_lin],
        "outputs": {
            "image": layout.reserve((height, width, 3), np.float64),
            "depth": layout.reserve((height, width), np.float64),
            "alpha": layout.reserve((height, width), np.float64),
            "fragments_per_pixel": layout.reserve((height, width), np.int64),
        },
    }


# -- worker process ------------------------------------------------------------
def _rebuild_view_inputs(meta: dict, shm):
    """Reconstruct the rasterization inputs of one work unit from shared memory.

    The rebuilt :class:`ProjectedGaussians` carries only the fields Step 3/4
    read (plus zero-row placeholders for the Step 5 inputs that never leave
    the parent), backed zero-copy by the mapped block.
    """
    from repro.gaussians.fast_raster import FlatFragments
    from repro.gaussians.projection import ProjectedGaussians
    from repro.gaussians.sorting import TileIntersections
    from repro.gaussians.tiling import TileGrid

    arrays = {name: _shm_view(shm, spec) for name, spec in meta["arrays"].items()}
    projected = ProjectedGaussians(
        indices=arrays["indices"],
        means2d=arrays["means2d"],
        depths=arrays["depths"],
        cov2d=np.zeros((0, 2, 2)),
        conics=arrays["conics"],
        radii=np.zeros(0),
        colors=arrays["colors"],
        opacities=arrays["opacities"],
        points_cam=np.zeros((0, 3)),
        jacobians=np.zeros((0, 2, 3)),
        cov3d=np.zeros((0, 3, 3)),
        rotation_cw=np.eye(3),
        camera=meta["camera"],
        pose_cw=meta["pose_cw"],
    )
    camera = meta["camera"]
    grid = TileGrid(camera.width, camera.height, meta["tile_size"], meta["subtile_size"])
    intersections = TileIntersections(grid=grid, per_tile=[], projected=projected)
    fragments = FlatFragments(
        width=camera.width,
        tile_slices=[tuple(entry) for entry in meta["tile_slices"]],
        tile_rows=[_shm_view(shm, spec) for spec in meta["tile_rows"]],
        tile_pixel_lin=[_shm_view(shm, spec) for spec in meta["tile_pixel_lin"]],
        n_fragments=meta["n_fragments"],
        max_per_pixel=meta["max_per_pixel"],
    )
    return projected, intersections, fragments


class _WorkerContext:
    """Per-worker persistent state: retained batches and recycled arenas.

    Arenas rotate over ``_MAX_RETAINED_BATCHES`` slots and grow-only recycle
    (the worker-side mirror of the parent's ``ensure_flat_arena`` recycling):
    reusing a slot's warm, already-faulted pages instead of allocating a
    fresh arena per batch, while guaranteeing a retained batch's tile caches
    are never overwritten — the batch occupying a slot is dropped before its
    arena is reused, which also bounds retention to the slot count.
    """

    def __init__(self) -> None:
        self.batches: OrderedDict = OrderedDict()  # token -> (results, shm, slot)
        self.arenas: dict[int, object] = {}  # slot -> FlatArena
        self.render_count = 0


def _worker_handle_render(ctx: _WorkerContext, payload) -> tuple:
    from repro.gaussians.fast_raster import ensure_flat_arena, rasterize_flat_into

    token, shm_name, unit_metas = payload
    shm = _attach_shm(shm_name)
    try:
        slot = ctx.render_count % _MAX_RETAINED_BATCHES
        ctx.render_count += 1
        for stale_token, (_, _, used_slot) in list(ctx.batches.items()):
            if used_slot == slot:
                _worker_drop_batch(ctx, stale_token)
        arena = ensure_flat_arena(
            ctx.arenas.get(slot), sum(meta["n_fragments"] for meta in unit_metas)
        )
        ctx.arenas[slot] = arena
        results: dict[int, object] = {}
        timings: list[tuple[int, float]] = []
        base = 0
        for meta in unit_metas:
            start = time.perf_counter()
            projected, intersections, fragments = _rebuild_view_inputs(meta, shm)
            result = rasterize_flat_into(
                projected, intersections, fragments, meta["background"], arena, base
            )
            base += fragments.n_fragments
            outputs = meta["outputs"]
            _shm_view(shm, outputs["image"])[...] = result.image
            _shm_view(shm, outputs["depth"])[...] = result.depth
            _shm_view(shm, outputs["alpha"])[...] = result.alpha
            _shm_view(shm, outputs["fragments_per_pixel"])[...] = result.fragments_per_pixel
            results[meta["index"]] = result
            timings.append((meta["index"], time.perf_counter() - start))
    except BaseException:
        # The batch never registered in ctx.batches, so nothing would ever
        # reclaim the mapping; drop every local that references it, then
        # close it before the error reply goes out (worker-reported errors
        # keep this worker alive and reusable).
        results = result = projected = intersections = fragments = None
        del results, result, projected, intersections, fragments
        try:
            shm.close()
        except BufferError:
            pass
        raise
    # Retain this batch's state (tile caches + mapped inputs) for its
    # backward pass.
    ctx.batches[token] = (results, shm, slot)
    return ("ok", timings)


def _worker_handle_backward(ctx: _WorkerContext, payload) -> tuple:
    from repro.gaussians.fast_raster import rasterize_backward_flat

    token, shm_name, items = payload
    entry = ctx.batches.get(token)
    if entry is None:
        raise RuntimeError(
            f"batch {token} is no longer resident in this worker (evicted after "
            f"{_MAX_RETAINED_BATCHES} newer batches); run the backward pass before "
            "rendering further batches"
        )
    results = entry[0]
    shm = _attach_shm(shm_name)
    try:
        replies = []
        for view_index, image_spec, depth_spec in items:
            start = time.perf_counter()
            dL_dimage = _shm_view(shm, image_spec)
            dL_ddepth = None if depth_spec is None else _shm_view(shm, depth_spec)
            screen = rasterize_backward_flat(results[view_index], dL_dimage, dL_ddepth)
            # trace.fragments_per_pixel is a copy of the forward counts the
            # parent already holds (stitched from this very render), so it
            # is rebuilt parent-side instead of pickled back per view.
            replies.append(
                (
                    view_index,
                    screen.colors,
                    screen.opacities,
                    screen.means2d,
                    screen.conics,
                    screen.depths,
                    screen.trace.tile_ids,
                    screen.trace.per_tile_source_indices,
                    screen.trace.per_tile_pixel_counts,
                    time.perf_counter() - start,
                )
            )
            del dL_dimage, dL_ddepth
        return ("ok", replies)
    finally:
        try:
            shm.close()
        except BufferError:
            pass


def _worker_drop_batch(ctx: _WorkerContext, token: int) -> None:
    results, shm, _slot = ctx.batches.pop(token)
    # Drop every reference into the mapped block before closing it; a stray
    # exported buffer just leaves the mapping to die with the process.  The
    # slot's arena is kept for recycling.
    results.clear()
    del results
    try:
        shm.close()
    except BufferError:
        pass


def _worker_main(conn, worker_id: int, seed_base: int | None) -> None:
    """Entry point of one shard worker (spawn-safe: importable top-level)."""
    seed = derive_seed(seed_base, worker_id)
    np.random.seed(seed % 2**32)
    # Deterministic per-worker generator for any stochastic kernel a future
    # backend feature runs shard-side.
    globals()["_WORKER_RNG"] = np.random.default_rng(seed)
    ctx = _WorkerContext()
    conn.send(("ready", worker_id))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        command = message[0]
        if command == "shutdown":
            break
        try:
            if command == "render":
                reply = _worker_handle_render(ctx, message[1])
            elif command == "backward":
                reply = _worker_handle_backward(ctx, message[1])
            elif command == "ping":
                reply = ("ok", worker_id)
            else:
                raise ValueError(f"unknown shard command {command!r}")
        except BaseException:
            reply = ("error", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, EOFError, OSError):
            break
    for token in list(ctx.batches):
        _worker_drop_batch(ctx, token)


# -- pool ----------------------------------------------------------------------
_BLAS_ENV_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS")


@contextmanager
def _single_threaded_blas_for_children():
    """Pin child BLAS pools to one thread (workers parallelise across shards).

    The variables are set around ``Process.start()`` only — spawn snapshots
    the environment at exec — and restored so the parent keeps its own BLAS
    configuration.  Explicit user settings are left untouched.
    """
    previous = {name: os.environ.get(name) for name in _BLAS_ENV_VARS}
    for name in _BLAS_ENV_VARS:
        os.environ.setdefault(name, "1")
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@dataclass
class _Worker:
    process: object
    conn: object
    worker_id: int


class ShardedPool:
    """Persistent pool of spawn-started shard workers with pipe transports."""

    def __init__(
        self,
        n_workers: int,
        seed_base: int | None = None,
        start_timeout: float = _READY_TIMEOUT_S,
    ):
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        self.n_workers = int(n_workers)
        self.seed_base = seed_base
        self._broken = False
        self._workers: list[_Worker] = []
        try:
            with _single_threaded_blas_for_children():
                for worker_id in range(self.n_workers):
                    parent_conn, child_conn = context.Pipe()
                    process = context.Process(
                        target=_worker_main,
                        args=(child_conn, worker_id, seed_base),
                        name=f"repro-shard-{worker_id}",
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    self._workers.append(_Worker(process, parent_conn, worker_id))
            for worker in self._workers:
                reply = self._receive(worker, timeout=start_timeout)
                if reply != ("ready", worker.worker_id):
                    raise ShardWorkerError(
                        f"shard worker {worker.worker_id} sent unexpected handshake "
                        f"{reply!r}"
                    )
        except BaseException:
            self.close()
            raise

    @property
    def broken(self) -> bool:
        """True once any worker died/timed out; the pool must be replaced."""
        return self._broken

    def request_all(self, messages: dict[int, tuple]) -> dict[int, tuple]:
        """Send one message per worker id, then gather every reply.

        All sends complete before the first receive so the shards execute
        concurrently.  A dead, hung or erroring worker raises
        :class:`ShardWorkerError`; pool-level failures (death/timeout) mark
        the pool broken, worker-reported errors leave it usable — every
        healthy worker's reply is drained first so the pipes stay in sync
        for the next request.
        """
        for worker_id, message in messages.items():
            worker = self._workers[worker_id]
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError) as error:
                self._broken = True
                raise ShardWorkerError(
                    f"shard worker {worker_id} is gone (send failed: {error})"
                ) from None
        replies: dict[int, tuple] = {}
        first_error: ShardWorkerError | None = None
        for worker_id in messages:
            try:
                replies[worker_id] = self._receive(self._workers[worker_id])
            except ShardWorkerError as error:
                if self._broken:
                    # Death/timeout desynchronises the pipes regardless; the
                    # pool is done for, so stop draining.
                    raise
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return replies

    def _receive(self, worker: _Worker, timeout: float = _REQUEST_TIMEOUT_S) -> tuple:
        deadline = time.monotonic() + timeout
        while not worker.conn.poll(0.02):
            if not worker.process.is_alive():
                self._broken = True
                raise ShardWorkerError(
                    f"shard worker {worker.worker_id} died before replying "
                    f"(exit code {worker.process.exitcode})"
                )
            if time.monotonic() > deadline:
                self._broken = True
                raise ShardWorkerError(
                    f"shard worker {worker.worker_id} did not reply within "
                    f"{timeout:.0f}s"
                )
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError) as error:
            self._broken = True
            raise ShardWorkerError(
                f"shard worker {worker.worker_id} hung up mid-reply: {error}"
            ) from None
        if reply and reply[0] == "error":
            raise ShardWorkerError(
                f"shard worker {worker.worker_id} failed:\n{reply[1]}"
            )
        return reply

    def close(self) -> None:
        """Shut every worker down; terminate any that do not exit promptly."""
        for worker in self._workers:
            try:
                worker.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            worker.conn.close()
        self._workers.clear()
        self._broken = True


# Pools are shared process-wide per (worker count, seed): spawn + numpy import
# costs seconds per worker, and every engine pinned to the same configuration
# can safely share workers because batch state is token-keyed.
_POOLS: dict[tuple[int, int | None], ShardedPool] = {}


def _shared_pool(n_workers: int, seed_base: int | None = None) -> ShardedPool:
    key = (n_workers, seed_base)
    pool = _POOLS.get(key)
    if pool is not None and pool.broken:
        pool.close()
        del _POOLS[key]
        pool = None
    if pool is None:
        pool = ShardedPool(n_workers, seed_base=seed_base)
        _POOLS[key] = pool
    return pool


def _discard_pool(pool: ShardedPool) -> None:
    for key, candidate in list(_POOLS.items()):
        if candidate is pool:
            del _POOLS[key]
    pool.close()


def shutdown_shard_pools() -> None:
    """Terminate every shared shard pool (idempotent; re-created on next use)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_shard_pools)


# -- the backend ---------------------------------------------------------------
@dataclass
class _ShardHandle:
    """Links a parent-side view result to the worker holding its tile caches."""

    pool: ShardedPool
    token: int
    worker_id: int
    view_index: int


def default_shard_workers() -> int:
    """The cpu-count-aware worker default used when ``shard_workers`` is unset."""
    return max(1, min(os.cpu_count() or 1, DEFAULT_MAX_WORKERS))


class ShardedBackend:
    """Multi-process execution of the flat batch plan behind the backend seam.

    Capabilities are honest: batches yes, geometry cache no — cache entries
    (and their refinement state) are parent-resident, so cached batches and
    single-view renders run the serial flat path unchanged.  Only genuinely
    multi-view uncached batches are sharded.
    """

    name = "sharded"

    def __init__(self, config: "EngineConfig"):
        self.config = config
        self._unavailable_reason: str | None = None

    # -- capabilities / sizing ----------------------------------------------
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            supports_batch=True,
            supports_cache=False,
            reference=False,
            description=(
                "multi-process sharded execution of the flat batch plan "
                "(repro.engine.sharded)"
            ),
        )

    def resolved_workers(self) -> int:
        """Worker count after applying the config/env knob and the cpu default."""
        if self.config.shard_workers is not None:
            return self.config.shard_workers
        return default_shard_workers()

    def availability(self) -> str | None:
        """Machine-readable reason this backend cannot genuinely shard, or ``None``.

        Sharding needs at least two worker processes; fewer (an explicit
        ``shard_workers``/``REPRO_SHARD_WORKERS`` of 0/1, or a single-core
        host sizing the default pool) means every batch would silently run
        the serial flat path — honest harnesses skip instead.  A latched
        spawn failure is also reported.
        """
        workers = self.resolved_workers()
        if workers < 2:
            source = (
                "shard_workers knob" if self.config.shard_workers is not None else "cpu default"
            )
            return f"workers:{workers}<2 ({source}, cpu_count={os.cpu_count()})"
        if self._unavailable_reason is not None:
            return f"spawn-failed:{self._unavailable_reason}"
        return None

    def _pool_for(self, n_views: int) -> ShardedPool | None:
        """The pool to shard over, or ``None`` when serial execution is right.

        Spawn failures (platforms without working process support) latch the
        backend into serial mode; runtime worker failures do *not* — they
        raise and the next batch retries with a fresh pool.
        """
        workers = self.resolved_workers()
        if workers <= 1 or n_views <= 1 or self._unavailable_reason is not None:
            return None
        try:
            return _shared_pool(workers)
        except Exception as error:  # spawn unsupported/failed: degrade for good
            self._unavailable_reason = f"{type(error).__name__}: {error}"
            import warnings

            warnings.warn(
                "the sharded render backend could not start its worker pool "
                f"({self._unavailable_reason}); this engine's batches will run "
                "on the serial flat path from now on",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    # -- forward -------------------------------------------------------------
    def render(self, request: RenderRequest) -> "RenderResult":
        # Single views gain nothing from sharding; run the flat fast path
        # (cache/precomputed dispatch included) so the result keeps its tile
        # caches and its backward pass stays local.
        return rasterize_flat(
            request.cloud,
            request.camera,
            request.pose_cw,
            background=request.background,
            tile_size=request.tile_size,
            subtile_size=request.subtile_size,
            active_only=request.active_only,
            precomputed=request.precomputed,
            cache=request.cache,
        )

    def render_batch(self, request: BatchRenderRequest) -> BatchRenderResult:
        plan = plan_batch_views(
            request.cloud,
            request.cameras,
            request.poses_cw,
            backgrounds=request.backgrounds,
            tile_size=request.tile_size,
            subtile_size=request.subtile_size,
            active_only=request.active_only,
            cache=request.cache,
        )
        pool = None if plan.cache is not None else self._pool_for(plan.n_views)
        if pool is None:
            return execute_plan(plan, arena=request.arena)
        try:
            return self._execute_sharded(plan, pool, request.arena)
        except ShardWorkerError:
            # Only a pool-level failure (worker death/timeout) requires a
            # respawn; a worker-*reported* error leaves the pool — and every
            # other batch's worker-resident state — intact.
            if pool.broken:
                _discard_pool(pool)
            raise

    def _execute_sharded(
        self, plan: RenderPlan, pool: ShardedPool, arena
    ) -> BatchRenderResult:
        from repro.gaussians.rasterizer import RenderResult

        token = next(_TOKENS)
        n_active = min(pool.n_workers, plan.n_views)
        worker_of = {unit.index: unit.index % n_active for unit in plan.units}

        dispatch_start = time.perf_counter()
        layout = _ShmLayout()
        metas = [_unit_payload(unit, layout) for unit in plan.units]
        shm = layout.create()
        try:
            messages = {
                worker_id: (
                    "render",
                    (
                        token,
                        shm.name,
                        [metas[i] for i in sorted(worker_of) if worker_of[i] == worker_id],
                    ),
                )
                for worker_id in range(n_active)
            }
            dispatch_seconds = time.perf_counter() - dispatch_start

            shard_start = time.perf_counter()
            replies = pool.request_all(messages)
            shard_wall = time.perf_counter() - shard_start

            stitch_start = time.perf_counter()
            view_shard_seconds = [0.0] * plan.n_views
            worker_seconds = {worker_id: 0.0 for worker_id in range(n_active)}
            for worker_id, reply in replies.items():
                for view_index, seconds in reply[1]:
                    view_shard_seconds[view_index] = seconds
                    worker_seconds[worker_id] += seconds
            views: list[RenderResult] = []
            for unit, meta in zip(plan.units, metas):
                outputs = meta["outputs"]
                background = (
                    np.zeros(3)
                    if unit.background is None
                    else np.asarray(unit.background, dtype=np.float64).reshape(3)
                )
                view = RenderResult(
                    image=np.array(_shm_view(shm, outputs["image"])),
                    depth=np.array(_shm_view(shm, outputs["depth"])),
                    alpha=np.array(_shm_view(shm, outputs["alpha"])),
                    fragments_per_pixel=np.array(_shm_view(shm, outputs["fragments_per_pixel"])),
                    projected=unit.projected,
                    intersections=unit.intersections,
                    tile_caches=[],
                    camera=unit.projected.camera,
                    pose_cw=unit.projected.pose_cw,
                    background=background,
                    backend="sharded",
                )
                view.shard_info = _ShardHandle(
                    pool=pool,
                    token=token,
                    worker_id=worker_of[unit.index],
                    view_index=unit.index,
                )
                views.append(view)
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

        batch = BatchRenderResult(
            views=views,
            shared=plan.shared,
            # Workers own the arenas the views' tile caches live in; the
            # caller-supplied arena passes through untouched so a later
            # serial batch can still recycle it.
            arena=arena,
            shared_seconds=plan.shared_seconds,
            view_seconds=[
                unit.plan_seconds + view_shard_seconds[unit.index] for unit in plan.units
            ],
            sharding=ShardAttribution(
                n_workers=n_active,
                worker_ids=[worker_of[index] for index in range(plan.n_views)],
                view_shard_seconds=view_shard_seconds,
                worker_seconds=worker_seconds,
                dispatch_seconds=dispatch_seconds,
                stitch_seconds=time.perf_counter() - stitch_start,
                shard_wall_seconds=shard_wall,
            ),
        )
        return batch

    # -- backward ------------------------------------------------------------
    def _shard_backward(
        self,
        handles: "list[_ShardHandle]",
        view_results,
        items: list[tuple[int, np.ndarray, "np.ndarray | None"]],
    ) -> "list[ScreenSpaceGradients]":
        """Run Step 4 on the owning workers; returns per-view screen gradients.

        ``view_results`` maps each view index to its parent-side
        :class:`RenderResult` (list or dict): the screen gradients reattach
        the parent's ``projected`` and rebuild the trace's forward fragment
        counts from the stitched result instead of shipping them back.
        """
        from repro.gaussians.backward import GradientTrace, ScreenSpaceGradients

        pool = handles[0].pool
        token = handles[0].token
        # Loss gradients ship through one shared-memory block (a few MB per
        # view: pickling them over the pipes would serialise in the parent).
        layout = _ShmLayout()
        per_worker: dict[int, list] = {}
        for handle, (view_index, dL_dimage, dL_ddepth) in zip(handles, items):
            image_spec = layout.add(np.asarray(dL_dimage, dtype=np.float64))
            depth_spec = (
                None
                if dL_ddepth is None
                else layout.add(np.asarray(dL_ddepth, dtype=np.float64))
            )
            per_worker.setdefault(handle.worker_id, []).append(
                (view_index, image_spec, depth_spec)
            )
        shm = layout.create()
        try:
            messages = {
                worker_id: ("backward", (token, shm.name, worker_items))
                for worker_id, worker_items in per_worker.items()
            }
            try:
                replies = pool.request_all(messages)
            except ShardWorkerError:
                # See render_batch: recoverable worker-reported errors (e.g.
                # an evicted batch) must not tear down the shared pool.
                if pool.broken:
                    _discard_pool(pool)
                raise
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        screen_by_view: dict[int, ScreenSpaceGradients] = {}
        for reply in replies.values():
            for (
                view_index,
                colors,
                opacities,
                means2d,
                conics,
                depths,
                trace_tile_ids,
                trace_sources,
                trace_counts,
                _seconds,
            ) in reply[1]:
                view_result = view_results[view_index]
                screen_by_view[view_index] = ScreenSpaceGradients(
                    projected=view_result.projected,
                    colors=colors,
                    opacities=opacities,
                    means2d=means2d,
                    conics=conics,
                    depths=depths,
                    trace=GradientTrace(
                        tile_ids=list(trace_tile_ids),
                        per_tile_source_indices=list(trace_sources),
                        per_tile_pixel_counts=list(trace_counts),
                        fragments_per_pixel=view_result.fragments_per_pixel.copy(),
                    ),
                )
        return [screen_by_view[view_index] for view_index, _, _ in items]

    def backward(
        self,
        result: "RenderResult",
        cloud: "GaussianCloud",
        dL_dimage: np.ndarray,
        dL_ddepth: "np.ndarray | None",
        compute_pose_gradient: bool,
    ) -> "CloudGradients":
        handle = getattr(result, "shard_info", None)
        if handle is None:
            if getattr(result, "backend", None) == "sharded":
                raise ShardWorkerError(
                    "sharded render result carries no worker handle (was it "
                    "copied or unpickled?); its backward pass cannot run"
                )
            from repro.engine.backends import _render_backward_core

            return _render_backward_core(
                "flat", result, cloud, dL_dimage, dL_ddepth, compute_pose_gradient
            )
        self._check_loss_shapes(result, dL_dimage, dL_ddepth)
        screen = self._shard_backward(
            [handle], {handle.view_index: result},
            [(handle.view_index, dL_dimage, dL_ddepth)],
        )[0]
        return preprocess_backward(screen, cloud, compute_pose_gradient=compute_pose_gradient)

    def backward_batch(
        self,
        batch: BatchRenderResult,
        cloud: "GaussianCloud",
        dL_dimages: "Sequence[np.ndarray]",
        dL_ddepths: "Sequence[np.ndarray | None] | None",
        compute_pose_gradient: bool,
    ) -> BatchGradients:
        handles = [getattr(view, "shard_info", None) for view in batch.views]
        if all(handle is None for handle in handles):
            # Serial-fallback batches (and flat batches routed here
            # explicitly) have parent-resident tile caches.
            return render_backward_batch_views(
                batch,
                cloud,
                dL_dimages,
                dL_ddepths,
                compute_pose_gradient=compute_pose_gradient,
            )
        if any(handle is None for handle in handles):
            raise ShardWorkerError(
                "some views of this sharded batch carry no worker handle (were "
                "they copied or unpickled?); its backward pass cannot run"
            )
        dL_dimages = list(dL_dimages)
        if len(dL_dimages) != batch.n_views:
            raise ValueError(
                f"got {len(dL_dimages)} image gradients for {batch.n_views} views"
            )
        if dL_ddepths is None:
            dL_ddepths = [None] * batch.n_views
        else:
            dL_ddepths = list(dL_ddepths)
            if len(dL_ddepths) != batch.n_views:
                raise ValueError(
                    f"got {len(dL_ddepths)} depth gradients for {batch.n_views} views"
                )
        for view, dL_dimage, dL_ddepth in zip(batch.views, dL_dimages, dL_ddepths):
            self._check_loss_shapes(view, dL_dimage, dL_ddepth)

        screen = self._shard_backward(
            handles,
            batch.views,
            list(zip(range(batch.n_views), dL_dimages, dL_ddepths)),
        )
        cloud_grads, per_view_twists = preprocess_backward_batch(
            screen, cloud, compute_pose_gradient=compute_pose_gradient
        )
        return BatchGradients(
            cloud=cloud_grads, screen=screen, per_view_pose_twists=per_view_twists
        )

    @staticmethod
    def _check_loss_shapes(result, dL_dimage, dL_ddepth) -> None:
        """Parent-side mirror of the backward shape checks (clean ValueError)."""
        dL_dimage = np.asarray(dL_dimage)
        if dL_dimage.shape != result.image.shape:
            raise ValueError(
                f"dL_dimage shape {dL_dimage.shape} does not match image "
                f"{result.image.shape}"
            )
        if dL_ddepth is not None:
            dL_ddepth = np.asarray(dL_ddepth)
            if dL_ddepth.shape != result.depth.shape:
                raise ValueError(
                    f"dL_ddepth shape {dL_ddepth.shape} does not match depth "
                    f"{result.depth.shape}"
                )


register_backend("sharded", ShardedBackend)
