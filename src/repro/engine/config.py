"""Engine configuration: every rendering knob in one owned, validated object.

Before the engine rework these knobs were spread over a module-global default
backend seeded by ``REPRO_RASTER_BACKEND``, a ``REPRO_GEOM_CACHE`` read in
``repro.gaussians.geom_cache``, and per-call ``tile_size=`` / ``subtile_size=``
threading at every render site.  :class:`EngineConfig` consolidates them, and
:meth:`EngineConfig.from_env` is the single place environment variables are
parsed and validated.

Environment variables (the full table also lives in the README):

======================== ====================================================
``REPRO_RASTER_BACKEND`` Backend name: ``flat`` (default fast path), ``tile``
                         (reference loop) or any name registered through
                         :func:`repro.engine.register_backend`.
``REPRO_GEOM_CACHE``     ``0`` / ``false`` / ``off`` disables the
                         engine-owned Step 1-2 geometry cache (default on).
``REPRO_TILE_SIZE``      Tile edge in pixels (default 16).
``REPRO_SUBTILE_SIZE``   Subtile edge in pixels (default 4; must divide the
                         tile edge).
``REPRO_SHARD_WORKERS``  Worker processes of the ``sharded`` backend.  Unset
                         sizes the pool from ``os.cpu_count()``; ``0`` or
                         ``1`` degrade sharded batches to the serial flat
                         path.  Must be a non-negative integer.  Composes
                         with the cache knobs: with the geometry cache on,
                         sharded batches keep worker-resident cache entries
                         (one cache per worker), so both knobs apply to the
                         same render.
``REPRO_GEOM_CACHE_POSE_QUANTUM``
                         Pose quantisation step for geometry-cache keys
                         (default 0 = off).  When > 0, cached entries are
                         keyed by the pose rounded to this step, so small
                         cross-window tracking deltas re-key onto the
                         existing entry and reuse it through the toleranced
                         stale-geometry tier instead of rebuilding.  Requires
                         a non-zero ``cache_tolerance_px``.
``REPRO_SHARD_RETRIES``  Redispatch rounds the sharded backend attempts for
                         views lost to a dead/hung/poisoned worker before
                         escalating them to serial flat execution in the
                         parent (default 2; 0 escalates immediately).  Must
                         be a non-negative integer.
``REPRO_SHARD_DEADLINE_S``
                         Base per-dispatch reply deadline in seconds for
                         sharded requests (default 600).  A worker that has
                         not replied by the deadline is quarantined and its
                         views redispatched.  Must be a positive number.
``REPRO_SHARD_BACKOFF_S``
                         Additive deadline growth per redispatch round in
                         seconds (default 30): round *r* waits
                         ``deadline + r * backoff``, so genuinely slow
                         workers get more headroom before the serial
                         escalation.  Must be a non-negative number.
``REPRO_SHARD_FAULTS``   Deterministic fault-injection plan for the sharded
                         backend (test/chaos-CI only; see
                         :mod:`repro.engine.faults` for the grammar).  Not
                         an :class:`EngineConfig` field — it is read by the
                         backend at dispatch time.
``REPRO_SERVICE_MAX_SESSIONS``
                         Admission-control cap on concurrently open
                         :class:`repro.service.RenderService` sessions
                         (default 8).  Opening one more raises
                         :class:`repro.service.AdmissionError`.  Must be a
                         positive integer.
``REPRO_SERVICE_CACHE_BUDGET``
                         Global cross-session geometry-cache byte budget of
                         the render service (default 0 = unbounded).  When
                         the open sessions' caches exceed it, the service
                         evicts the globally least-recently-used entry —
                         whichever session owns it — until back under
                         budget.  Requires the geometry cache to be enabled.
                         Must be a non-negative integer.
``REPRO_SERVICE_FAIR_WEIGHTS``
                         Weighted-fair-queuing weights for service sessions.
                         Either one positive number (the default weight of
                         every session, e.g. ``2.5``) or comma-separated
                         ``session_id=weight`` pairs
                         (``mapper=4,tracker=1``); a session's share of the
                         shared pool is proportional to its weight.
``REPRO_ASYNC_PIPELINE`` ``1`` enables the asynchronous double-buffered
                         pipeline (default off): ``StreamingMapper``
                         speculates the next mapping window on the ``async``
                         backend's shadow arena while the parent finishes the
                         current one, and ``SLAMPipeline`` hides mapping
                         latency behind tracking (the tracker renders the
                         last *published* cloud snapshot while the mapper
                         optimises in the background).  Requires a
                         batch-capable backend (conflicts with
                         ``backend="tile"``) and a multi-process worker pool
                         (conflicts with ``shard_workers=0``).
``REPRO_ASYNC_DEPTH``    Speculation depth of the ``async`` backend (default
                         1): how many mapping windows may be planned ahead of
                         consumption, each against its own shadow arena.
                         Speculating beyond the depth raises
                         :class:`repro.engine.ArenaInUseError`.  Must be a
                         positive integer.
======================== ====================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Mapping

if TYPE_CHECKING:
    from repro.gaussians.geom_cache import GeomCacheConfig

ENV_RASTER_BACKEND = "REPRO_RASTER_BACKEND"
ENV_GEOM_CACHE = "REPRO_GEOM_CACHE"
ENV_TILE_SIZE = "REPRO_TILE_SIZE"
ENV_SUBTILE_SIZE = "REPRO_SUBTILE_SIZE"
ENV_SHARD_WORKERS = "REPRO_SHARD_WORKERS"
ENV_SHARD_RETRIES = "REPRO_SHARD_RETRIES"
ENV_SHARD_DEADLINE_S = "REPRO_SHARD_DEADLINE_S"
ENV_SHARD_BACKOFF_S = "REPRO_SHARD_BACKOFF_S"
ENV_CACHE_POSE_QUANTUM = "REPRO_GEOM_CACHE_POSE_QUANTUM"
ENV_SERVICE_MAX_SESSIONS = "REPRO_SERVICE_MAX_SESSIONS"
ENV_SERVICE_CACHE_BUDGET = "REPRO_SERVICE_CACHE_BUDGET"
ENV_SERVICE_FAIR_WEIGHTS = "REPRO_SERVICE_FAIR_WEIGHTS"
ENV_ASYNC_PIPELINE = "REPRO_ASYNC_PIPELINE"
ENV_ASYNC_DEPTH = "REPRO_ASYNC_DEPTH"

ENGINE_ENV_VARS = (
    ENV_RASTER_BACKEND,
    ENV_GEOM_CACHE,
    ENV_TILE_SIZE,
    ENV_SUBTILE_SIZE,
    ENV_SHARD_WORKERS,
    ENV_SHARD_RETRIES,
    ENV_SHARD_DEADLINE_S,
    ENV_SHARD_BACKOFF_S,
    ENV_CACHE_POSE_QUANTUM,
    ENV_SERVICE_MAX_SESSIONS,
    ENV_SERVICE_CACHE_BUDGET,
    ENV_SERVICE_FAIR_WEIGHTS,
    ENV_ASYNC_PIPELINE,
    ENV_ASYNC_DEPTH,
)

_FALSEY = ("0", "false", "off")


def geom_cache_enabled_from_env(env: Mapping[str, str] | None = None) -> bool:
    """Parse the ``REPRO_GEOM_CACHE`` escape hatch (default: enabled)."""
    env = os.environ if env is None else env
    return env.get(ENV_GEOM_CACHE, "1").lower() not in _FALSEY


def _int_from_env(env: Mapping[str, str], name: str, default: int) -> int:
    raw = env.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not a valid integer") from None


def _float_from_env(env: Mapping[str, str], name: str, default: float) -> float:
    raw = env.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not a valid number") from None


def _fair_weights_from_env(
    env: Mapping[str, str],
) -> tuple[float, tuple[tuple[str, float], ...]]:
    """Parse ``REPRO_SERVICE_FAIR_WEIGHTS``: ``(default weight, overrides)``.

    The grammar accepts one bare positive number (the default weight of every
    session) and/or comma-separated ``session_id=weight`` overrides; see the
    module docstring table.  Positivity and duplicate ids are validated by
    ``EngineConfig.__post_init__`` so directly-constructed configs get the
    same checks.
    """
    raw = env.get(ENV_SERVICE_FAIR_WEIGHTS)
    if raw is None or raw.strip() == "":
        return 1.0, ()
    default_weight = 1.0
    saw_default = False
    pairs: list[tuple[str, float]] = []
    for item in raw.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" in item:
            session_id, _, value = item.partition("=")
            session_id = session_id.strip()
            try:
                pairs.append((session_id, float(value)))
            except ValueError:
                raise ValueError(
                    f"{ENV_SERVICE_FAIR_WEIGHTS}={raw!r} has a non-numeric "
                    f"weight for session {session_id!r}; expected "
                    "'session_id=weight' pairs"
                ) from None
        else:
            if saw_default:
                raise ValueError(
                    f"{ENV_SERVICE_FAIR_WEIGHTS}={raw!r} names more than one "
                    "bare default weight; pass at most one number without a "
                    "'session_id=' prefix"
                )
            try:
                default_weight = float(item)
            except ValueError:
                raise ValueError(
                    f"{ENV_SERVICE_FAIR_WEIGHTS}={raw!r} is not a weight "
                    "number or a 'session_id=weight' list"
                ) from None
            saw_default = True
    return default_weight, tuple(pairs)


@dataclass(frozen=True)
class EngineConfig:
    """Immutable configuration of one :class:`repro.engine.RenderEngine`.

    ``backend=None`` means *follow the process default*
    (:func:`repro.gaussians.rasterizer.get_default_backend`, itself seeded by
    ``REPRO_RASTER_BACKEND``), resolved at render time so the legacy
    ``use_backend`` / ``set_default_backend`` scoping keeps working through a
    default-configured engine.  Naming a backend pins the engine to it.

    The ``cache_*`` knobs mirror
    :class:`repro.gaussians.geom_cache.GeomCacheConfig`; they only matter
    when ``geom_cache`` is true and the selected backend reports geometry
    cache support in its capabilities.

    ``profiling_sink``, when set, receives every
    :class:`repro.slam.records.WorkloadSnapshot` built through
    :meth:`RenderEngine.snapshot`.
    """

    backend: str | None = None
    tile_size: int = 16
    subtile_size: int = 4
    geom_cache: bool = True
    # Worker-process count of the ``sharded`` backend.  ``None`` sizes the
    # pool from ``os.cpu_count()`` at first use; ``0`` / ``1`` degrade
    # sharded batches to the serial flat path.
    shard_workers: int | None = None
    # Fault-tolerance policy of the ``sharded`` backend.  Views lost to a
    # dead, hung or poisoned worker are redispatched to the survivors for up
    # to ``shard_retry_limit`` rounds; round ``r`` waits
    # ``shard_deadline_s + r * shard_backoff_s`` for replies before
    # quarantining the laggard.  Views still unfinished after the last round
    # are escalated to serial flat execution in the parent, so a dispatched
    # batch always completes.
    shard_retry_limit: int = 2
    shard_deadline_s: float = 600.0
    shard_backoff_s: float = 30.0
    cache_tolerance_px: float = 0.5
    cache_refine_margin: float = 8.0
    cache_termination_margin: float = 0.25
    cache_max_entries: int = 8
    # Pose quantisation step for cache keys (0 disables).  Entries built at a
    # nearby pose re-key onto the same quantised bucket and are served through
    # the toleranced stale-geometry tier, so cross-window tracking deltas
    # smaller than the quantum reuse cached geometry instead of rebuilding.
    cache_pose_quantum: float = 0.0
    # Multi-tenant render-service knobs (repro.service.RenderService).  They
    # only matter for engines owned by a service: admission cap on open
    # sessions, global cross-session geometry-cache byte budget (0 =
    # unbounded), the fair-queuing weight of sessions that do not name their
    # own, and per-session-id weight overrides.
    service_max_sessions: int = 8
    service_cache_budget_bytes: int = 0
    service_default_weight: float = 1.0
    service_fair_weights: tuple[tuple[str, float], ...] = ()
    # Async double-buffered pipeline (repro.engine.async_backend +
    # SLAMPipeline overlap).  ``async_pipeline`` turns on the overlap
    # scheduling: the mapper speculates the next window while the parent
    # finishes the current one, and the pipeline tracks against the last
    # published cloud snapshot while mapping runs in the background.
    # ``async_depth`` bounds how many windows the async backend may plan
    # ahead of consumption (each pending speculation owns a shadow arena;
    # exceeding the depth raises ArenaInUseError).
    async_pipeline: bool = False
    async_depth: int = 1
    profiling_sink: Callable[..., None] | None = None

    def __post_init__(self) -> None:
        if self.tile_size < 1:
            raise ValueError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.subtile_size < 1:
            raise ValueError(f"subtile_size must be >= 1, got {self.subtile_size}")
        if self.subtile_size > self.tile_size:
            raise ValueError(
                f"subtile_size {self.subtile_size} must not exceed tile_size {self.tile_size}"
            )
        if self.tile_size % self.subtile_size != 0:
            # TileGrid requires divisibility; fail here, at config time, so a
            # bad REPRO_SUBTILE_SIZE is attributed to the knob and not to a
            # later render deep inside the tiling code.
            raise ValueError(
                f"tile_size {self.tile_size} must be a multiple of "
                f"subtile_size {self.subtile_size}"
            )
        if self.shard_workers is not None and self.shard_workers < 0:
            raise ValueError(
                f"shard_workers must be >= 0 (or None for the cpu-count default), "
                f"got {self.shard_workers}"
            )
        if self.shard_retry_limit < 0:
            raise ValueError(
                f"shard_retry_limit must be >= 0, got {self.shard_retry_limit}"
            )
        if self.shard_deadline_s <= 0:
            raise ValueError(
                f"shard_deadline_s must be > 0, got {self.shard_deadline_s}"
            )
        if self.shard_backoff_s < 0:
            raise ValueError(
                f"shard_backoff_s must be >= 0, got {self.shard_backoff_s}"
            )
        if self.cache_tolerance_px < 0:
            raise ValueError(f"cache_tolerance_px must be >= 0, got {self.cache_tolerance_px}")
        if self.cache_termination_margin < 0:
            raise ValueError(
                f"cache_termination_margin must be >= 0, got {self.cache_termination_margin}"
            )
        if self.cache_refine_margin != 0 and self.cache_refine_margin < 1:
            raise ValueError(
                "cache_refine_margin must be 0 (disabled) or >= 1, "
                f"got {self.cache_refine_margin}"
            )
        if self.cache_max_entries < 1:
            raise ValueError(f"cache_max_entries must be >= 1, got {self.cache_max_entries}")
        if self.cache_pose_quantum < 0:
            raise ValueError(
                f"cache_pose_quantum must be >= 0, got {self.cache_pose_quantum}"
            )
        if self.cache_pose_quantum > 0 and self.cache_tolerance_px == 0:
            raise ValueError(
                "cache_pose_quantum > 0 (REPRO_GEOM_CACHE_POSE_QUANTUM) requires a "
                "non-zero cache_tolerance_px: pose-requantised entries are served "
                "through the toleranced stale-geometry tier, which "
                "cache_tolerance_px=0 disables — raise cache_tolerance_px or set "
                "cache_pose_quantum=0"
            )
        if self.service_max_sessions < 1:
            raise ValueError(
                f"service_max_sessions (REPRO_SERVICE_MAX_SESSIONS) must be >= 1, "
                f"got {self.service_max_sessions}"
            )
        if self.service_cache_budget_bytes < 0:
            raise ValueError(
                f"service_cache_budget_bytes (REPRO_SERVICE_CACHE_BUDGET) must be "
                f">= 0 (0 disables the budget), got {self.service_cache_budget_bytes}"
            )
        if self.service_cache_budget_bytes > 0 and not self.geom_cache:
            raise ValueError(
                "service_cache_budget_bytes > 0 (REPRO_SERVICE_CACHE_BUDGET) "
                "requires the geometry cache: a cache byte budget cannot apply "
                "when REPRO_GEOM_CACHE is off — enable geom_cache or set "
                "service_cache_budget_bytes=0"
            )
        if not (self.service_default_weight > 0):
            raise ValueError(
                f"service_default_weight (REPRO_SERVICE_FAIR_WEIGHTS) must be > 0, "
                f"got {self.service_default_weight}"
            )
        if self.async_depth < 1:
            raise ValueError(
                f"async_depth (REPRO_ASYNC_DEPTH) must be >= 1, got "
                f"{self.async_depth}: the async backend needs at least one "
                "speculation slot"
            )
        if self.async_pipeline and self.backend == "tile":
            raise ValueError(
                "async_pipeline (REPRO_ASYNC_PIPELINE) conflicts with "
                "backend='tile' (REPRO_RASTER_BACKEND): the tile reference "
                "loop has no batch path to pipeline, so the overlap could "
                "never engage — pick a batch-capable backend (e.g. 'async' "
                "or 'sharded') or disable async_pipeline"
            )
        if self.async_pipeline and self.shard_workers == 0:
            raise ValueError(
                "async_pipeline (REPRO_ASYNC_PIPELINE) conflicts with "
                "shard_workers=0 (REPRO_SHARD_WORKERS): with no worker "
                "processes every window degrades to the serial flat path and "
                "there is nothing to overlap the parent's Step-5 backward "
                "with — raise shard_workers or disable async_pipeline"
            )
        seen_ids: set[str] = set()
        for session_id, weight in self.service_fair_weights:
            if not session_id:
                raise ValueError(
                    "service_fair_weights (REPRO_SERVICE_FAIR_WEIGHTS) has an "
                    "entry with an empty session id"
                )
            if session_id in seen_ids:
                raise ValueError(
                    f"service_fair_weights (REPRO_SERVICE_FAIR_WEIGHTS) names "
                    f"session {session_id!r} twice"
                )
            seen_ids.add(session_id)
            if not (weight > 0):
                raise ValueError(
                    f"service_fair_weights (REPRO_SERVICE_FAIR_WEIGHTS) weight for "
                    f"session {session_id!r} must be > 0, got {weight}"
                )

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None, **overrides) -> "EngineConfig":
        """Build a config from the ``REPRO_*`` environment variables.

        ``env`` defaults to ``os.environ``; keyword ``overrides`` replace the
        env-derived fields (e.g. ``EngineConfig.from_env(geom_cache=False)``).
        Invalid values raise ``ValueError`` with the offending variable named.
        """
        env = os.environ if env is None else env
        backend = env.get(ENV_RASTER_BACKEND) or None
        if backend is not None:
            from repro.engine.registry import REGISTRY

            if backend not in REGISTRY:
                raise ValueError(
                    f"{ENV_RASTER_BACKEND}={backend!r} is not a valid rasterizer "
                    f"backend; expected one of {REGISTRY.names()}"
                )
        shard_raw = env.get(ENV_SHARD_WORKERS)
        if shard_raw is None or shard_raw == "":
            shard_workers = None
        else:
            try:
                shard_workers = int(shard_raw)
            except ValueError:
                raise ValueError(
                    f"{ENV_SHARD_WORKERS}={shard_raw!r} is not a valid integer"
                ) from None
            if shard_workers < 0:
                raise ValueError(
                    f"{ENV_SHARD_WORKERS}={shard_raw!r} must be >= 0 "
                    "(0/1 degrade the sharded backend to the serial flat path)"
                )
        retry_limit = _int_from_env(env, ENV_SHARD_RETRIES, 2)
        if retry_limit < 0:
            raise ValueError(
                f"{ENV_SHARD_RETRIES}={env.get(ENV_SHARD_RETRIES)!r} must be >= 0 "
                "(0 escalates lost views to serial execution without a retry)"
            )
        deadline_s = _float_from_env(env, ENV_SHARD_DEADLINE_S, 600.0)
        if deadline_s <= 0:
            raise ValueError(
                f"{ENV_SHARD_DEADLINE_S}={env.get(ENV_SHARD_DEADLINE_S)!r} must be "
                "a positive number of seconds"
            )
        backoff_s = _float_from_env(env, ENV_SHARD_BACKOFF_S, 30.0)
        if backoff_s < 0:
            raise ValueError(
                f"{ENV_SHARD_BACKOFF_S}={env.get(ENV_SHARD_BACKOFF_S)!r} must be "
                ">= 0 seconds"
            )
        quantum_raw = env.get(ENV_CACHE_POSE_QUANTUM)
        if quantum_raw is None or quantum_raw == "":
            pose_quantum = 0.0
        else:
            try:
                pose_quantum = float(quantum_raw)
            except ValueError:
                raise ValueError(
                    f"{ENV_CACHE_POSE_QUANTUM}={quantum_raw!r} is not a valid number"
                ) from None
            if pose_quantum < 0:
                raise ValueError(
                    f"{ENV_CACHE_POSE_QUANTUM}={quantum_raw!r} must be >= 0 "
                    "(0 disables pose-quantised cache keys)"
                )
        max_sessions = _int_from_env(env, ENV_SERVICE_MAX_SESSIONS, 8)
        if max_sessions < 1:
            raise ValueError(
                f"{ENV_SERVICE_MAX_SESSIONS}={env.get(ENV_SERVICE_MAX_SESSIONS)!r} "
                "must be >= 1 (the admission cap on open service sessions)"
            )
        cache_budget = _int_from_env(env, ENV_SERVICE_CACHE_BUDGET, 0)
        if cache_budget < 0:
            raise ValueError(
                f"{ENV_SERVICE_CACHE_BUDGET}={env.get(ENV_SERVICE_CACHE_BUDGET)!r} "
                "must be >= 0 bytes (0 disables the cross-session cache budget)"
            )
        default_weight, fair_weights = _fair_weights_from_env(env)
        async_raw = env.get(ENV_ASYNC_PIPELINE)
        async_pipeline = (
            async_raw is not None
            and async_raw != ""
            and async_raw.lower() not in _FALSEY
        )
        async_depth = _int_from_env(env, ENV_ASYNC_DEPTH, 1)
        if async_depth < 1:
            raise ValueError(
                f"{ENV_ASYNC_DEPTH}={env.get(ENV_ASYNC_DEPTH)!r} must be >= 1 "
                "(the async backend needs at least one speculation slot)"
            )
        config = cls(
            backend=backend,
            tile_size=_int_from_env(env, ENV_TILE_SIZE, 16),
            subtile_size=_int_from_env(env, ENV_SUBTILE_SIZE, 4),
            geom_cache=geom_cache_enabled_from_env(env),
            shard_workers=shard_workers,
            shard_retry_limit=retry_limit,
            shard_deadline_s=deadline_s,
            shard_backoff_s=backoff_s,
            cache_pose_quantum=pose_quantum,
            service_max_sessions=max_sessions,
            service_cache_budget_bytes=cache_budget,
            service_default_weight=default_weight,
            service_fair_weights=fair_weights,
            async_pipeline=async_pipeline,
            async_depth=async_depth,
        )
        return replace(config, **overrides) if overrides else config

    def cache_config(self) -> "GeomCacheConfig":
        """The ``GeomCacheConfig`` equivalent of this config's cache knobs."""
        from repro.gaussians.geom_cache import GeomCacheConfig

        return GeomCacheConfig(
            tolerance_px=self.cache_tolerance_px,
            refine_margin=self.cache_refine_margin,
            termination_margin=self.cache_termination_margin,
            max_entries=self.cache_max_entries,
            pose_quantum=self.cache_pose_quantum,
        )
