"""The ``RenderBackend`` protocol, its request types and the backend registry.

A backend is a strategy object implementing the five-method
:class:`RenderBackend` protocol over plain request dataclasses.  The built-in
``tile`` and ``flat`` rasterizers are registered in
:mod:`repro.engine.backends` and the multi-process ``sharded`` executor in
:mod:`repro.engine.sharded`; future execution strategies (e.g. ``async``)
register the same way (:func:`register_backend`) and become addressable by
every engine and by ``set_default_backend`` without touching any caller
code.

This module is deliberately dependency-light: it must be importable from
``repro.gaussians.rasterizer`` (for backend-name validation) without pulling
the rendering stack back in, so every heavy type appears only in annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:
    import numpy as np

    from repro.engine.config import EngineConfig
    from repro.gaussians.backward import CloudGradients
    from repro.gaussians.batch import BatchGradients, BatchRenderResult
    from repro.gaussians.camera import Camera
    from repro.gaussians.fast_raster import FlatArena
    from repro.gaussians.gaussian_model import GaussianCloud
    from repro.gaussians.geom_cache import GeometryCache
    from repro.gaussians.projection import ProjectedGaussians
    from repro.gaussians.rasterizer import RenderResult
    from repro.gaussians.se3 import SE3
    from repro.gaussians.sorting import TileIntersections


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend supports; the engine routes managed state accordingly.

    ``supports_batch``
        ``render_batch`` / ``backward_batch`` are implemented.  Engines fall
        back to the first batch-capable registered backend when a batch is
        requested from a backend without one (the legacy behaviour: batched
        mapping is flat by design even under ``use_backend("tile")``).
    ``supports_cache``
        The backend consumes a :class:`GeometryCache`; backends without it
        silently render uncached (the reference loop's legacy contract).
    ``reference``
        Marks the bit-exact reference implementation golden fixtures pin.
    """

    supports_batch: bool = False
    supports_cache: bool = False
    reference: bool = False
    description: str = ""


@dataclass(frozen=True)
class RenderRequest:
    """One single-view render, fully described."""

    cloud: "GaussianCloud"
    camera: "Camera"
    pose_cw: "SE3"
    background: "np.ndarray | None" = None
    tile_size: int = 16
    subtile_size: int = 4
    active_only: bool = True
    precomputed: "tuple[ProjectedGaussians, TileIntersections] | None" = None
    cache: "GeometryCache | None" = None


@dataclass(frozen=True)
class BatchRenderRequest:
    """One multi-view batch render, fully described."""

    cloud: "GaussianCloud"
    cameras: "Sequence[Camera]"
    poses_cw: "Sequence[SE3]"
    backgrounds: "np.ndarray | Sequence[np.ndarray | None] | None" = None
    tile_size: int = 16
    subtile_size: int = 4
    active_only: bool = True
    arena: "FlatArena | None" = None
    cache: "GeometryCache | None" = None


@runtime_checkable
class RenderBackend(Protocol):
    """The strategy interface every registered rasterizer implements."""

    name: str

    def capabilities(self) -> BackendCapabilities:
        """Static description of what this backend supports."""
        ...

    def render(self, request: RenderRequest) -> "RenderResult":
        """Run one single-view forward pass."""
        ...

    def render_batch(self, request: BatchRenderRequest) -> "BatchRenderResult":
        """Run one multi-view forward pass sharing per-Gaussian work."""
        ...

    def backward(
        self,
        result: "RenderResult",
        cloud: "GaussianCloud",
        dL_dimage: "np.ndarray",
        dL_ddepth: "np.ndarray | None",
        compute_pose_gradient: bool,
    ) -> "CloudGradients":
        """Steps 4-5 for one render."""
        ...

    def backward_batch(
        self,
        batch: "BatchRenderResult",
        cloud: "GaussianCloud",
        dL_dimages: "Sequence[np.ndarray]",
        dL_ddepths: "Sequence[np.ndarray | None] | None",
        compute_pose_gradient: bool,
    ) -> "BatchGradients":
        """Steps 4-5 for a batch with Step 5 fused across views."""
        ...


BackendFactory = Callable[["EngineConfig"], RenderBackend]


class BackendRegistry:
    """Name -> factory mapping; engines instantiate backends through it."""

    def __init__(self) -> None:
        self._factories: dict[str, BackendFactory] = {}

    def register(self, name: str, factory: BackendFactory, overwrite: bool = False) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"backend name must be a non-empty string, got {name!r}")
        if name in self._factories and not overwrite:
            raise ValueError(
                f"rasterizer backend {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._factories[name] = factory

    def unregister(self, name: str) -> None:
        if name not in self._factories:
            raise ValueError(f"rasterizer backend {name!r} is not registered")
        del self._factories[name]

    def create(self, name: str, config: "EngineConfig") -> RenderBackend:
        factory = self._factories.get(name)
        if factory is None:
            raise ValueError(
                f"unknown rasterizer backend {name!r}; expected one of {self.names()}"
            )
        return factory(config)

    def names(self) -> tuple[str, ...]:
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


#: Process-wide registry the engines and the legacy backend validation share.
REGISTRY = BackendRegistry()


def register_backend(name: str, factory: BackendFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` in the process-wide registry.

    ``factory`` receives the engine's :class:`EngineConfig` and returns a
    :class:`RenderBackend`.  Once registered, the name is accepted by
    ``EngineConfig(backend=...)``, ``RenderEngine.render(..., backend=...)``,
    ``set_default_backend`` and ``REPRO_RASTER_BACKEND``.
    """
    REGISTRY.register(name, factory, overwrite=overwrite)


def backend_names() -> tuple[str, ...]:
    """Names currently registered in the process-wide registry."""
    return REGISTRY.names()
