"""The ``RenderBackend`` protocol, its request types and the backend registry.

A backend is a strategy object implementing the five-method
:class:`RenderBackend` protocol over plain request dataclasses.  The built-in
``tile`` and ``flat`` rasterizers are registered in
:mod:`repro.engine.backends` and the multi-process ``sharded`` executor in
:mod:`repro.engine.sharded`; future execution strategies (e.g. ``async``)
register the same way (:func:`register_backend`) and become addressable by
every engine and by ``set_default_backend`` without touching any caller
code.

This module is deliberately dependency-light: it must be importable from
``repro.gaussians.rasterizer`` (for backend-name validation) without pulling
the rendering stack back in, so every heavy type appears only in annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:
    import numpy as np

    from repro.engine.config import EngineConfig
    from repro.gaussians.backward import CloudGradients
    from repro.gaussians.batch import BatchGradients, BatchRenderResult
    from repro.gaussians.camera import Camera
    from repro.gaussians.fast_raster import FlatArena
    from repro.gaussians.gaussian_model import GaussianCloud
    from repro.gaussians.geom_cache import GeometryCache
    from repro.gaussians.projection import ProjectedGaussians
    from repro.gaussians.rasterizer import RenderResult
    from repro.gaussians.se3 import SE3
    from repro.gaussians.sorting import TileIntersections


@dataclass(frozen=True)
class BackendCapabilities:
    """Typed description of what a backend supports and whether it can run.

    The engine routes managed state (arena, geometry cache) and the scenario
    matrix plans its skips from these fields — no magic strings.

    ``batch``
        ``render_batch`` / ``backward_batch`` are implemented.  Engines fall
        back to the first batch-capable registered backend when a batch is
        requested from a backend without one (the legacy behaviour: batched
        mapping is flat by design even under ``use_backend("tile")``).
    ``cache``
        The backend consumes a :class:`GeometryCache`; backends without it
        silently render uncached (the reference loop's legacy contract).
    ``distributed_planning``
        Per-view Step 1-2 planning (projection, tiling, fragment build) runs
        inside the backend's workers rather than the parent process; batch
        attribution then reports ``plan_site="worker"``.
    ``worker_resident_cache``
        Geometry-cache entries live inside the backend's workers, keyed by
        the same :class:`GaussianCloud` mutation epochs as the parent cache;
        the engine broadcasts invalidation to such backends.
    ``reference``
        Marks the bit-exact reference implementation golden fixtures pin.
    ``availability``
        ``None`` when the backend can run here and now; otherwise a
        machine-readable reason (e.g. ``"workers:1<2 (...)"``) — the probe
        formerly exposed only via a separate ``availability()`` method.
    """

    batch: bool = False
    cache: bool = False
    distributed_planning: bool = False
    worker_resident_cache: bool = False
    reference: bool = False
    description: str = ""
    availability: str | None = None

    # Legacy field names, kept readable (silently — the test suite promotes
    # DeprecationWarning to error inside repro.*) so pre-redesign callers
    # keep working while they migrate to the short names.
    @property
    def supports_batch(self) -> bool:
        return self.batch

    @property
    def supports_cache(self) -> bool:
        return self.cache

    @property
    def available(self) -> bool:
        return self.availability is None


#: Keys a legacy dict-shaped capabilities() payload may carry; anything else
#: is a typo the adapter must surface instead of silently dropping.
_LEGACY_CAPABILITY_KEYS = frozenset(
    {
        "batch",
        "cache",
        "distributed_planning",
        "worker_resident_cache",
        "reference",
        "description",
        "availability",
        "supports_batch",
        "supports_cache",
    }
)


def _adapt_legacy_capabilities(name: str, payload: dict) -> BackendCapabilities:
    """Convert a pre-redesign ``capabilities()`` dict into the typed dataclass.

    Emits a :class:`DeprecationWarning` so dict-returning backends keep
    working but are visibly on the way out.
    """
    import warnings

    unknown = set(payload) - _LEGACY_CAPABILITY_KEYS
    if unknown:
        raise ValueError(
            f"backend {name!r} returned a capabilities dict with unknown keys "
            f"{sorted(unknown)}; expected a subset of "
            f"{sorted(_LEGACY_CAPABILITY_KEYS)}"
        )
    warnings.warn(
        f"backend {name!r} returned a capabilities dict; return a typed "
        "repro.engine.BackendCapabilities instead (dict support will be removed)",
        DeprecationWarning,
        stacklevel=3,
    )
    fields = dict(payload)
    # Legacy spelling maps onto the short field names.
    if "supports_batch" in fields:
        fields["batch"] = bool(fields.pop("supports_batch"))
    if "supports_cache" in fields:
        fields["cache"] = bool(fields.pop("supports_cache"))
    return BackendCapabilities(**fields)


class _LegacyCapabilitiesAdapter:
    """Wraps a backend whose ``capabilities()`` returns a legacy dict.

    Every other protocol method passes straight through, so the adapter is
    invisible except at the capability probe.
    """

    def __init__(self, inner: "RenderBackend"):
        self._inner = inner
        self.name = inner.name

    def capabilities(self) -> BackendCapabilities:
        return _adapt_legacy_capabilities(self.name, self._inner.capabilities())

    def __getattr__(self, attribute: str):
        return getattr(self._inner, attribute)


@dataclass(frozen=True)
class RenderRequest:
    """One single-view render, fully described."""

    cloud: "GaussianCloud"
    camera: "Camera"
    pose_cw: "SE3"
    background: "np.ndarray | None" = None
    tile_size: int = 16
    subtile_size: int = 4
    active_only: bool = True
    precomputed: "tuple[ProjectedGaussians, TileIntersections] | None" = None
    cache: "GeometryCache | None" = None


@dataclass(frozen=True)
class BatchRenderRequest:
    """One multi-view batch render, fully described."""

    cloud: "GaussianCloud"
    cameras: "Sequence[Camera]"
    poses_cw: "Sequence[SE3]"
    backgrounds: "np.ndarray | Sequence[np.ndarray | None] | None" = None
    tile_size: int = 16
    subtile_size: int = 4
    active_only: bool = True
    arena: "FlatArena | None" = None
    cache: "GeometryCache | None" = None


@runtime_checkable
class RenderBackend(Protocol):
    """The strategy interface every registered rasterizer implements."""

    name: str

    def capabilities(self) -> BackendCapabilities:
        """Static description of what this backend supports."""
        ...

    def render(self, request: RenderRequest) -> "RenderResult":
        """Run one single-view forward pass."""
        ...

    def render_batch(self, request: BatchRenderRequest) -> "BatchRenderResult":
        """Run one multi-view forward pass sharing per-Gaussian work.

        Canonically ``execute_units(plan_batch(request), request)``; backends
        with ``distributed_planning`` may instead plan inside their workers.
        """
        ...

    def plan_batch(self, request: BatchRenderRequest) -> "RenderPlan":
        """Step 1-2 for a batch: shared preprocessing, per-view projection,
        tiling and fragment build, emitted as self-contained work units.

        External schedulers (multi-tenant pools, async overlap) plan here and
        hand the units to any executor; ``execute_units`` is the matching
        second phase.
        """
        ...

    def execute_units(
        self, plan: "RenderPlan", request: BatchRenderRequest
    ) -> "BatchRenderResult":
        """Step 3 for a planned batch: rasterize the plan's work units and
        stitch the :class:`BatchRenderResult` in view order."""
        ...

    def backward(
        self,
        result: "RenderResult",
        cloud: "GaussianCloud",
        dL_dimage: "np.ndarray",
        dL_ddepth: "np.ndarray | None",
        compute_pose_gradient: bool,
    ) -> "CloudGradients":
        """Steps 4-5 for one render."""
        ...

    def backward_batch(
        self,
        batch: "BatchRenderResult",
        cloud: "GaussianCloud",
        dL_dimages: "Sequence[np.ndarray]",
        dL_ddepths: "Sequence[np.ndarray | None] | None",
        compute_pose_gradient: bool,
    ) -> "BatchGradients":
        """Steps 4-5 for a batch with Step 5 fused across views."""
        ...


BackendFactory = Callable[["EngineConfig"], RenderBackend]


class BackendRegistry:
    """Name -> factory mapping; engines instantiate backends through it."""

    def __init__(self) -> None:
        self._factories: dict[str, BackendFactory] = {}

    def register(self, name: str, factory: BackendFactory, overwrite: bool = False) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"backend name must be a non-empty string, got {name!r}")
        if name in self._factories and not overwrite:
            raise ValueError(
                f"rasterizer backend {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._factories[name] = factory

    def unregister(self, name: str) -> None:
        if name not in self._factories:
            raise ValueError(f"rasterizer backend {name!r} is not registered")
        del self._factories[name]

    def create(self, name: str, config: "EngineConfig") -> RenderBackend:
        factory = self._factories.get(name)
        if factory is None:
            raise ValueError(
                f"unknown rasterizer backend {name!r}; expected one of {self.names()}"
            )
        backend = factory(config)
        return self._validate(name, backend)

    @staticmethod
    def _validate(name: str, backend: RenderBackend) -> RenderBackend:
        """Check the capability contract once, at instantiation.

        Typed :class:`BackendCapabilities` pass through; legacy dict payloads
        get the deprecation adapter; anything else is a registration bug and
        fails loudly here rather than deep inside skip planning.
        """
        payload = backend.capabilities()
        if isinstance(payload, BackendCapabilities):
            return backend
        if isinstance(payload, dict):
            # Probe the adapter once so malformed dicts fail at create time.
            adapter = _LegacyCapabilitiesAdapter(backend)
            adapter.capabilities()
            return adapter
        raise TypeError(
            f"backend {name!r}.capabilities() must return BackendCapabilities "
            f"(or a legacy dict), got {type(payload).__name__}"
        )

    def names(self) -> tuple[str, ...]:
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


#: Process-wide registry the engines and the legacy backend validation share.
REGISTRY = BackendRegistry()


def register_backend(name: str, factory: BackendFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` in the process-wide registry.

    ``factory`` receives the engine's :class:`EngineConfig` and returns a
    :class:`RenderBackend`.  Once registered, the name is accepted by
    ``EngineConfig(backend=...)``, ``RenderEngine.render(..., backend=...)``,
    ``set_default_backend`` and ``REPRO_RASTER_BACKEND``.
    """
    REGISTRY.register(name, factory, overwrite=overwrite)


def backend_names() -> tuple[str, ...]:
    """Names currently registered in the process-wide registry."""
    return REGISTRY.names()
