"""Unified render-session API: ``RenderEngine`` over a pluggable backend registry.

This package is the owned execution object the free-function render surface
(`rasterize` / `rasterize_batch` / `render_backward` / `render_backward_batch`)
collapsed into:

* :class:`EngineConfig` — every knob (backend, tile/subtile sizes, geometry
  cache policy, profiling sink) in one validated object;
  :meth:`EngineConfig.from_env` consolidates the ``REPRO_*`` environment
  variables.
* :class:`RenderEngine` — the session object owning backend selection, the
  Step 1-2 :class:`~repro.gaussians.geom_cache.GeometryCache`, the grow-only
  fragment arena (with aliasing protection via :class:`ArenaInUseError`) and
  workload-snapshot emission.
* :class:`BackendRegistry` / :func:`register_backend` — the pluggable
  strategy seam.  ``flat``, ``tile``, ``sharded`` (multi-process execution
  of the flat batch plan, :mod:`repro.engine.sharded`) and ``async``
  (speculative double-buffered pipelining over the sharded pool,
  :mod:`repro.engine.async_backend`) are the built-ins; further execution
  strategies implement :class:`RenderBackend` and register without touching
  callers.

The legacy free functions remain as deprecated shims delegating to
:func:`default_engine`, so existing call sites keep working bit-identically
while new code injects an engine.
"""

from repro.engine.config import (
    ENGINE_ENV_VARS,
    EngineConfig,
    geom_cache_enabled_from_env,
)
from repro.engine.registry import (
    BackendCapabilities,
    BackendRegistry,
    BatchRenderRequest,
    REGISTRY,
    RenderBackend,
    RenderRequest,
    backend_names,
    register_backend,
)

# Importing the built-in backends populates the registry as a side effect;
# keep these imports before anything that resolves backend names.
from repro.engine.backends import FlatBackend, TileBackend  # noqa: E402
from repro.engine.faults import (  # noqa: E402
    ENV_SHARD_FAULTS,
    FaultPlan,
    FaultSite,
    active_fault_plan,
    fault_plan,
    set_fault_plan,
)
from repro.engine.sharded import (  # noqa: E402
    ShardedBackend,
    ShardPoolLostError,
    ShardWorkerError,
    shutdown_shard_pools,
)
from repro.engine.async_backend import AsyncBackend  # noqa: E402
from repro.engine.engine import (  # noqa: E402
    ArenaInUseError,
    RenderEngine,
    default_engine,
    set_default_engine,
)

__all__ = [
    "ArenaInUseError",
    "AsyncBackend",
    "BackendCapabilities",
    "BackendRegistry",
    "BatchRenderRequest",
    "ENGINE_ENV_VARS",
    "ENV_SHARD_FAULTS",
    "EngineConfig",
    "FaultPlan",
    "FaultSite",
    "FlatBackend",
    "REGISTRY",
    "RenderBackend",
    "RenderEngine",
    "RenderRequest",
    "ShardPoolLostError",
    "ShardWorkerError",
    "ShardedBackend",
    "TileBackend",
    "active_fault_plan",
    "backend_names",
    "default_engine",
    "fault_plan",
    "geom_cache_enabled_from_env",
    "register_backend",
    "set_default_engine",
    "set_fault_plan",
    "shutdown_shard_pools",
]
