"""Per-pixel workload profiling (Fig. 6, Fig. 10, Observation 6).

The per-pixel fragment counts recorded by the rasterizer define the rendering
workload distribution.  The paper exploits two of its properties: consecutive
iterations of one frame have nearly identical distributions (so scheduling
decisions can be reused), and within most subtiles heavy and light pixels are
symmetrically distributed (so pairwise heavy/light scheduling is close to the
ideal balance).
"""

from __future__ import annotations

import numpy as np

from repro.slam.records import WorkloadSnapshot


def pixel_workload_distribution(snapshot: WorkloadSnapshot, n_bins: int = 30) -> dict:
    """Histogram of per-pixel fragment counts of one iteration (Fig. 6)."""
    workloads = snapshot.fragments_per_pixel.ravel()
    max_load = max(int(workloads.max()), 1)
    counts, edges = np.histogram(workloads, bins=min(n_bins, max_load + 1))
    return {
        "counts": counts,
        "edges": edges,
        "mean": float(workloads.mean()),
        "max": int(workloads.max()),
        "frame_index": snapshot.frame_index,
        "iteration": snapshot.iteration,
    }


def iteration_workload_similarity(snapshots: list[WorkloadSnapshot]) -> np.ndarray:
    """Pearson correlation of per-pixel workloads between consecutive iterations.

    Only pairs belonging to the same frame and the same stage (and the same
    resolution) are compared; the paper's Observation 6 expects values close
    to one within a frame.
    """
    correlations = []
    for previous, current in zip(snapshots[:-1], snapshots[1:]):
        if previous.frame_index != current.frame_index or previous.stage != current.stage:
            continue
        a = previous.fragments_per_pixel.ravel().astype(np.float64)
        b = current.fragments_per_pixel.ravel().astype(np.float64)
        if a.shape != b.shape or a.std() == 0 or b.std() == 0:
            continue
        correlations.append(float(np.corrcoef(a, b)[0, 1]))
    return np.asarray(correlations)


def cross_frame_workload_similarity(snapshots: list[WorkloadSnapshot]) -> np.ndarray:
    """Correlation of workloads between the *first iterations of different frames*.

    Used as the contrast case for Fig. 6: distributions change across frames
    while staying stable across iterations within one frame.
    """
    firsts = [s for s in snapshots if s.iteration == 0 and s.stage == "tracking"]
    correlations = []
    for previous, current in zip(firsts[:-1], firsts[1:]):
        a = previous.fragments_per_pixel.ravel().astype(np.float64)
        b = current.fragments_per_pixel.ravel().astype(np.float64)
        if a.shape != b.shape or a.std() == 0 or b.std() == 0:
            continue
        correlations.append(float(np.corrcoef(a, b)[0, 1]))
    return np.asarray(correlations)


def subtile_pair_symmetry(snapshot: WorkloadSnapshot, tolerance: float = 0.35) -> dict:
    """Measure how symmetric heavy/light pixel workloads are within subtiles (Fig. 10).

    For each subtile, pixels are sorted by workload and paired rank-k with
    rank-(n-1-k); the subtile counts as *symmetric* when every pair's summed
    workload is within ``tolerance`` of the subtile's mean pair workload.  The
    paper reports ~89% of subtiles being symmetric, which is what makes cheap
    pairwise scheduling nearly ideal.
    """
    symmetric = 0
    total = 0
    pair_balance: list[float] = []
    for workloads in snapshot.pixel_workloads_per_subtile():
        if workloads.sum() == 0:
            continue
        total += 1
        ordered = np.sort(workloads)
        pairs = ordered + ordered[::-1]
        pairs = pairs[: len(pairs) // 2]
        mean_pair = pairs.mean()
        if mean_pair <= 0:
            symmetric += 1
            continue
        deviation = np.abs(pairs - mean_pair).max() / mean_pair
        pair_balance.append(float(deviation))
        if deviation <= tolerance:
            symmetric += 1
    return {
        "n_subtiles": total,
        "symmetric_fraction": symmetric / total if total else 1.0,
        "mean_pair_deviation": float(np.mean(pair_balance)) if pair_balance else 0.0,
    }
