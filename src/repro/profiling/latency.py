"""Pipeline latency breakdowns (Fig. 3).

These helpers aggregate modelled GPU latencies over a SLAM run to reproduce
the paper's two profiling views: the share of total runtime spent in tracking
versus mapping (Fig. 3(a)) and the per-step breakdown of a single iteration
(Fig. 3(b)), which shows Step 3 Rendering and Step 4 Rendering BP dominating.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.hardware.gpu_model import EdgeGPUModel
from repro.slam.records import WorkloadSnapshot


def latency_breakdown(
    snapshots: list[WorkloadSnapshot],
    model: EdgeGPUModel | None = None,
) -> dict[str, float]:
    """Fraction of total modelled runtime spent in tracking / mapping (Fig. 3a)."""
    model = model or EdgeGPUModel("onx")
    totals = {"tracking": 0.0, "mapping": 0.0}
    for snapshot in snapshots:
        totals[snapshot.stage] += model.iteration_latency(snapshot).total
    grand = sum(totals.values())
    if grand <= 0:
        return {"tracking": 0.0, "mapping": 0.0, "other": 0.0}
    # "Other" covers the non-iteration work (I/O, keyframe management), which
    # the paper measures at well under 20% of the pipeline.
    other_fraction = 0.08
    scale = 1.0 - other_fraction
    return {
        "tracking": scale * totals["tracking"] / grand,
        "mapping": scale * totals["mapping"] / grand,
        "other": other_fraction,
    }


def stage_breakdown(
    snapshots: list[WorkloadSnapshot],
    model: EdgeGPUModel | None = None,
    stage: str | None = None,
) -> dict[str, float]:
    """Per-pipeline-step share of runtime (Fig. 3b), optionally for one stage."""
    model = model or EdgeGPUModel("onx")
    accumulator = None
    for snapshot in snapshots:
        if stage is not None and snapshot.stage != stage:
            continue
        latency = model.iteration_latency(snapshot)
        if accumulator is None:
            accumulator = latency
        else:
            accumulator = accumulator + latency
    if accumulator is None or accumulator.total <= 0:
        return {}
    shares = {name: value / accumulator.total for name, value in accumulator.as_dict().items()}
    return shares


def rendering_dominance(shares: dict[str, float]) -> float:
    """Combined share of Step 3 Rendering + Step 4 Rendering BP (Observation 2)."""
    return float(shares.get("rendering", 0.0) + shares.get("rendering_bp", 0.0))


def batch_amortization_report(
    snapshots: list[WorkloadSnapshot], model: EdgeGPUModel | None = None
) -> dict[str, float]:
    """Modelled effect of batching, geometry caching *and* sharding on mapping.

    Compares the mapping iterations as recorded (per-view snapshots carrying
    their window's ``batch_size``, geometry-cache status and per-shard
    attribution, all of which the hardware model amortises) against the same
    workload re-priced as sequential, uncached, unsharded single-view
    iterations.  ``speedup`` is the combined modelled amortisation;
    ``step12_amortization`` isolates the cache's share by re-pricing only the
    cache statuses, and ``shard_amortization`` isolates the sharded backend's
    share by re-pricing only ``shard_workers``.  The cache
    hit/refresh/incremental/miss counts and the shard worker/stitch
    aggregates make the Fig. 3-style latency breakdown attributable.
    Wall-clock speedups of the software rasterizer are measured separately in
    ``benchmarks/test_batched_mapping.py``, ``benchmarks/test_geom_cache_reuse.py``
    and ``benchmarks/test_sharded_speedup.py``.
    """
    model = model or EdgeGPUModel("onx")
    mapping = [s for s in snapshots if s.stage == "mapping"]
    batched = 0.0
    sequential = 0.0
    cached_step12 = 0.0
    uncached_step12 = 0.0
    unsharded = 0.0
    for snapshot in mapping:
        latency = model.iteration_latency(snapshot)
        batched += latency.total
        cached_step12 += latency.preprocessing + latency.sorting
        sequential += model.iteration_latency(
            replace(snapshot, batch_size=1, cache_status="uncached", shard_workers=1)
        ).total
        as_uncached = model.iteration_latency(replace(snapshot, cache_status="uncached"))
        uncached_step12 += as_uncached.preprocessing + as_uncached.sorting
        # Unsharded re-pricing is a no-op for serial snapshots (the default);
        # skip the extra model evaluation there.
        if snapshot.shard_workers > 1:
            unsharded += model.iteration_latency(replace(snapshot, shard_workers=1)).total
        else:
            unsharded += latency.total
    batch_sizes = [s.batch_size for s in mapping]
    statuses = [s.cache_status for s in mapping]
    shard_workers = [s.shard_workers for s in mapping]
    sharded_views = [s for s in mapping if s.shard_workers > 1]
    report = {
        "batched_s": batched,
        "sequential_s": sequential,
        "speedup": sequential / batched if batched > 0 else 1.0,
        "mean_batch_size": float(np.mean(batch_sizes)) if batch_sizes else 0.0,
        "n_mapping_iterations": float(len(mapping)),
        # -- geometry-cache accounting --------------------------------------
        "cache_hits": float(statuses.count("hit")),
        "cache_refreshes": float(statuses.count("refresh")),
        "cache_incremental": float(statuses.count("incremental")),
        "cache_misses": float(statuses.count("miss")),
        "cache_uncached": float(statuses.count("uncached")),
        "step12_cached_s": cached_step12,
        "step12_uncached_s": uncached_step12,
        "step12_amortization": (
            uncached_step12 / cached_step12 if cached_step12 > 0 else 1.0
        ),
        # -- sharded-backend accounting -------------------------------------
        "mean_shard_workers": float(np.mean(shard_workers)) if shard_workers else 0.0,
        "n_sharded_views": float(len(sharded_views)),
        "shard_s": float(sum(s.shard_seconds for s in sharded_views)),
        "stitch_s": float(sum(s.shard_stitch_seconds for s in sharded_views)),
        "unsharded_s": unsharded,
        "shard_amortization": unsharded / batched if batched > 0 else 1.0,
        # -- fault accounting (zero on a healthy run) ------------------------
        # Batch-level counts are duplicated on every view of a batch, so sum
        # them from the view_index == 0 snapshots only; escalation is per view.
        "fault_events": float(
            sum(s.fault_events for s in mapping if s.view_index == 0)
        ),
        "fault_retries": float(
            sum(s.fault_retries for s in mapping if s.view_index == 0)
        ),
        "fault_quarantines": float(
            sum(s.fault_quarantines for s in mapping if s.view_index == 0)
        ),
        "fault_escalated_views": float(sum(s.fault_escalated for s in mapping)),
    }
    # -- async-pipeline accounting (zero on a serial run) ---------------------
    # One publication marker per background mapping job (its last snapshot):
    # count them, sum the mapping wall-clock that ran concurrently with
    # tracking, and express it as the fraction of background-mapping
    # wall-clock that tracking hid, so the overlap is visible next to the
    # amortisation numbers.
    publications = [s for s in mapping if s.async_published]
    overlap_seconds = float(sum(s.async_overlap_seconds for s in publications))
    mapping_seconds = float(sum(s.async_mapping_seconds for s in publications))
    report["async_publications"] = float(len(publications))
    report["async_overlap_s"] = overlap_seconds
    report["async_overlap_fraction"] = (
        overlap_seconds / mapping_seconds if mapping_seconds > 0 else 0.0
    )
    # -- multi-tenant rollup (render service) --------------------------------
    # Only snapshots attributed to a service session contribute, and the key
    # is added only when at least one exists, so single-tenant consumers see
    # the exact flat report they always did.  The rollup spans *all* stages
    # (service tenants render outside the mapping loop too).
    session_ids = sorted({s.session_id for s in snapshots if s.session_id})
    if session_ids:
        sessions: dict[str, dict[str, float]] = {}
        for session_id in session_ids:
            views = [s for s in snapshots if s.session_id == session_id]
            sessions[session_id] = {
                "n_views": float(len(views)),
                "queue_wait_s": float(sum(s.queue_wait_seconds for s in views)),
                "service_s": float(sum(s.service_seconds for s in views)),
                "modelled_s": float(
                    sum(model.iteration_latency(s).total for s in views)
                ),
            }
        report["sessions"] = sessions
    return report


def per_frame_latency_series(
    snapshots: list[WorkloadSnapshot], model: EdgeGPUModel | None = None
) -> np.ndarray:
    """Modelled per-frame latency in seconds, ordered by frame index."""
    model = model or EdgeGPUModel("onx")
    per_frame: dict[int, float] = {}
    for snapshot in snapshots:
        per_frame.setdefault(snapshot.frame_index, 0.0)
        per_frame[snapshot.frame_index] += model.iteration_latency(snapshot).total
    return np.array([per_frame[key] for key in sorted(per_frame)])
