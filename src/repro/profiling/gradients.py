"""Gaussian gradient distribution profiling (Fig. 4, Observation 3).

The paper observes that during tracking only a small fraction of Gaussians
(~14%) carries the bulk of the pose-optimisation gradient magnitude, and that
those Gaussians cluster on contours and textured regions.  These helpers
measure that skew from the gradients the tracker already computes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.importance import ImportanceScorer
from repro.gaussians.backward import CloudGradients


@dataclass
class GradientDistribution:
    """Summary of the per-Gaussian gradient-magnitude distribution."""

    scores: np.ndarray
    histogram_counts: np.ndarray
    histogram_edges: np.ndarray

    @property
    def n_gaussians(self) -> int:
        return int(self.scores.size)

    def top_fraction_share(self, fraction: float = 0.14) -> float:
        """Share of total gradient magnitude carried by the top ``fraction`` Gaussians."""
        if self.scores.size == 0:
            return 0.0
        total = float(self.scores.sum())
        if total <= 0:
            return 0.0
        k = max(1, int(round(fraction * self.scores.size)))
        top = np.sort(self.scores)[::-1][:k]
        return float(top.sum() / total)

    def fraction_needed_for_share(self, share: float = 0.8) -> float:
        """Smallest fraction of Gaussians whose scores sum to ``share`` of the total."""
        if self.scores.size == 0:
            return 0.0
        sorted_scores = np.sort(self.scores)[::-1]
        cumulative = np.cumsum(sorted_scores)
        total = cumulative[-1]
        if total <= 0:
            return 1.0
        index = int(np.searchsorted(cumulative, share * total)) + 1
        return index / self.scores.size

    def gini_coefficient(self) -> float:
        """Inequality of the gradient distribution (1 = all mass on one Gaussian)."""
        scores = np.sort(self.scores)
        n = scores.size
        if n == 0 or scores.sum() <= 0:
            return 0.0
        index = np.arange(1, n + 1)
        return float((2.0 * np.sum(index * scores) / (n * scores.sum())) - (n + 1.0) / n)


def gradient_distribution(
    gradients: CloudGradients | list[CloudGradients],
    importance_lambda: float = 0.8,
    n_bins: int = 40,
) -> GradientDistribution:
    """Compute the Fig. 4-style distribution from one or more backward passes."""
    if isinstance(gradients, CloudGradients):
        gradients = [gradients]
    scorer = ImportanceScorer(covariance_weight=importance_lambda)
    accumulated: np.ndarray | None = None
    for grad in gradients:
        scores = scorer.score_single(grad)
        if accumulated is None:
            accumulated = scores.copy()
        elif accumulated.shape == scores.shape:
            accumulated += scores
    if accumulated is None:
        accumulated = np.zeros(0)
    positive = accumulated[accumulated > 0]
    if positive.size:
        low = max(positive.min(), 1e-12)
        high = positive.max()
        # Pad the outermost edges slightly so floating-point rounding of the
        # log-spaced bin boundaries cannot drop the extreme values.
        edges = np.logspace(np.log10(low * 0.999), np.log10(high * 1.001), n_bins + 1)
        counts, edges = np.histogram(positive, bins=edges)
    else:
        counts, edges = np.zeros(n_bins, dtype=int), np.linspace(0, 1, n_bins + 1)
    return GradientDistribution(
        scores=accumulated, histogram_counts=counts, histogram_edges=edges
    )
