"""Profiling tools reproducing the Sec. 3 observations (Figs. 3-6, 10)."""

from repro.profiling.gradients import GradientDistribution, gradient_distribution
from repro.profiling.latency import (
    batch_amortization_report,
    latency_breakdown,
    stage_breakdown,
)
from repro.profiling.similarity import frame_similarity_series
from repro.profiling.workload import (
    iteration_workload_similarity,
    pixel_workload_distribution,
    subtile_pair_symmetry,
)

__all__ = [
    "GradientDistribution",
    "batch_amortization_report",
    "frame_similarity_series",
    "gradient_distribution",
    "iteration_workload_similarity",
    "latency_breakdown",
    "pixel_workload_distribution",
    "stage_breakdown",
    "subtile_pair_symmetry",
]
