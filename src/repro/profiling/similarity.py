"""Inter-frame similarity profiling (Fig. 5, Observation 5).

Consecutive frames of a SLAM sequence - especially non-keyframes close to a
keyframe - are highly similar, which motivates dynamic downsampling.  This
module measures RMSE and SSIM between each frame and its predecessor and
relates the similarity to the distance from the most recent keyframe.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.rgbd import RGBDSequence
from repro.metrics.image import rmse, ssim


def frame_similarity_series(
    sequence: RGBDSequence,
    n_frames: int | None = None,
    keyframe_interval: int = 4,
) -> dict[str, np.ndarray]:
    """RMSE/SSIM between consecutive frames plus keyframe-distance labels.

    ``keyframe_interval`` marks every k-th frame as a keyframe (the MonoGS
    policy used for this profiling figure in the paper).
    """
    total = len(sequence) if n_frames is None else min(n_frames, len(sequence))
    rmse_values, ssim_values, keyframe_distance = [], [], []
    for index in range(1, total):
        previous = sequence.frame(index - 1).image
        current = sequence.frame(index).image
        rmse_values.append(rmse(previous, current))
        ssim_values.append(ssim(previous, current))
        keyframe_distance.append(index % keyframe_interval)
    return {
        "rmse": np.asarray(rmse_values),
        "ssim": np.asarray(ssim_values),
        "keyframe_distance": np.asarray(keyframe_distance),
        "frame_index": np.arange(1, total),
    }


def similarity_by_keyframe_distance(series: dict[str, np.ndarray]) -> dict[int, dict[str, float]]:
    """Group the Fig. 5 series by distance to the most recent keyframe."""
    out: dict[int, dict[str, float]] = {}
    distances = series["keyframe_distance"]
    for distance in sorted(set(int(d) for d in distances)):
        mask = distances == distance
        out[distance] = {
            "rmse": float(series["rmse"][mask].mean()),
            "ssim": float(series["ssim"][mask].mean()),
            "count": int(mask.sum()),
        }
    return out
