"""Image quality metrics: PSNR, SSIM, RMSE.

These are the rendering-fidelity and frame-similarity metrics used by the
paper (Tab. 2/6/7 report PSNR; Fig. 5 uses RMSE and SSIM to quantify
non-keyframe redundancy).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter


def _to_float(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim not in (2, 3):
        raise ValueError(f"expected HxW or HxWxC image, got shape {image.shape}")
    return image


def rmse(image_a: np.ndarray, image_b: np.ndarray) -> float:
    """Root-mean-square pixel difference between two images in [0, 1]."""
    a, b = _to_float(image_a), _to_float(image_b)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    return float(np.sqrt(np.mean((a - b) ** 2)))


def format_db(value: float, width: int = 5) -> str:
    """Format a dB metric for display; ``nan`` (no data) renders as ``n/a``.

    ``SLAMResult.evaluate_psnr`` returns ``nan`` when no finite PSNR exists —
    an empty or degenerate render must show up as missing data, never as a
    perfect score.  ``width`` right-pads so tabular columns stay aligned.
    """
    text = "n/a" if np.isnan(value) else f"{value:.2f}"
    return text.rjust(width)


def psnr(image_a: np.ndarray, image_b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (higher is better).

    Identical images return ``inf``.
    """
    err = rmse(image_a, image_b)
    if err <= 0.0:
        return float("inf")
    return float(20.0 * np.log10(data_range / err))


def ssim(
    image_a: np.ndarray,
    image_b: np.ndarray,
    data_range: float = 1.0,
    window: int = 7,
) -> float:
    """Mean structural similarity index (Wang et al., 2004) over a uniform window.

    Colour images are averaged over channels.  Uses the standard constants
    ``K1 = 0.01`` and ``K2 = 0.03``.
    """
    a, b = _to_float(image_a), _to_float(image_b)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.ndim == 3:
        channels = [
            ssim(a[..., ch], b[..., ch], data_range=data_range, window=window)
            for ch in range(a.shape[2])
        ]
        return float(np.mean(channels))

    window = min(window, min(a.shape))
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_a = uniform_filter(a, size=window)
    mu_b = uniform_filter(b, size=window)
    mu_a_sq = mu_a * mu_a
    mu_b_sq = mu_b * mu_b
    mu_ab = mu_a * mu_b

    sigma_a = uniform_filter(a * a, size=window) - mu_a_sq
    sigma_b = uniform_filter(b * b, size=window) - mu_b_sq
    sigma_ab = uniform_filter(a * b, size=window) - mu_ab

    numerator = (2.0 * mu_ab + c1) * (2.0 * sigma_ab + c2)
    denominator = (mu_a_sq + mu_b_sq + c1) * (sigma_a + sigma_b + c2)
    ssim_map = numerator / np.maximum(denominator, 1e-12)
    return float(np.clip(np.mean(ssim_map), -1.0, 1.0))
