"""Runtime and memory accounting: FPS meters and peak-Gaussian-memory estimates.

The paper reports two throughput numbers: *tracking FPS* (tracking work only,
over all frames) and *overall FPS* (tracking plus mapping), plus the peak
Gaussian memory capacity in GB.  The meters here accumulate the modelled
per-frame latencies produced by :mod:`repro.hardware` and convert them to the
same quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.gaussian_model import BYTES_PER_GAUSSIAN, GaussianCloud


@dataclass
class FPSMeter:
    """Accumulates per-frame latencies (seconds) split by pipeline stage."""

    tracking_seconds: list[float] = field(default_factory=list)
    mapping_seconds: list[float] = field(default_factory=list)
    other_seconds: list[float] = field(default_factory=list)

    def add_frame(
        self, tracking: float, mapping: float = 0.0, other: float = 0.0
    ) -> None:
        """Record one frame's latency contributions."""
        self.tracking_seconds.append(float(tracking))
        self.mapping_seconds.append(float(mapping))
        self.other_seconds.append(float(other))

    @property
    def n_frames(self) -> int:
        return len(self.tracking_seconds)

    @property
    def tracking_fps(self) -> float:
        """Frames per second counting tracking work only."""
        total = sum(self.tracking_seconds)
        if total <= 0:
            return float("inf")
        return self.n_frames / total

    @property
    def overall_fps(self) -> float:
        """Frames per second counting tracking + mapping + other work."""
        total = (
            sum(self.tracking_seconds)
            + sum(self.mapping_seconds)
            + sum(self.other_seconds)
        )
        if total <= 0:
            return float("inf")
        return self.n_frames / total

    def latency_breakdown(self) -> dict[str, float]:
        """Fraction of total runtime spent in each stage (Fig. 3(a) style)."""
        totals = {
            "tracking": sum(self.tracking_seconds),
            "mapping": sum(self.mapping_seconds),
            "other": sum(self.other_seconds),
        }
        grand = sum(totals.values())
        if grand <= 0:
            return {k: 0.0 for k in totals}
        return {k: v / grand for k, v in totals.items()}


def gaussian_memory_gb(n_gaussians: int, overhead_factor: float = 12.0) -> float:
    """Estimate peak Gaussian memory in GB for ``n_gaussians``.

    ``overhead_factor`` accounts for optimiser state, gradients, activation
    buffers and sorting scratch that the full training pipeline keeps alive on
    top of the raw parameters (the paper's 7-15 GB footprints for ~1e6-1e7
    Gaussians imply roughly an order of magnitude over the raw parameters).
    """
    raw = n_gaussians * BYTES_PER_GAUSSIAN
    return raw * overhead_factor / 1e9


def model_size_report(cloud: GaussianCloud) -> dict[str, float]:
    """Summarise the memory footprint of a Gaussian cloud."""
    return {
        "n_total": float(cloud.n_total),
        "n_active": float(cloud.n_active),
        "parameter_mb": cloud.memory_bytes() / 1e6,
        "active_parameter_mb": cloud.memory_bytes(include_inactive=False) / 1e6,
        "peak_memory_gb": gaussian_memory_gb(cloud.n_total),
    }


def speedup(baseline_latency: float, optimized_latency: float) -> float:
    """Return the speedup factor of ``optimized`` over ``baseline``."""
    if optimized_latency <= 0:
        return float("inf")
    return baseline_latency / optimized_latency


def geometric_mean(values: np.ndarray | list[float]) -> float:
    """Geometric mean, the conventional aggregate for speedup factors."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))
