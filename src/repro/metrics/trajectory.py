"""Trajectory accuracy metrics: Absolute Trajectory Error (ATE).

The paper reports ATE RMSE in centimetres after rigid alignment of the
estimated and ground-truth trajectories (the standard TUM evaluation
protocol).  ``cumulative_ate`` reproduces the drift-accumulation curve of
Fig. 13(b).
"""

from __future__ import annotations

import numpy as np

from repro.gaussians.se3 import SE3


def _positions(trajectory: list[SE3] | np.ndarray) -> np.ndarray:
    """Extract camera centres from a list of world-to-camera poses or an (N,3) array."""
    if isinstance(trajectory, np.ndarray):
        return np.asarray(trajectory, dtype=np.float64).reshape(-1, 3)
    centres = []
    for pose in trajectory:
        # Camera centre in world coordinates is -R^T t for a world-to-camera pose.
        centres.append(-pose.rotation.T @ pose.translation)
    return np.asarray(centres)


def align_trajectories(
    estimated: np.ndarray, ground_truth: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rigidly align ``estimated`` onto ``ground_truth`` (Umeyama without scale).

    Returns ``(aligned_estimated, rotation, translation)``.
    """
    est = np.asarray(estimated, dtype=np.float64)
    gt = np.asarray(ground_truth, dtype=np.float64)
    if est.shape != gt.shape:
        raise ValueError(f"trajectory shapes differ: {est.shape} vs {gt.shape}")
    if est.shape[0] == 0:
        return est.copy(), np.eye(3), np.zeros(3)
    mu_est = est.mean(axis=0)
    mu_gt = gt.mean(axis=0)
    est_c = est - mu_est
    gt_c = gt - mu_gt
    covariance = gt_c.T @ est_c / est.shape[0]
    u, _, vt = np.linalg.svd(covariance)
    sign = np.sign(np.linalg.det(u @ vt))
    correction = np.diag([1.0, 1.0, sign])
    rotation = u @ correction @ vt
    translation = mu_gt - rotation @ mu_est
    aligned = est @ rotation.T + translation
    return aligned, rotation, translation


def ate_rmse(
    estimated: list[SE3] | np.ndarray,
    ground_truth: list[SE3] | np.ndarray,
    align: bool = True,
    scale: float = 100.0,
) -> float:
    """Absolute Trajectory Error RMSE.

    ``scale`` converts the scene units to the reported unit; the default of
    100 matches the paper's centimetres-for-metre-scenes convention.
    """
    est = _positions(estimated)
    gt = _positions(ground_truth)
    if est.shape != gt.shape:
        raise ValueError(f"trajectory lengths differ: {est.shape} vs {gt.shape}")
    if est.shape[0] == 0:
        return 0.0
    if align and est.shape[0] >= 3:
        est, _, _ = align_trajectories(est, gt)
    errors = np.linalg.norm(est - gt, axis=1)
    return float(np.sqrt(np.mean(errors**2)) * scale)


def cumulative_ate(
    estimated: list[SE3] | np.ndarray,
    ground_truth: list[SE3] | np.ndarray,
    scale: float = 100.0,
) -> np.ndarray:
    """Per-frame cumulative ATE curve (no alignment), as in Fig. 13(b).

    Entry ``i`` is the ATE RMSE of the first ``i + 1`` frames, so the curve
    shows how pose error accumulates ("drift") over the sequence.
    """
    est = _positions(estimated)
    gt = _positions(ground_truth)
    if est.shape != gt.shape:
        raise ValueError(f"trajectory lengths differ: {est.shape} vs {gt.shape}")
    errors_sq = np.sum((est - gt) ** 2, axis=1)
    cumulative_mean = np.cumsum(errors_sq) / np.arange(1, len(errors_sq) + 1)
    return np.sqrt(cumulative_mean) * scale
