"""Evaluation metrics used throughout the paper's tables and figures."""

from repro.metrics.image import format_db, psnr, rmse, ssim
from repro.metrics.performance import FPSMeter, gaussian_memory_gb, model_size_report
from repro.metrics.trajectory import align_trajectories, ate_rmse, cumulative_ate

__all__ = [
    "FPSMeter",
    "align_trajectories",
    "ate_rmse",
    "cumulative_ate",
    "format_db",
    "gaussian_memory_gb",
    "model_size_report",
    "psnr",
    "rmse",
    "ssim",
]
