"""repro: a Python reproduction of RTGS (MICRO 2025).

RTGS: Real-Time 3D Gaussian Splatting SLAM via Multi-Level Redundancy
Reduction.  The package provides:

* ``repro.gaussians`` - a differentiable 3D Gaussian Splatting rasterizer
  (projection, tile intersection, sorting, alpha blending, full backward pass)
* ``repro.engine`` - the unified ``RenderEngine`` session API over a
  pluggable backend registry: owns backend selection, the geometry cache,
  the fragment arena and workload-snapshot emission for every render
* ``repro.slam`` - tracking / mapping / keyframing pipelines mirroring the
  base algorithms the paper builds on (GS-SLAM, MonoGS, Photo-SLAM, SplaTAM)
* ``repro.datasets`` - procedural RGB-D datasets standing in for TUM-RGBD,
  Replica, ScanNet and ScanNet++
* ``repro.core`` - the RTGS algorithm: adaptive Gaussian pruning and dynamic
  downsampling, plus the pruning baselines it is compared against
* ``repro.hardware`` - cycle/energy models of the edge GPU baseline, DISTWAR,
  GauSPU and the RTGS plug-in (RE, WSU, R&B Buffer, GMU, PE)
* ``repro.profiling`` and ``repro.metrics`` - the measurements behind the
  paper's profiling and evaluation sections
* ``repro.testing`` - differential and golden verification harness pinning
  the rasterizer backends against each other and against committed fixtures
"""

__version__ = "0.1.0"

__all__ = [
    "core",
    "datasets",
    "engine",
    "gaussians",
    "hardware",
    "metrics",
    "profiling",
    "slam",
    "testing",
    "utils",
]
