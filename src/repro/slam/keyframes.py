"""Keyframe selection policies.

Each base 3DGS-SLAM algorithm in the paper uses a different policy (Sec. 6.1):
GS-SLAM keys on scene change (pose distance), MonoGS on fixed frame intervals,
Photo-SLAM on photometric change, and SplaTAM maps every frame.  RTGS keeps
the base algorithm's policy untouched and *reuses* its decision to drive
dynamic downsampling, which is why the policies live in the SLAM substrate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.slam.frame import Frame
from repro.slam.losses import image_difference_metrics


class KeyframePolicy(ABC):
    """Decides whether the current frame becomes a keyframe."""

    def reset(self) -> None:
        """Clear any internal state (called at the start of a sequence)."""

    @abstractmethod
    def is_keyframe(self, frame: Frame, last_keyframe: Frame | None) -> bool:
        """Return True when ``frame`` should be promoted to a keyframe."""


class EveryFramePolicy(KeyframePolicy):
    """SplaTAM-style: every frame is mapped (no keyframe distinction)."""

    def is_keyframe(self, frame: Frame, last_keyframe: Frame | None) -> bool:
        return True


class IntervalKeyframePolicy(KeyframePolicy):
    """MonoGS-style: a keyframe every ``interval`` frames."""

    def __init__(self, interval: int = 5):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval

    def is_keyframe(self, frame: Frame, last_keyframe: Frame | None) -> bool:
        if last_keyframe is None:
            return True
        return (frame.index - last_keyframe.index) >= self.interval


class PoseDistanceKeyframePolicy(KeyframePolicy):
    """GS-SLAM-style: keyframe when the camera moved far enough since the last one."""

    def __init__(self, translation_threshold: float = 0.25, rotation_threshold: float = 0.35):
        self.translation_threshold = float(translation_threshold)
        self.rotation_threshold = float(rotation_threshold)

    def is_keyframe(self, frame: Frame, last_keyframe: Frame | None) -> bool:
        if last_keyframe is None:
            return True
        current = frame.estimated_pose_cw or frame.gt_pose_cw
        previous = last_keyframe.estimated_pose_cw or last_keyframe.gt_pose_cw
        if current is None or previous is None:
            return False
        translation, rotation = previous.distance(current)
        return (
            translation >= self.translation_threshold
            or rotation >= self.rotation_threshold
        )


class PhotometricKeyframePolicy(KeyframePolicy):
    """Photo-SLAM-style: keyframe when image content changed enough."""

    def __init__(self, rmse_threshold: float = 0.08):
        self.rmse_threshold = float(rmse_threshold)

    def is_keyframe(self, frame: Frame, last_keyframe: Frame | None) -> bool:
        if last_keyframe is None:
            return True
        if frame.image.shape != last_keyframe.image.shape:
            # Compare at matching resolution by subsampling the larger image.
            return True
        metrics = image_difference_metrics(frame.image, last_keyframe.image)
        return metrics["rmse"] >= self.rmse_threshold


def make_keyframe_policy(spec: str, **kwargs) -> KeyframePolicy:
    """Factory used by the algorithm configuration layer.

    ``spec`` is one of ``every_frame``, ``interval``, ``pose_distance`` or
    ``photometric``; keyword arguments are forwarded to the policy constructor.
    """
    policies = {
        "every_frame": EveryFramePolicy,
        "interval": IntervalKeyframePolicy,
        "pose_distance": PoseDistanceKeyframePolicy,
        "photometric": PhotometricKeyframePolicy,
    }
    if spec not in policies:
        raise ValueError(f"unknown keyframe policy '{spec}'; options: {sorted(policies)}")
    return policies[spec](**kwargs)
