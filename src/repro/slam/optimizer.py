"""A small Adam optimiser for pose twists and Gaussian parameter blocks.

The SLAM pipelines in the paper optimise camera poses and Gaussian parameters
with Adam; this standalone implementation keeps per-parameter first/second
moment state keyed by block name and supports dynamically growing blocks
(Gaussian counts change when mapping densifies or pruning removes points).
"""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam with per-block state and support for resizing parameter blocks."""

    def __init__(self, beta1: float = 0.9, beta2: float = 0.999, epsilon: float = 1e-8):
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t: dict[str, int] = {}

    def reset(self, name: str | None = None) -> None:
        """Clear state for one block, or all blocks when ``name`` is None."""
        if name is None:
            self._m.clear()
            self._v.clear()
            self._t.clear()
        else:
            self._m.pop(name, None)
            self._v.pop(name, None)
            self._t.pop(name, None)

    def resize(self, name: str, new_length: int) -> None:
        """Adjust the leading dimension of a block's state (densify / prune)."""
        for store in (self._m, self._v):
            if name in store:
                old = store[name]
                if old.shape[0] == new_length:
                    continue
                resized = np.zeros((new_length,) + old.shape[1:])
                keep = min(old.shape[0], new_length)
                resized[:keep] = old[:keep]
                store[name] = resized

    def keep_rows(self, name: str, keep_mask: np.ndarray) -> None:
        """Drop state rows for removed Gaussians (keeps optimiser statistics aligned).

        A mask whose length disagrees with existing state is an upstream
        bookkeeping bug (a pruner removed rows the optimiser never saw, or a
        resize was skipped); silently ignoring it used to let the next
        :meth:`step` discard the momenta wholesale via its shape check, so it
        now fails loudly instead.
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        for store in (self._m, self._v):
            if name not in store:
                continue
            if store[name].shape[0] != keep_mask.shape[0]:
                raise ValueError(
                    f"keep_rows({name!r}): mask has {keep_mask.shape[0]} rows but "
                    f"optimiser state has {store[name].shape[0]}; state and cloud "
                    "went out of sync"
                )
            store[name] = store[name][keep_mask]

    def step(self, name: str, gradient: np.ndarray, learning_rate: float) -> np.ndarray:
        """Return the parameter *update* (to be added to the parameters) for ``gradient``.

        The returned update already includes the negative sign, i.e. callers do
        ``params += update``.
        """
        gradient = np.asarray(gradient, dtype=np.float64)
        if name not in self._m or self._m[name].shape != gradient.shape:
            self._m[name] = np.zeros_like(gradient)
            self._v[name] = np.zeros_like(gradient)
            self._t[name] = 0
        self._t[name] += 1
        t = self._t[name]
        self._m[name] = self.beta1 * self._m[name] + (1.0 - self.beta1) * gradient
        self._v[name] = self.beta2 * self._v[name] + (1.0 - self.beta2) * gradient**2
        m_hat = self._m[name] / (1.0 - self.beta1**t)
        v_hat = self._v[name] / (1.0 - self.beta2**t)
        return -learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
