"""SLAM losses (Eq. 6): weighted photometric + geometric residuals.

The loss combines a photometric term (squared colour error against the
observation) and a geometric term (squared depth error on valid depth
pixels).  Its image/depth gradients are exactly what Step 4 Rendering BP
consumes, and - crucially for RTGS - the per-Gaussian gradients computed from
it are reused for the pruning importance score at no extra cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.rasterizer import RenderResult
from repro.slam.frame import Frame


@dataclass
class LossResult:
    """Scalar loss plus the gradients flowing back into the rasterizer."""

    total: float
    photometric: float
    geometric: float
    dL_dimage: np.ndarray
    dL_ddepth: np.ndarray | None


def photometric_geometric_loss(
    render: RenderResult,
    frame: Frame,
    lambda_photometric: float = 0.6,
    use_depth: bool = True,
    depth_sigma: float = 0.05,
) -> LossResult:
    """Compute Eq. 6: ``L = lambda * E_pho + (1 - lambda) * E_geo``.

    ``E_pho`` is the mean squared colour error; ``E_geo`` the mean squared
    depth error over pixels with valid observed depth, normalised by
    ``depth_sigma`` (metres) so that a ``depth_sigma``-sized depth error is
    comparable to a full-scale colour error.  Without this normalisation the
    geometric term is orders of magnitude weaker than the photometric one and
    cannot resolve the translation/rotation ambiguity of low-parallax motion.
    Means (rather than sums) keep the loss scale independent of the dynamic
    downsampling resolution, so one learning rate works across resolutions.
    """
    if not 0.0 <= lambda_photometric <= 1.0:
        raise ValueError(
            f"lambda_photometric must lie in [0, 1], got {lambda_photometric}"
        )
    if render.image.shape != frame.image.shape:
        raise ValueError(
            f"render resolution {render.image.shape} does not match frame "
            f"{frame.image.shape}; downsample the frame and camera together"
        )

    n_pixels = frame.image.shape[0] * frame.image.shape[1]
    color_residual = render.image - frame.image
    photometric = float(np.mean(color_residual**2))
    dL_dimage = lambda_photometric * 2.0 * color_residual / (n_pixels * 3)

    geometric = 0.0
    dL_ddepth = None
    if use_depth and lambda_photometric < 1.0:
        # Only compare depth where the observation is valid *and* the render
        # actually covers the pixel; uncovered pixels otherwise produce huge
        # spurious residuals that destabilise pose optimisation.
        valid = (frame.depth > 1e-6) & (render.alpha > 0.5)
        n_valid = max(int(valid.sum()), 1)
        depth_residual = np.where(valid, (render.depth - frame.depth) / depth_sigma, 0.0)
        geometric = float(np.sum(depth_residual**2) / n_valid)
        dL_ddepth = (
            (1.0 - lambda_photometric) * 2.0 * depth_residual / (n_valid * depth_sigma)
        )

    total = lambda_photometric * photometric + (1.0 - lambda_photometric) * geometric
    return LossResult(
        total=total,
        photometric=photometric,
        geometric=geometric,
        dL_dimage=dL_dimage,
        dL_ddepth=dL_ddepth,
    )


def image_difference_metrics(image_a: np.ndarray, image_b: np.ndarray) -> dict[str, float]:
    """RMSE / mean-absolute difference between two frames (keyframe policies use this)."""
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    diff = a - b
    return {
        "rmse": float(np.sqrt(np.mean(diff**2))),
        "mae": float(np.mean(np.abs(diff))),
    }
