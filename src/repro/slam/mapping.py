"""SLAM mapping: keyframe-driven optimisation of the Gaussian map.

Mapping runs only on keyframes (except for SplaTAM-style pipelines that map
every frame): it densifies the cloud with new Gaussians where the current
render under-covers the observation, then optimises Gaussian parameters
against a small window of recent keyframes with Adam.  The per-iteration
workload snapshots it emits feed the same profiling and hardware models as
tracking, since the paper accelerates both stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.backward import render_backward
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.rasterizer import rasterize
from repro.slam.frame import Frame
from repro.slam.losses import photometric_geometric_loss
from repro.slam.optimizer import Adam
from repro.slam.records import WorkloadSnapshot


@dataclass
class MappingConfig:
    """Hyper-parameters of the mapper."""

    n_iterations: int = 15
    position_learning_rate: float = 2e-3
    color_learning_rate: float = 5e-2
    opacity_learning_rate: float = 5e-2
    scale_learning_rate: float = 5e-3
    lambda_photometric: float = 0.6
    use_depth: bool = True
    keyframe_window: int = 3
    densify_stride: int = 6
    densify_alpha_threshold: float = 0.5
    densify_depth_error: float = 0.15
    opacity_prune_threshold: float = 0.02
    max_gaussians: int = 60000
    record_workloads: bool = True


@dataclass
class MappingResult:
    """Outcome of mapping one keyframe."""

    losses: list[float]
    n_added: int
    n_pruned: int
    snapshots: list[WorkloadSnapshot] = field(default_factory=list)


class Mapper:
    """Keyframe mapper: densification + windowed Gaussian optimisation."""

    def __init__(self, config: MappingConfig | None = None):
        self.config = config or MappingConfig()
        self._optimizer = Adam()

    def initialize_map(self, cloud: GaussianCloud, frame: Frame, stride: int = 4) -> int:
        """Seed the map from the first frame's RGB-D observation; returns Gaussians added."""
        pose = frame.estimated_pose_cw or frame.gt_pose_cw
        if pose is None:
            raise ValueError("frame must carry a pose to initialise the map")
        seeded = GaussianCloud.from_rgbd(frame.image, frame.depth, frame.camera, pose, stride=stride)
        cloud.extend(seeded)
        return len(seeded)

    def map(
        self,
        cloud: GaussianCloud,
        keyframes: list[Frame],
        map_every_frame: bool = False,
    ) -> MappingResult:
        """Densify from the newest keyframe and optimise over the keyframe window."""
        if not keyframes:
            return MappingResult(losses=[], n_added=0, n_pruned=0)
        config = self.config
        newest = keyframes[-1]
        n_added = self._densify(cloud, newest)
        window = keyframes[-config.keyframe_window :]

        losses: list[float] = []
        snapshots: list[WorkloadSnapshot] = []
        for iteration in range(config.n_iterations):
            frame = window[iteration % len(window)]
            pose = frame.estimated_pose_cw or frame.gt_pose_cw
            render = rasterize(cloud, frame.camera, pose)
            loss = photometric_geometric_loss(
                render,
                frame,
                lambda_photometric=config.lambda_photometric,
                use_depth=config.use_depth,
            )
            gradients = render_backward(
                render, cloud, loss.dL_dimage, loss.dL_ddepth, compute_pose_gradient=False
            )
            losses.append(loss.total)
            if config.record_workloads:
                snapshots.append(
                    WorkloadSnapshot.from_iteration(
                        render,
                        gradients,
                        stage="mapping",
                        frame_index=newest.index,
                        iteration=iteration,
                        is_keyframe=True,
                        loss=loss.total,
                        n_gaussians_total=cloud.n_total,
                        n_gaussians_active=cloud.n_active,
                        resolution_fraction=frame.resolution_fraction,
                    )
                )
            self._apply_updates(cloud, gradients)

        n_pruned = self._prune_transparent(cloud)
        return MappingResult(
            losses=losses, n_added=n_added, n_pruned=n_pruned, snapshots=snapshots
        )

    # -- internals -----------------------------------------------------------
    def _apply_updates(self, cloud: GaussianCloud, gradients) -> None:
        """Adam steps on all Gaussian parameter blocks, frozen for masked Gaussians."""
        config = self.config
        inactive = ~cloud.active
        updates = {
            "positions": self._optimizer.step(
                "positions", gradients.positions, config.position_learning_rate
            ),
            "log_scales": self._optimizer.step(
                "log_scales", gradients.log_scales, config.scale_learning_rate
            ),
            "opacity_logits": self._optimizer.step(
                "opacity_logits", gradients.opacity_logits, config.opacity_learning_rate
            ),
            "colors": self._optimizer.step(
                "colors", gradients.colors, config.color_learning_rate
            ),
        }
        for name, update in updates.items():
            if np.any(inactive):
                update[inactive] = 0.0
        cloud.apply_parameter_step(
            d_positions=updates["positions"],
            d_log_scales=updates["log_scales"],
            d_opacity_logits=updates["opacity_logits"],
            d_colors=updates["colors"],
        )

    def _densify(self, cloud: GaussianCloud, frame: Frame) -> int:
        """Insert Gaussians where the current render misses coverage or depth."""
        config = self.config
        if cloud.n_total >= config.max_gaussians:
            return 0
        pose = frame.estimated_pose_cw or frame.gt_pose_cw
        if cloud.n_total == 0:
            return self.initialize_map(cloud, frame, stride=config.densify_stride)

        render = rasterize(cloud, frame.camera, pose)
        stride = config.densify_stride
        alpha = render.alpha[::stride, ::stride]
        depth_err = np.abs(render.depth - frame.depth)[::stride, ::stride]
        observed = frame.depth[::stride, ::stride] > 0.15
        needs_coverage = (alpha < config.densify_alpha_threshold) & observed
        needs_geometry = (depth_err > config.densify_depth_error) & observed
        mask = needs_coverage | needs_geometry
        if not np.any(mask):
            return 0

        vs, us = np.nonzero(mask)
        pixels = np.stack([us * stride + 0.5, vs * stride + 0.5], axis=1)
        depths = frame.depth[vs * stride, us * stride]
        colors = frame.image[vs * stride, us * stride]
        points_cam = frame.camera.unproject(pixels, depths)
        points_world = pose.inverse().apply(points_cam)
        scales = depths / frame.camera.fx * stride * 0.7
        budget = config.max_gaussians - cloud.n_total
        if len(points_world) > budget:
            keep = np.linspace(0, len(points_world) - 1, budget).astype(int)
            points_world, colors, scales = points_world[keep], colors[keep], scales[keep]
        new_cloud = GaussianCloud.from_points(points_world, colors, scale=scales, opacity=0.7)
        before = cloud.n_total
        cloud.extend(new_cloud)
        self._resize_optimizer(cloud)
        return cloud.n_total - before

    def _prune_transparent(self, cloud: GaussianCloud) -> int:
        """Remove Gaussians whose opacity collapsed below the prune threshold."""
        opacities = cloud.opacities()
        keep = opacities >= self.config.opacity_prune_threshold
        n_pruned = int(np.count_nonzero(~keep))
        if n_pruned:
            for name in ("positions", "log_scales", "opacity_logits", "colors"):
                self._optimizer.keep_rows(name, keep)
            cloud.keep_only(keep)
        return n_pruned

    def _resize_optimizer(self, cloud: GaussianCloud) -> None:
        for name in ("positions", "log_scales", "opacity_logits", "colors"):
            self._optimizer.resize(name, cloud.n_total)

    def notify_removed(self, keep_mask: np.ndarray) -> None:
        """Keep optimiser state aligned when an external pruner removes Gaussians."""
        for name in ("positions", "log_scales", "opacity_logits", "colors"):
            self._optimizer.keep_rows(name, keep_mask)
