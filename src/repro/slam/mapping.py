"""SLAM mapping: a multi-keyframe scheduler over the batched rasterizer.

Mapping runs only on keyframes (except for SplaTAM-style pipelines that map
every frame): it densifies the cloud with new Gaussians where the current
render under-covers the observation, then optimises Gaussian parameters
against a window of keyframes with Adam.

Since the batched-rasterizer rework, each ``map()`` iteration *jointly*
optimises a window of keyframes — the current keyframe plus its most covisible
predecessors, as in the paper's joint mapping optimisation — instead of
round-robining one view per iteration:

* the window is rendered through :meth:`repro.engine.RenderEngine.render_batch`,
  so per-Gaussian preprocessing is shared and all views' fragments live in
  the engine's recycled arena;
* the backward pass is fused (:meth:`repro.engine.RenderEngine.backward_batch`):
  cloud gradients accumulate across views in a single pass and one averaged
  Adam update is applied per iteration;
* covisibility is scored from cached per-keyframe visible-Gaussian rows
  (stacked single-pass reductions, no per-keyframe Python loops).  Those
  cached rows index the cloud, so *every* removal path — the mapper's own
  transparency pruning and external pruners reporting through
  :meth:`StreamingMapper.notify_removed` — must remap them; a batched
  iteration issued right after a prune would otherwise index stale rows;
* the mapper renders through an injected :class:`repro.engine.RenderEngine`
  (building one from its own config when none is given) whose managed state
  includes the per-window Step 1-2 geometry cache: poses are fixed within a
  window, so Step 1-2 products are reused across all iterations of the
  window, keyed by the cloud's mutation epoch and invalidated on the
  densify/prune/removal paths (``MappingConfig.geom_cache=False`` or
  ``REPRO_GEOM_CACHE=0`` disable it).

The per-view workload snapshots it emits feed the same profiling and hardware
models as tracking; they carry ``batch_size``/``view_index`` so those
consumers can amortise the shared preprocessing across the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.engine import EngineConfig, RenderEngine
from repro.gaussians.gaussian_model import GaussianCloud
from repro.slam.frame import Frame
from repro.slam.losses import photometric_geometric_loss
from repro.slam.optimizer import Adam
from repro.slam.records import WorkloadSnapshot

_PARAMETER_BLOCKS = ("positions", "log_scales", "opacity_logits", "colors")


@dataclass
class MappingConfig:
    """Hyper-parameters of the mapper."""

    n_iterations: int = 15
    position_learning_rate: float = 2e-3
    color_learning_rate: float = 5e-2
    opacity_learning_rate: float = 5e-2
    scale_learning_rate: float = 5e-3
    lambda_photometric: float = 0.6
    use_depth: bool = True
    keyframe_window: int = 3
    densify_stride: int = 6
    densify_alpha_threshold: float = 0.5
    densify_depth_error: float = 0.15
    opacity_prune_threshold: float = 0.02
    max_gaussians: int = 60000
    record_workloads: bool = True
    # -- multi-keyframe scheduler ------------------------------------------
    # Keyframe views jointly optimised per fused iteration (current frame +
    # covisible partners).  None inherits ``keyframe_window``, so widening
    # the window keeps its pre-scheduler meaning; 1 degenerates to
    # single-view batches.
    batch_views: int | None = None
    # Newest keyframes considered as covisible partners of the current one.
    covisibility_pool: int = 12
    # Per-keyframe visible-row caches kept for covisibility scoring.
    visibility_cache_size: int = 64
    # Escape hatch back to the pre-scheduler round-robin loop (one view per
    # iteration, cycling through the trailing window).
    batched: bool = True
    # -- rasterization ------------------------------------------------------
    # Tile granularity of the mapping renders (fine tiles suit small-splat
    # late-SLAM maps).  None inherits the engine's configuration — and with
    # it the REPRO_TILE_SIZE / REPRO_SUBTILE_SIZE environment knobs; an
    # explicit value pins the mapping renders regardless of the engine.
    tile_size: int | None = None
    subtile_size: int | None = None
    # Worker-process count for the `sharded` backend when mapping renders
    # resolve to it (REPRO_RASTER_BACKEND=sharded / an engine pinned to it).
    # None inherits the engine/env default (REPRO_SHARD_WORKERS, else
    # cpu-count-aware); forwarded into the mapper-built engine only.
    shard_workers: int | None = None
    # -- geometry cache -----------------------------------------------------
    # Per-window Step 1-2 cache (repro.gaussians.geom_cache): poses are fixed
    # within a window and the cloud moves by at most ~learning-rate per
    # iteration, so projection/tiling/sorting results are reused across all
    # iterations of the window and invalidated by densify/prune/
    # notify_removed via the cloud's mutation epochs.  ``geom_cache=False``
    # or REPRO_GEOM_CACHE=0 restores the uncached PR 2 path.
    geom_cache: bool = True
    # Screen-space staleness (pixels) under which cached geometry may be
    # reused after position/scale steps; 0 keeps only the exact reuse tiers.
    geom_cache_tolerance_px: float = 0.5
    # Alpha-cutoff headroom for contributing-pair refinement; 0 disables it.
    geom_cache_refine_margin: float = 8.0
    # Headroom on the verified per-tile termination depth; 0 disables
    # fragment-list truncation.
    geom_cache_termination_margin: float = 0.25
    # Pose quantisation step for cache keys (0 disables): cross-window
    # tracking deltas smaller than the quantum re-key onto the previous
    # window's entries and reuse them through the toleranced stale-geometry
    # tier instead of rebuilding at each new pose.  Requires a non-zero
    # geom_cache_tolerance_px.
    geom_cache_pose_quantum: float = 0.0


@dataclass
class MappingResult:
    """Outcome of mapping one keyframe."""

    losses: list[float]
    n_added: int
    n_pruned: int
    snapshots: list[WorkloadSnapshot] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)  # window size per iteration

    @property
    def max_batch_size(self) -> int:
        return max(self.batch_sizes, default=1)


class StreamingMapper:
    """Multi-keyframe mapper: densification + windowed joint optimisation.

    All rendering flows through ``self.engine``: an injected
    :class:`repro.engine.RenderEngine`, or one the mapper builds from its
    own config.  An *injected* engine's configuration wins outright — its
    ``geom_cache`` setting replaces ``MappingConfig.geom_cache`` and the
    ``REPRO_GEOM_CACHE`` escape hatch (seed injected engines with
    ``EngineConfig.from_env()`` to keep the env knobs live).  The engine
    owns the recycled fragment arena (fused
    iterations consume each batch via the fused backward before the next
    render may overwrite the storage — enforced by the engine's arena
    ownership tracking) and the per-window Step 1-2 geometry cache,
    invalidated on every removal path.  The legacy round-robin loop renders
    unmanaged, so no cache entries are built that nothing ever reuses.
    """

    def __init__(self, config: MappingConfig | None = None, engine: RenderEngine | None = None):
        self.config = config or MappingConfig()
        self.engine = engine if engine is not None else self._build_engine(self.config)
        self._optimizer = Adam()
        # Cloud rows visible from each mapped keyframe, keyed by frame index.
        # Drives covisibility-based window selection; remapped on every prune.
        self._keyframe_visibility: dict[int, np.ndarray] = {}

    @staticmethod
    def _build_engine(config: MappingConfig) -> RenderEngine:
        """Engine matching this mapper's config, seeded from the environment.

        The geometry cache follows both the config switch and the
        ``REPRO_GEOM_CACHE`` escape hatch (via ``EngineConfig.from_env``),
        and is disabled for the legacy round-robin loop.
        """
        base = EngineConfig.from_env()
        return RenderEngine(
            replace(
                base,
                # backend=None: REPRO_RASTER_BACKEND seeds the *process*
                # default, so use_backend()/set_default_backend() keep
                # overriding it through a mapper-built engine.
                backend=None,
                tile_size=base.tile_size if config.tile_size is None else config.tile_size,
                subtile_size=(
                    base.subtile_size if config.subtile_size is None else config.subtile_size
                ),
                shard_workers=(
                    base.shard_workers if config.shard_workers is None else config.shard_workers
                ),
                geom_cache=base.geom_cache and config.geom_cache and config.batched,
                cache_tolerance_px=config.geom_cache_tolerance_px,
                cache_refine_margin=config.geom_cache_refine_margin,
                cache_termination_margin=config.geom_cache_termination_margin,
                cache_max_entries=max(8, config.batch_views or config.keyframe_window),
                cache_pose_quantum=config.geom_cache_pose_quantum,
            )
        )

    def initialize_map(self, cloud: GaussianCloud, frame: Frame, stride: int = 4) -> int:
        """Seed the map from the first frame's RGB-D observation; returns Gaussians added."""
        pose = frame.estimated_pose_cw or frame.gt_pose_cw
        if pose is None:
            raise ValueError("frame must carry a pose to initialise the map")
        seeded = GaussianCloud.from_rgbd(
            frame.image, frame.depth, frame.camera, pose, stride=stride
        )
        cloud.extend(seeded)
        return len(seeded)

    def map(
        self,
        cloud: GaussianCloud,
        keyframes: list[Frame],
        map_every_frame: bool = False,
    ) -> MappingResult:
        """Densify from the newest keyframe and jointly optimise a keyframe window."""
        if not keyframes:
            return MappingResult(losses=[], n_added=0, n_pruned=0)
        config = self.config
        newest = keyframes[-1]
        n_added = self._densify(cloud, newest)

        losses: list[float] = []
        snapshots: list[WorkloadSnapshot] = []
        batch_sizes: list[int] = []
        # On a pipelining backend (``async``), hint each *next* iteration's
        # window right after the optimiser update lands: the workers plan
        # window k+1's Step 1-2 (geometry-cache lookups included) against a
        # shadow arena while the parent still runs window k's visibility
        # recording, snapshot emission and window re-selection.  The hint is
        # issued only once the cloud is final for the next iteration, so the
        # speculation key matches at consume time; any structural surprise
        # (densify/prune between hints) invalidates it and it is discarded.
        pipelined = config.batched and hasattr(
            self.engine.backend(), "speculate_batch"
        )
        for iteration in range(config.n_iterations):
            if config.batched:
                window = self._select_window(keyframes)
                loss = self._fused_iteration(cloud, window, newest, iteration, snapshots)
            else:
                trailing = keyframes[-config.keyframe_window :]
                window = [trailing[iteration % len(trailing)]]
                loss = self._single_view_iteration(
                    cloud, window[0], newest, iteration, snapshots
                )
            losses.append(loss)
            batch_sizes.append(len(window))
            if pipelined and iteration + 1 < config.n_iterations:
                next_window = self._select_window(keyframes)
                self.engine.speculate_batch(
                    cloud,
                    [frame.camera for frame in next_window],
                    [
                        frame.estimated_pose_cw or frame.gt_pose_cw
                        for frame in next_window
                    ],
                    tile_size=config.tile_size,
                    subtile_size=config.subtile_size,
                )

        if pipelined:
            # Barrier before structural mutation: nothing speculative may
            # outlive this mapping call (the matrix and the differential
            # harness rely on per-call isolation).
            self.engine.drain()
        n_pruned = self._prune_transparent(cloud)
        return MappingResult(
            losses=losses,
            n_added=n_added,
            n_pruned=n_pruned,
            snapshots=snapshots,
            batch_sizes=batch_sizes,
        )

    def notify_removed(self, keep_mask: np.ndarray) -> None:
        """Keep mapper state aligned when an external pruner removes Gaussians.

        Both the optimiser moments *and* the cached per-keyframe visibility
        rows index the cloud, so both must shrink/remap together: a fused
        iteration scheduled right after a prune reads the visibility cache
        for window selection and would otherwise hit stale rows.
        """
        for name in _PARAMETER_BLOCKS:
            self._optimizer.keep_rows(name, keep_mask)
        self._remap_cached_rows(keep_mask)
        # The removal bumped the cloud's structure epoch (keep_only), so the
        # engine's cached Step 1-2 entries can never be reused; drop them
        # eagerly to free the per-view arrays.
        self.engine.invalidate_cache()

    # -- internals -----------------------------------------------------------
    def _select_window(self, keyframes: list[Frame]) -> list[Frame]:
        """Pick the newest keyframe plus its most covisible recent partners.

        Covisibility is the overlap between cached visible-Gaussian row sets;
        keyframes without a cache entry fall back to recency so a fresh run
        still forms windows.  The window is ordered oldest-first with the
        newest keyframe last.
        """
        config = self.config
        newest = keyframes[-1]
        budget = max(1, config.batch_views or config.keyframe_window)
        if budget == 1 or len(keyframes) == 1:
            return [newest]
        pool = keyframes[-(config.covisibility_pool + 1) : -1]
        newest_visible = self._keyframe_visibility.get(newest.index)
        pool_rows = [self._keyframe_visibility.get(frame.index) for frame in pool]
        overlaps = self._covisibility_overlaps(newest_visible, pool_rows)
        scored = [
            (int(overlap), frame.index, frame) for overlap, frame in zip(overlaps, pool)
        ]
        # Highest overlap first; recency breaks ties and orders the unknowns.
        scored.sort(key=lambda item: (item[0], item[1]), reverse=True)
        partners = [frame for _, _, frame in scored[: budget - 1]]
        partners.sort(key=lambda frame: frame.index)
        return partners + [newest]

    @staticmethod
    def _covisibility_overlaps(
        newest_visible: np.ndarray | None, pool_rows: list[np.ndarray | None]
    ) -> np.ndarray:
        """Overlap of each cached row set with the newest keyframe's, stacked.

        All known row sets are concatenated once and scored with a single
        membership gather + segmented sum instead of one ``intersect1d`` per
        keyframe.  Row sets are unique per keyframe (they are projection
        indices), so membership counts equal intersection sizes.  Unknown
        entries score -1, ranking below any measured overlap.
        """
        overlaps = np.full(len(pool_rows), -1, dtype=np.int64)
        if newest_visible is None:
            return overlaps
        known = [(index, rows) for index, rows in enumerate(pool_rows) if rows is not None]
        if not known:
            return overlaps
        lengths = np.array([rows.size for _, rows in known], dtype=np.int64)
        stacked = (
            np.concatenate([rows for _, rows in known])
            if int(lengths.sum())
            else np.zeros(0, dtype=np.int64)
        )
        bound = int(max(newest_visible.max(initial=-1), stacked.max(initial=-1))) + 1
        newest_mask = np.zeros(bound, dtype=bool)
        newest_mask[newest_visible] = True
        hit_counts = np.concatenate(
            [[0], np.cumsum(newest_mask[stacked].astype(np.int64))]
        )
        ends = np.cumsum(lengths)
        starts = ends - lengths
        overlaps[[index for index, _ in known]] = hit_counts[ends] - hit_counts[starts]
        return overlaps

    def _single_view_iteration(
        self,
        cloud: GaussianCloud,
        frame: Frame,
        newest: Frame,
        iteration: int,
        snapshots: list[WorkloadSnapshot],
    ) -> float:
        """Legacy round-robin iteration: one unmanaged view render.

        Unlike the batched path (flat by design — the arena layout *is* the
        batch), this goes through the regular backend dispatch, so
        ``REPRO_RASTER_BACKEND=tile`` / ``use_backend("tile")`` gives a full
        reference-backend mapping stage when combined with ``batched=False``.
        """
        config = self.config
        pose = frame.estimated_pose_cw or frame.gt_pose_cw
        render = self.engine.render(
            cloud,
            frame.camera,
            pose,
            tile_size=config.tile_size,
            subtile_size=config.subtile_size,
        )
        loss = photometric_geometric_loss(
            render,
            frame,
            lambda_photometric=config.lambda_photometric,
            use_depth=config.use_depth,
        )
        gradients = self.engine.backward(
            render, cloud, loss.dL_dimage, loss.dL_ddepth, compute_pose_gradient=False
        )
        self._record_visibility([frame], [render])
        if config.record_workloads:
            snapshots.append(
                self.engine.snapshot(
                    render,
                    gradients,
                    stage="mapping",
                    frame_index=newest.index,
                    iteration=iteration,
                    is_keyframe=True,
                    loss=loss.total,
                    n_gaussians_total=cloud.n_total,
                    n_gaussians_active=cloud.n_active,
                    resolution_fraction=frame.resolution_fraction,
                )
            )
        self._apply_updates(cloud, gradients)
        return loss.total

    def _fused_iteration(
        self,
        cloud: GaussianCloud,
        window: list[Frame],
        newest: Frame,
        iteration: int,
        snapshots: list[WorkloadSnapshot],
    ) -> float:
        """Render the window as one batch and apply one fused Adam update.

        The managed batch claims the engine's arena (or geometry-cache
        arena); the fused backward below consumes and releases it before the
        next iteration renders.
        """
        config = self.config
        poses = [frame.estimated_pose_cw or frame.gt_pose_cw for frame in window]
        batch = self.engine.render_batch(
            cloud,
            [frame.camera for frame in window],
            poses,
            tile_size=config.tile_size,
            subtile_size=config.subtile_size,
        )
        loss_results = [
            photometric_geometric_loss(
                render,
                frame,
                lambda_photometric=config.lambda_photometric,
                use_depth=config.use_depth,
            )
            for render, frame in zip(batch.views, window)
        ]
        gradients = self.engine.backward_batch(
            batch,
            cloud,
            [loss.dL_dimage for loss in loss_results],
            [loss.dL_ddepth for loss in loss_results],
            compute_pose_gradient=False,
        )
        self._record_visibility(window, batch.views)
        if config.record_workloads:
            traces = gradients.per_view_traces
            sharding = batch.sharding
            for view_index, (render, loss) in enumerate(zip(batch.views, loss_results)):
                snapshots.append(
                    self.engine.snapshot(
                        render,
                        None,
                        stage="mapping",
                        frame_index=newest.index,
                        iteration=iteration,
                        is_keyframe=True,
                        loss=loss.total,
                        n_gaussians_total=cloud.n_total,
                        n_gaussians_active=cloud.n_active,
                        resolution_fraction=window[view_index].resolution_fraction,
                        trace=traces[view_index],
                        batch_size=len(window),
                        view_index=view_index,
                        # Per-shard attribution of a sharded window: which
                        # worker rendered this view, its shard wall-clock and
                        # its share of the parent-side stitch overhead.
                        shard_workers=1 if sharding is None else sharding.n_workers,
                        shard_worker_id=(
                            0 if sharding is None else sharding.worker_ids[view_index]
                        ),
                        shard_seconds=(
                            0.0
                            if sharding is None
                            else sharding.view_shard_seconds[view_index]
                        ),
                        shard_stitch_seconds=(
                            0.0
                            if sharding is None
                            else sharding.stitch_seconds / max(len(window), 1)
                        ),
                        shard_plan_seconds=(
                            sharding.view_plan_seconds[view_index]
                            if sharding is not None and sharding.view_plan_seconds
                            else 0.0
                        ),
                        plan_site=(
                            "parent" if sharding is None else sharding.plan_site
                        ),
                        # Batch-level fault counts ride on every view of the
                        # window (aggregate from view_index == 0 to avoid
                        # double counting); escalation is per view.
                        fault_events=(
                            0 if sharding is None else len(sharding.fault_events)
                        ),
                        fault_retries=(
                            0 if sharding is None else sharding.fault_retries
                        ),
                        fault_quarantines=(
                            0
                            if sharding is None
                            else len(sharding.fault_quarantined_workers)
                        ),
                        fault_escalated=(
                            sharding is not None
                            and view_index in sharding.escalated_views
                        ),
                    )
                )
        # The fused gradients are summed over views; average them so the
        # learning rates keep their single-view meaning regardless of window
        # size.
        self._apply_updates(cloud, gradients.cloud, scale=1.0 / len(window))
        return float(np.mean([loss.total for loss in loss_results]))

    def _record_visibility(self, window: list[Frame], renders) -> None:
        for frame, render in zip(window, renders):
            self._keyframe_visibility[frame.index] = render.projected.indices.copy()
        limit = max(1, self.config.visibility_cache_size)
        while len(self._keyframe_visibility) > limit:
            self._keyframe_visibility.pop(min(self._keyframe_visibility))

    def _remap_cached_rows(self, keep_mask: np.ndarray) -> None:
        """Rewrite cached visibility rows after rows ``~keep_mask`` were removed.

        All cached row sets are remapped in one stacked pass (filter + gather
        over a single concatenated array) and split back per keyframe, rather
        than filtering each keyframe's rows in its own Python iteration.
        """
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if not self._keyframe_visibility:
            return
        new_row = np.cumsum(keep_mask) - 1
        n_old = keep_mask.shape[0]
        keys = list(self._keyframe_visibility)
        lengths = np.array(
            [self._keyframe_visibility[key].size for key in keys], dtype=np.int64
        )
        stacked = (
            np.concatenate([self._keyframe_visibility[key] for key in keys])
            if int(lengths.sum())
            else np.zeros(0, dtype=np.int64)
        )
        surviving = np.zeros(stacked.shape[0], dtype=bool)
        in_range = stacked < n_old
        surviving[in_range] = keep_mask[stacked[in_range]]
        remapped = new_row[stacked[surviving]]
        survivors_before = np.concatenate([[0], np.cumsum(surviving)])
        ends = np.cumsum(lengths)
        starts = ends - lengths
        counts = survivors_before[ends] - survivors_before[starts]
        for key, segment in zip(keys, np.split(remapped, np.cumsum(counts)[:-1])):
            self._keyframe_visibility[key] = segment

    def _apply_updates(self, cloud: GaussianCloud, gradients, scale: float = 1.0) -> None:
        """Adam steps on all Gaussian parameter blocks, frozen for masked Gaussians."""
        config = self.config
        inactive = ~cloud.active
        learning_rates = {
            "positions": config.position_learning_rate,
            "log_scales": config.scale_learning_rate,
            "opacity_logits": config.opacity_learning_rate,
            "colors": config.color_learning_rate,
        }
        updates = {
            name: self._optimizer.step(
                name, scale * np.asarray(getattr(gradients, name)), learning_rates[name]
            )
            for name in _PARAMETER_BLOCKS
        }
        for update in updates.values():
            if np.any(inactive):
                update[inactive] = 0.0
        cloud.apply_parameter_step(
            d_positions=updates["positions"],
            d_log_scales=updates["log_scales"],
            d_opacity_logits=updates["opacity_logits"],
            d_colors=updates["colors"],
        )

    def _densify(self, cloud: GaussianCloud, frame: Frame) -> int:
        """Insert Gaussians where the current render misses coverage or depth."""
        config = self.config
        if cloud.n_total >= config.max_gaussians:
            return 0
        pose = frame.estimated_pose_cw or frame.gt_pose_cw
        if cloud.n_total == 0:
            return self.initialize_map(cloud, frame, stride=config.densify_stride)

        render = self.engine.render(
            cloud,
            frame.camera,
            pose,
            tile_size=config.tile_size,
            subtile_size=config.subtile_size,
            managed=True,
        )
        # The densify render is the newest keyframe's first visibility sample,
        # so window selection has an overlap estimate before iteration 0.
        self._keyframe_visibility[frame.index] = render.projected.indices.copy()
        stride = config.densify_stride
        alpha = render.alpha[::stride, ::stride]
        depth_err = np.abs(render.depth - frame.depth)[::stride, ::stride]
        observed = frame.depth[::stride, ::stride] > 0.15
        # Forward-only render: nothing reads its tile caches past this point,
        # so free the engine arena for the first fused iteration.
        self.engine.release(render)
        needs_coverage = (alpha < config.densify_alpha_threshold) & observed
        needs_geometry = (depth_err > config.densify_depth_error) & observed
        mask = needs_coverage | needs_geometry
        if not np.any(mask):
            return 0

        vs, us = np.nonzero(mask)
        pixels = np.stack([us * stride + 0.5, vs * stride + 0.5], axis=1)
        depths = frame.depth[vs * stride, us * stride]
        colors = frame.image[vs * stride, us * stride]
        points_cam = frame.camera.unproject(pixels, depths)
        points_world = pose.inverse().apply(points_cam)
        scales = depths / frame.camera.fx * stride * 0.7
        budget = config.max_gaussians - cloud.n_total
        if len(points_world) > budget:
            keep = np.linspace(0, len(points_world) - 1, budget).astype(int)
            points_world, colors, scales = points_world[keep], colors[keep], scales[keep]
        new_cloud = GaussianCloud.from_points(points_world, colors, scale=scales, opacity=0.7)
        before = cloud.n_total
        cloud.extend(new_cloud)
        self._resize_optimizer(cloud)
        return cloud.n_total - before

    def _prune_transparent(self, cloud: GaussianCloud) -> int:
        """Remove Gaussians whose opacity collapsed below the prune threshold."""
        opacities = cloud.opacities()
        keep = opacities >= self.config.opacity_prune_threshold
        n_pruned = int(np.count_nonzero(~keep))
        if n_pruned:
            for name in _PARAMETER_BLOCKS:
                self._optimizer.keep_rows(name, keep)
            self._remap_cached_rows(keep)
            cloud.keep_only(keep)
            self.engine.invalidate_cache()
        return n_pruned

    def _resize_optimizer(self, cloud: GaussianCloud) -> None:
        for name in _PARAMETER_BLOCKS:
            self._optimizer.resize(name, cloud.n_total)


# Backwards-compatible alias: the pre-scheduler class name.
Mapper = StreamingMapper
