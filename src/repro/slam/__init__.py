"""SLAM substrate: tracking, mapping, keyframing and the end-to-end pipeline."""

from repro.slam.algorithms import (
    BASE_ALGORITHMS,
    SLAMConfig,
    gs_slam,
    make_algorithm,
    mono_gs,
    photo_slam,
    splatam,
)
from repro.slam.frame import Frame, downsample_frame, resample_image
from repro.slam.keyframes import (
    EveryFramePolicy,
    IntervalKeyframePolicy,
    KeyframePolicy,
    PhotometricKeyframePolicy,
    PoseDistanceKeyframePolicy,
    make_keyframe_policy,
)
from repro.slam.losses import LossResult, image_difference_metrics, photometric_geometric_loss
from repro.slam.mapping import Mapper, MappingConfig, MappingResult, StreamingMapper
from repro.slam.optimizer import Adam
from repro.slam.pipeline import SLAMPipeline, SLAMResult
from repro.slam.records import FrameRecord, WorkloadSnapshot
from repro.slam.tracking import (
    GeometricTracker,
    GeometricTrackingConfig,
    GradientTracker,
    TrackingConfig,
    TrackingHook,
    TrackingResult,
)

__all__ = [
    "Adam",
    "BASE_ALGORITHMS",
    "EveryFramePolicy",
    "Frame",
    "FrameRecord",
    "GeometricTracker",
    "GeometricTrackingConfig",
    "GradientTracker",
    "IntervalKeyframePolicy",
    "KeyframePolicy",
    "LossResult",
    "Mapper",
    "MappingConfig",
    "MappingResult",
    "PhotometricKeyframePolicy",
    "PoseDistanceKeyframePolicy",
    "SLAMConfig",
    "SLAMPipeline",
    "SLAMResult",
    "StreamingMapper",
    "TrackingConfig",
    "TrackingHook",
    "TrackingResult",
    "WorkloadSnapshot",
    "downsample_frame",
    "gs_slam",
    "image_difference_metrics",
    "make_algorithm",
    "make_keyframe_policy",
    "mono_gs",
    "photo_slam",
    "photometric_geometric_loss",
    "resample_image",
    "splatam",
]
