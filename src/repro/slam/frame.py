"""SLAM frames and resolution handling.

A :class:`Frame` wraps one RGB-D observation together with its (estimated)
pose and keyframe status.  ``downsample_frame`` implements the resolution
reduction used by RTGS's dynamic downsampling: the observation is resampled to
the resolution of a down-scaled camera so that rendering, loss and gradients
all operate on the reduced pixel count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.datasets.rgbd import RGBDFrame
from repro.gaussians.camera import Camera
from repro.gaussians.se3 import SE3


@dataclass
class Frame:
    """A frame flowing through the SLAM pipeline."""

    index: int
    image: np.ndarray
    depth: np.ndarray
    camera: Camera
    gt_pose_cw: SE3 | None = None
    estimated_pose_cw: SE3 | None = None
    is_keyframe: bool = False
    resolution_fraction: float = 1.0  # pixel-count fraction relative to full resolution

    @staticmethod
    def from_rgbd(observation: RGBDFrame) -> "Frame":
        """Wrap a dataset observation into a pipeline frame."""
        return Frame(
            index=observation.index,
            image=observation.image,
            depth=observation.depth,
            camera=observation.camera,
            gt_pose_cw=observation.gt_pose_cw,
        )

    @property
    def resolution(self) -> tuple[int, int]:
        return self.camera.resolution

    @property
    def n_pixels(self) -> int:
        return self.camera.n_pixels

    def with_pose(self, pose_cw: SE3) -> "Frame":
        """Return a copy with the estimated pose set."""
        return replace(self, estimated_pose_cw=pose_cw)


def resample_image(image: np.ndarray, new_height: int, new_width: int) -> np.ndarray:
    """Nearest-neighbour resampling of an image or depth map to a new resolution."""
    image = np.asarray(image)
    height, width = image.shape[:2]
    row_idx = np.clip(
        np.round(np.linspace(0, height - 1, new_height)).astype(int), 0, height - 1
    )
    col_idx = np.clip(
        np.round(np.linspace(0, width - 1, new_width)).astype(int), 0, width - 1
    )
    return image[np.ix_(row_idx, col_idx)]


def downsample_frame(frame: Frame, pixel_fraction: float) -> Frame:
    """Return a copy of ``frame`` carrying ``pixel_fraction`` of the original pixels.

    ``pixel_fraction`` follows the paper's convention (Sec. 4.2): a value of
    1/16 means the frame is processed with one sixteenth of the pixels of the
    full resolution ``R0``.  Values >= 1 return the frame unchanged.
    """
    if pixel_fraction >= 1.0:
        return replace(frame, resolution_fraction=1.0)
    if pixel_fraction <= 0.0:
        raise ValueError(f"pixel_fraction must be positive, got {pixel_fraction}")
    reduced_camera = frame.camera.downscale(1.0 / pixel_fraction)
    image = resample_image(frame.image, reduced_camera.height, reduced_camera.width)
    depth = resample_image(frame.depth, reduced_camera.height, reduced_camera.width)
    return replace(
        frame,
        image=image,
        depth=depth,
        camera=reduced_camera,
        resolution_fraction=pixel_fraction,
    )
