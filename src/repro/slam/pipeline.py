"""The end-to-end 3DGS-SLAM pipeline: tracking + keyframe mapping.

The pipeline reproduces the structure shared by the paper's base algorithms
(Sec. 2.2): every frame is tracked; keyframes additionally update the Gaussian
map.  RTGS plugs in through two optional collaborators:

* a *tracking hook* (``repro.core.pruning.AdaptiveGaussianPruner``) that
  observes the gradients tracking already computes and masks/removes
  redundant Gaussians, and
* a *resolution policy* (``repro.core.downsampling.DynamicDownsampler``) that
  chooses each non-keyframe's pixel fraction by reusing the keyframe
  decision.

Neither collaborator is required; with both set to ``None`` the pipeline runs
the unmodified base algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.datasets.rgbd import RGBDSequence
from repro.engine import RenderEngine, default_engine
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.se3 import SE3
from repro.metrics.image import psnr as psnr_metric
from repro.metrics.trajectory import ate_rmse, cumulative_ate
from repro.slam.algorithms import SLAMConfig
from repro.slam.frame import Frame, downsample_frame
from repro.slam.keyframes import make_keyframe_policy
from repro.slam.mapping import Mapper
from repro.slam.records import FrameRecord, WorkloadSnapshot
from repro.slam.tracking import GeometricTracker, GradientTracker, TrackingHook


class ResolutionPolicy(Protocol):
    """Chooses the pixel fraction for each frame (RTGS dynamic downsampling)."""

    def resolution_fraction(
        self, frame_index: int, is_keyframe: bool, last_keyframe_index: int | None
    ) -> float:
        """Return the fraction of full-resolution pixels to process."""
        ...


@dataclass
class SLAMResult:
    """Everything produced by one SLAM run."""

    config_name: str
    estimated_trajectory: list[SE3]
    gt_trajectory: list[SE3]
    keyframe_indices: list[int]
    frame_records: list[FrameRecord]
    cloud: GaussianCloud
    peak_gaussian_count: int
    # Engine the run rendered through; evaluation renders reuse it so a
    # pipeline pinned to a non-default backend is also *evaluated* on it.
    engine: RenderEngine | None = None

    # -- metrics ---------------------------------------------------------------
    def ate(self) -> float:
        """Absolute Trajectory Error RMSE in centimetres."""
        return ate_rmse(self.estimated_trajectory, self.gt_trajectory)

    def drift_curve(self) -> np.ndarray:
        """Per-frame cumulative ATE (Fig. 13(b))."""
        return cumulative_ate(self.estimated_trajectory, self.gt_trajectory)

    def all_snapshots(self) -> list[WorkloadSnapshot]:
        """All workload snapshots in execution order."""
        return [s for record in self.frame_records for s in record.snapshots]

    def tracking_snapshots(self) -> list[WorkloadSnapshot]:
        return [s for s in self.all_snapshots() if s.stage == "tracking"]

    def mapping_snapshots(self) -> list[WorkloadSnapshot]:
        return [s for s in self.all_snapshots() if s.stage == "mapping"]

    def evaluate_psnr(self, sequence: RGBDSequence, max_frames: int = 5) -> float:
        """Mean PSNR of map renders against ground-truth keyframe observations.

        Returns ``nan`` when no finite PSNR value exists (e.g. an empty or
        fully degenerate map), so a broken render can never rank as perfect
        quality; callers are expected to treat ``nan`` as "no data".
        """
        indices = self.keyframe_indices[:max_frames] or [0]
        engine = self.engine if self.engine is not None else default_engine()
        values = []
        for index in indices:
            observation = sequence.frame(index)
            pose = self.estimated_trajectory[index]
            render = engine.render(self.cloud, observation.camera, pose)
            values.append(psnr_metric(render.image, observation.image))
        finite = [v for v in values if np.isfinite(v)]
        return float(np.mean(finite)) if finite else float("nan")

    def summary(self) -> dict[str, float]:
        """Compact numeric summary used by the benchmark tables."""
        return {
            "ate_cm": self.ate(),
            "n_frames": float(len(self.estimated_trajectory)),
            "n_keyframes": float(len(self.keyframe_indices)),
            "peak_gaussians": float(self.peak_gaussian_count),
            "final_gaussians": float(self.cloud.n_total),
        }


@dataclass
class SLAMPipeline:
    """Runs a configured 3DGS-SLAM algorithm over an RGB-D sequence.

    ``engine`` injects one :class:`repro.engine.RenderEngine` shared by
    tracking and mapping (backend pinning, profiling sink, managed cache and
    arena in one place); when ``None`` the mapper builds an engine from
    ``config.mapping`` and the tracker shares it.
    """

    config: SLAMConfig
    tracking_hook: TrackingHook | None = None
    resolution_policy: ResolutionPolicy | None = None
    engine: RenderEngine | None = None
    # A repro.service.RenderSession this pipeline runs as: the session's
    # engine becomes the pipeline engine, so tracking and mapping render
    # under the session's identity (shared pool, fair weight, cache budget).
    # Duck-typed (anything with an .engine) to keep slam/ free of a service
    # import.
    session: object | None = None
    _mapper: Mapper = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.session is not None:
            if self.engine is not None and self.engine is not self.session.engine:
                raise ValueError(
                    "pass either engine= or session=, not both: a session "
                    "already owns its engine"
                )
            self.engine = self.session.engine
        self._mapper = Mapper(self.config.mapping, engine=self.engine)
        if self.engine is None:
            self.engine = self._mapper.engine
        if self.config.tracker == "geometric":
            self._tracker = GeometricTracker(self.config.geometric_tracking, engine=self.engine)
        else:
            self._tracker = GradientTracker(self.config.tracking, engine=self.engine)
        self._keyframe_policy = make_keyframe_policy(
            self.config.keyframe_policy, **self.config.keyframe_kwargs
        )
        # Let the pruner keep the mapper's optimiser state aligned with removals.
        if self.tracking_hook is not None and hasattr(self.tracking_hook, "add_removal_listener"):
            self.tracking_hook.add_removal_listener(self._mapper.notify_removed)

    def run(self, sequence: RGBDSequence, n_frames: int | None = None) -> SLAMResult:
        """Run SLAM over the first ``n_frames`` of ``sequence`` (all frames by default)."""
        total_frames = len(sequence) if n_frames is None else min(n_frames, len(sequence))
        if total_frames == 0:
            raise ValueError("sequence has no frames")
        if isinstance(self._tracker, GeometricTracker):
            self._tracker.reset()
        self._keyframe_policy.reset()

        cloud = GaussianCloud.empty()
        estimated: list[SE3] = []
        keyframe_indices: list[int] = []
        keyframes: list[Frame] = []
        frame_records: list[FrameRecord] = []
        peak_gaussians = 0
        last_keyframe: Frame | None = None

        for frame_index in range(total_frames):
            observation = sequence.frame(frame_index)
            frame = Frame.from_rgbd(observation)
            snapshots: list[WorkloadSnapshot] = []

            if frame_index == 0:
                # Bootstrap: anchor the first pose and seed the map from it.
                pose = observation.gt_pose_cw
                frame = frame.with_pose(pose)
                frame.is_keyframe = True
                self._mapper.initialize_map(cloud, frame, stride=self.config.init_stride)
                mapping_result = self._mapper.map(cloud, [frame])
                snapshots.extend(mapping_result.snapshots)
                estimated.append(pose)
                keyframe_indices.append(0)
                keyframes.append(frame)
                last_keyframe = frame
                peak_gaussians = max(peak_gaussians, cloud.n_total)
                frame_records.append(
                    FrameRecord(
                        frame_index=0,
                        is_keyframe=True,
                        resolution_fraction=1.0,
                        n_gaussians_after=cloud.n_total,
                        tracking_loss=0.0,
                        tracking_iterations=0,
                        mapping_iterations=len(mapping_result.losses),
                        mapping_batch_size=mapping_result.max_batch_size,
                        snapshots=snapshots,
                    )
                )
                continue

            initial_pose = self._predict_pose(estimated)
            probe = frame.with_pose(initial_pose)
            is_keyframe = self.config.map_every_frame or self._keyframe_policy.is_keyframe(
                probe, last_keyframe
            )

            fraction = 1.0
            if self.resolution_policy is not None and not is_keyframe:
                fraction = self.resolution_policy.resolution_fraction(
                    frame_index,
                    is_keyframe,
                    last_keyframe.index if last_keyframe is not None else None,
                )
            tracked_frame = downsample_frame(frame, fraction) if fraction < 1.0 else frame

            tracker_kwargs = {}
            if frame_index == 1 and isinstance(self._tracker, GradientTracker):
                # No motion-model prediction exists yet for the first tracked
                # frame, so it starts further from the optimum than later ones.
                tracker_kwargs = {"iteration_scale": 1.5}
            tracking = self._tracker.track(
                cloud,
                tracked_frame,
                initial_pose,
                hook=self.tracking_hook,
                is_keyframe=is_keyframe,
                **tracker_kwargs,
            )
            snapshots.extend(tracking.snapshots)
            pose = tracking.pose_cw
            frame = frame.with_pose(pose)
            frame.is_keyframe = is_keyframe
            estimated.append(pose)

            mapping_iterations = 0
            mapping_batch_size = 1
            if is_keyframe:
                keyframes.append(frame)
                keyframe_indices.append(frame_index)
                last_keyframe = frame
                mapping_result = self._mapper.map(
                    cloud, keyframes, map_every_frame=self.config.map_every_frame
                )
                snapshots.extend(mapping_result.snapshots)
                mapping_iterations = len(mapping_result.losses)
                mapping_batch_size = mapping_result.max_batch_size

            peak_gaussians = max(peak_gaussians, cloud.n_total)
            frame_records.append(
                FrameRecord(
                    frame_index=frame_index,
                    is_keyframe=is_keyframe,
                    resolution_fraction=fraction,
                    n_gaussians_after=cloud.n_total,
                    tracking_loss=tracking.losses[-1] if tracking.losses else 0.0,
                    tracking_iterations=tracking.iterations_run,
                    mapping_iterations=mapping_iterations,
                    mapping_batch_size=mapping_batch_size,
                    snapshots=snapshots,
                )
            )

        gt_trajectory = [sequence.frame(i).gt_pose_cw for i in range(total_frames)]
        return self._build_result(
            estimated, gt_trajectory, keyframe_indices, frame_records, cloud, peak_gaussians
        )

    @staticmethod
    def _predict_pose(estimated: list[SE3]) -> SE3:
        """Constant-velocity motion model: extrapolate the last relative motion.

        Implausibly large inter-frame motions (which indicate a tracking
        failure on the previous frame) are not extrapolated; the previous pose
        is reused instead so a single bad frame cannot launch the prediction
        far outside the mapped region.
        """
        if len(estimated) < 2:
            return estimated[-1]
        delta = estimated[-1] @ estimated[-2].inverse()
        twist = delta.log()
        if np.linalg.norm(twist[:3]) > 0.3 or np.linalg.norm(twist[3:]) > 0.3:
            return estimated[-1]
        return delta @ estimated[-1]

    def _build_result(
        self,
        estimated: list[SE3],
        gt_trajectory: list[SE3],
        keyframe_indices: list[int],
        frame_records: list[FrameRecord],
        cloud: GaussianCloud,
        peak_gaussians: int,
    ) -> SLAMResult:
        return SLAMResult(
            config_name=self.config.name,
            estimated_trajectory=estimated,
            gt_trajectory=gt_trajectory,
            keyframe_indices=keyframe_indices,
            frame_records=frame_records,
            cloud=cloud,
            peak_gaussian_count=peak_gaussians,
            engine=self.engine,
        )
