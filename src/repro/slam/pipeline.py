"""The end-to-end 3DGS-SLAM pipeline: tracking + keyframe mapping.

The pipeline reproduces the structure shared by the paper's base algorithms
(Sec. 2.2): every frame is tracked; keyframes additionally update the Gaussian
map.  RTGS plugs in through two optional collaborators:

* a *tracking hook* (``repro.core.pruning.AdaptiveGaussianPruner``) that
  observes the gradients tracking already computes and masks/removes
  redundant Gaussians, and
* a *resolution policy* (``repro.core.downsampling.DynamicDownsampler``) that
  chooses each non-keyframe's pixel fraction by reusing the keyframe
  decision.

Neither collaborator is required; with both set to ``None`` the pipeline runs
the unmodified base algorithm.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Protocol

import numpy as np

from repro.datasets.rgbd import RGBDSequence
from repro.engine import RenderEngine, default_engine
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.se3 import SE3
from repro.metrics.image import psnr as psnr_metric
from repro.metrics.trajectory import ate_rmse, cumulative_ate
from repro.slam.algorithms import SLAMConfig
from repro.slam.frame import Frame, downsample_frame
from repro.slam.keyframes import make_keyframe_policy
from repro.slam.mapping import Mapper
from repro.slam.records import FrameRecord, WorkloadSnapshot
from repro.slam.tracking import GeometricTracker, GradientTracker, TrackingHook


class PublicationBoard:
    """Epoch-pinned published-map slot shared between mapper and tracker threads.

    The async pipeline decouples tracking from mapping: the mapper optimises
    the *live* cloud on a background thread while the tracker renders the last
    *published* snapshot.  Publication is a single atomic swap under a lock of
    a :meth:`~repro.gaussians.gaussian_model.GaussianCloud.snapshot_copy` —
    a deep copy that preserves the cloud's identity and epoch bookkeeping, so

    * a reader can never observe a half-updated cloud: it either sees the
      previous publication whole or the new one whole (the hypothesis
      property in ``tests/test_async_backend.py`` pins this), and
    * geometry-cache keys stay coherent: the snapshot answers to the same
      ``(uid, epochs, cumulative deltas)`` the live cloud had at publication
      time, so the tracker's cache hits its exact tier within one publication
      and the toleranced incremental tier across publications.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cloud: GaussianCloud | None = None
        self._epoch: int = -1
        self.publications: int = 0

    def publish(self, cloud: GaussianCloud) -> int:
        """Snapshot ``cloud`` and make it the tracker-visible map; returns its epoch."""
        snapshot = cloud.snapshot_copy()
        with self._lock:
            self._cloud = snapshot
            self._epoch = snapshot.epoch
            self.publications += 1
        return snapshot.epoch

    def current(self) -> "tuple[GaussianCloud | None, int]":
        """The last published snapshot and its pinned epoch (atomically)."""
        with self._lock:
            return self._cloud, self._epoch


class _MappingJob:
    """One in-flight background mapping call and its late-bound bookkeeping."""

    def __init__(self, cloud: GaussianCloud, keyframes: list[Frame], map_every_frame: bool):
        self.cloud = cloud
        self.keyframes = keyframes
        self.map_every_frame = map_every_frame
        self.result = None
        self.error: BaseException | None = None
        self.duration = 0.0
        self.published_epoch = -1
        self.record: FrameRecord | None = None
        self.thread: threading.Thread | None = None


class ResolutionPolicy(Protocol):
    """Chooses the pixel fraction for each frame (RTGS dynamic downsampling)."""

    def resolution_fraction(
        self, frame_index: int, is_keyframe: bool, last_keyframe_index: int | None
    ) -> float:
        """Return the fraction of full-resolution pixels to process."""
        ...


@dataclass
class SLAMResult:
    """Everything produced by one SLAM run."""

    config_name: str
    estimated_trajectory: list[SE3]
    gt_trajectory: list[SE3]
    keyframe_indices: list[int]
    frame_records: list[FrameRecord]
    cloud: GaussianCloud
    peak_gaussian_count: int
    # Engine the run rendered through; evaluation renders reuse it so a
    # pipeline pinned to a non-default backend is also *evaluated* on it.
    engine: RenderEngine | None = None

    # -- metrics ---------------------------------------------------------------
    def ate(self) -> float:
        """Absolute Trajectory Error RMSE in centimetres."""
        return ate_rmse(self.estimated_trajectory, self.gt_trajectory)

    def drift_curve(self) -> np.ndarray:
        """Per-frame cumulative ATE (Fig. 13(b))."""
        return cumulative_ate(self.estimated_trajectory, self.gt_trajectory)

    def all_snapshots(self) -> list[WorkloadSnapshot]:
        """All workload snapshots in execution order."""
        return [s for record in self.frame_records for s in record.snapshots]

    def tracking_snapshots(self) -> list[WorkloadSnapshot]:
        return [s for s in self.all_snapshots() if s.stage == "tracking"]

    def mapping_snapshots(self) -> list[WorkloadSnapshot]:
        return [s for s in self.all_snapshots() if s.stage == "mapping"]

    def evaluate_psnr(self, sequence: RGBDSequence, max_frames: int = 5) -> float:
        """Mean PSNR of map renders against ground-truth keyframe observations.

        Returns ``nan`` when no finite PSNR value exists (e.g. an empty or
        fully degenerate map), so a broken render can never rank as perfect
        quality; callers are expected to treat ``nan`` as "no data".
        """
        indices = self.keyframe_indices[:max_frames] or [0]
        engine = self.engine if self.engine is not None else default_engine()
        values = []
        for index in indices:
            observation = sequence.frame(index)
            pose = self.estimated_trajectory[index]
            render = engine.render(self.cloud, observation.camera, pose)
            values.append(psnr_metric(render.image, observation.image))
        finite = [v for v in values if np.isfinite(v)]
        return float(np.mean(finite)) if finite else float("nan")

    def summary(self) -> dict[str, float]:
        """Compact numeric summary used by the benchmark tables."""
        return {
            "ate_cm": self.ate(),
            "n_frames": float(len(self.estimated_trajectory)),
            "n_keyframes": float(len(self.keyframe_indices)),
            "peak_gaussians": float(self.peak_gaussian_count),
            "final_gaussians": float(self.cloud.n_total),
        }


@dataclass
class SLAMPipeline:
    """Runs a configured 3DGS-SLAM algorithm over an RGB-D sequence.

    ``engine`` injects one :class:`repro.engine.RenderEngine` shared by
    tracking and mapping (backend pinning, profiling sink, managed cache and
    arena in one place); when ``None`` the mapper builds an engine from
    ``config.mapping`` and the tracker shares it.
    """

    config: SLAMConfig
    tracking_hook: TrackingHook | None = None
    resolution_policy: ResolutionPolicy | None = None
    engine: RenderEngine | None = None
    # A repro.service.RenderSession this pipeline runs as: the session's
    # engine becomes the pipeline engine, so tracking and mapping render
    # under the session's identity (shared pool, fair weight, cache budget).
    # Duck-typed (anything with an .engine) to keep slam/ free of a service
    # import.
    session: object | None = None
    _mapper: Mapper = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.session is not None:
            if self.engine is not None and self.engine is not self.session.engine:
                raise ValueError(
                    "pass either engine= or session=, not both: a session "
                    "already owns its engine"
                )
            self.engine = self.session.engine
        self._mapper = Mapper(self.config.mapping, engine=self.engine)
        if self.engine is None:
            self.engine = self._mapper.engine
        # Async tracking/mapping overlap (EngineConfig.async_pipeline /
        # REPRO_ASYNC_PIPELINE): the mapper optimises the live cloud on a
        # background thread while the tracker renders the last *published*
        # snapshot.  The tracker then needs its own engine — claims, cache and
        # arena are per-thread state — while the mapping engine (and with
        # backend="async" its speculative window pipelining) stays exclusive
        # to the mapping thread.  A tracking hook mutates the shared cloud
        # from the tracking side, which cannot race with background mapping:
        # the overlap disables itself and the run stays strictly serial.
        self._async_overlap = bool(
            getattr(self.engine.config, "async_pipeline", False)
        ) and self.tracking_hook is None
        tracking_engine = self.engine
        if self._async_overlap:
            tracking_engine = RenderEngine(replace(self.engine.config))
        self._tracking_engine = tracking_engine
        if self.config.tracker == "geometric":
            self._tracker = GeometricTracker(
                self.config.geometric_tracking, engine=tracking_engine
            )
        else:
            self._tracker = GradientTracker(self.config.tracking, engine=tracking_engine)
        self._keyframe_policy = make_keyframe_policy(
            self.config.keyframe_policy, **self.config.keyframe_kwargs
        )
        # Let the pruner keep the mapper's optimiser state aligned with removals.
        if self.tracking_hook is not None and hasattr(self.tracking_hook, "add_removal_listener"):
            self.tracking_hook.add_removal_listener(self._mapper.notify_removed)

    def run(self, sequence: RGBDSequence, n_frames: int | None = None) -> SLAMResult:
        """Run SLAM over the first ``n_frames`` of ``sequence`` (all frames by default)."""
        total_frames = len(sequence) if n_frames is None else min(n_frames, len(sequence))
        if total_frames == 0:
            raise ValueError("sequence has no frames")
        if isinstance(self._tracker, GeometricTracker):
            self._tracker.reset()
        self._keyframe_policy.reset()

        cloud = GaussianCloud.empty()
        estimated: list[SE3] = []
        keyframe_indices: list[int] = []
        keyframes: list[Frame] = []
        frame_records: list[FrameRecord] = []
        peak_gaussians = 0
        last_keyframe: Frame | None = None

        # Async overlap state: the publication board the tracker reads, and
        # the (single) in-flight background mapping job.  ``finish_mapping``
        # is the drain point: it joins the job, measures how much of the
        # mapping wall-clock was hidden behind tracking, and backfills the
        # job's FrameRecord + publication annotations.
        board = PublicationBoard()
        self.publication_board = board
        pending_job: "list[_MappingJob]" = []

        def annotate_publication(
            result, epoch: int, overlap_seconds: float, mapping_seconds: float
        ) -> None:
            if result.snapshots:
                marker = result.snapshots[-1]
                marker.async_published = True
                marker.published_epoch = epoch
                marker.async_overlap_seconds = overlap_seconds
                marker.async_mapping_seconds = mapping_seconds

        def mapping_worker(job: _MappingJob) -> None:
            try:
                started = time.perf_counter()
                job.result = self._mapper.map(
                    job.cloud, job.keyframes, map_every_frame=job.map_every_frame
                )
                job.duration = time.perf_counter() - started
                # Publish from the mapping thread the moment the window is
                # optimised: the tracker picks up the fresh map mid-stream
                # instead of at the next keyframe barrier.
                job.published_epoch = board.publish(job.cloud)
            except BaseException as error:  # re-raised at the drain point
                job.error = error

        def finish_mapping() -> None:
            nonlocal peak_gaussians
            if not pending_job:
                return
            job = pending_job.pop()
            assert job.thread is not None
            wait_started = time.perf_counter()
            job.thread.join()
            drain_wait = time.perf_counter() - wait_started
            if job.error is not None:
                raise job.error
            result = job.result
            annotate_publication(
                result,
                job.published_epoch,
                max(0.0, job.duration - drain_wait),
                job.duration,
            )
            if job.record is not None:
                job.record.snapshots.extend(result.snapshots)
                job.record.mapping_iterations = len(result.losses)
                job.record.mapping_batch_size = result.max_batch_size
                job.record.n_gaussians_after = cloud.n_total
            peak_gaussians = max(peak_gaussians, cloud.n_total)

        for frame_index in range(total_frames):
            observation = sequence.frame(frame_index)
            frame = Frame.from_rgbd(observation)
            snapshots: list[WorkloadSnapshot] = []

            if frame_index == 0:
                # Bootstrap: anchor the first pose and seed the map from it.
                pose = observation.gt_pose_cw
                frame = frame.with_pose(pose)
                frame.is_keyframe = True
                self._mapper.initialize_map(cloud, frame, stride=self.config.init_stride)
                mapping_result = self._mapper.map(cloud, [frame])
                if self._async_overlap:
                    # Bootstrap maps synchronously (tracking needs *a* map);
                    # publish it so frame 1 tracks against something.
                    epoch = board.publish(cloud)
                    annotate_publication(mapping_result, epoch, 0.0, 0.0)
                snapshots.extend(mapping_result.snapshots)
                estimated.append(pose)
                keyframe_indices.append(0)
                keyframes.append(frame)
                last_keyframe = frame
                peak_gaussians = max(peak_gaussians, cloud.n_total)
                frame_records.append(
                    FrameRecord(
                        frame_index=0,
                        is_keyframe=True,
                        resolution_fraction=1.0,
                        n_gaussians_after=cloud.n_total,
                        tracking_loss=0.0,
                        tracking_iterations=0,
                        mapping_iterations=len(mapping_result.losses),
                        mapping_batch_size=mapping_result.max_batch_size,
                        snapshots=snapshots,
                    )
                )
                continue

            initial_pose = self._predict_pose(estimated)
            probe = frame.with_pose(initial_pose)
            is_keyframe = self.config.map_every_frame or self._keyframe_policy.is_keyframe(
                probe, last_keyframe
            )

            fraction = 1.0
            if self.resolution_policy is not None and not is_keyframe:
                fraction = self.resolution_policy.resolution_fraction(
                    frame_index,
                    is_keyframe,
                    last_keyframe.index if last_keyframe is not None else None,
                )
            tracked_frame = downsample_frame(frame, fraction) if fraction < 1.0 else frame

            tracker_kwargs = {}
            if frame_index == 1 and isinstance(self._tracker, GradientTracker):
                # No motion-model prediction exists yet for the first tracked
                # frame, so it starts further from the optimum than later ones.
                tracker_kwargs = {"iteration_scale": 1.5}
            # Overlap mode tracks against the last *published* snapshot (the
            # real-time semantic: the mapper may still be optimising the live
            # cloud on its thread); serial mode tracks the live cloud as
            # before.
            track_cloud = cloud
            if self._async_overlap:
                published, _ = board.current()
                if published is not None:
                    track_cloud = published
            tracking = self._tracker.track(
                track_cloud,
                tracked_frame,
                initial_pose,
                hook=self.tracking_hook,
                is_keyframe=is_keyframe,
                **tracker_kwargs,
            )
            snapshots.extend(tracking.snapshots)
            pose = tracking.pose_cw
            frame = frame.with_pose(pose)
            frame.is_keyframe = is_keyframe
            estimated.append(pose)

            mapping_iterations = 0
            mapping_batch_size = 1
            launched_job: _MappingJob | None = None
            if is_keyframe:
                keyframes.append(frame)
                keyframe_indices.append(frame_index)
                last_keyframe = frame
                if self._async_overlap:
                    # Barrier: at most one mapping job is ever in flight (the
                    # mapper's optimiser state is single-threaded), so the
                    # previous keyframe's job must land before this one
                    # starts.  Its wall-clock up to this point ran concurrently
                    # with the tracking above — that difference is the
                    # recorded overlap.
                    finish_mapping()
                    launched_job = _MappingJob(
                        cloud, list(keyframes), self.config.map_every_frame
                    )
                    launched_job.thread = threading.Thread(
                        target=mapping_worker,
                        args=(launched_job,),
                        name="repro-async-mapping",
                        daemon=True,
                    )
                    pending_job.append(launched_job)
                    launched_job.thread.start()
                else:
                    mapping_result = self._mapper.map(
                        cloud, keyframes, map_every_frame=self.config.map_every_frame
                    )
                    snapshots.extend(mapping_result.snapshots)
                    mapping_iterations = len(mapping_result.losses)
                    mapping_batch_size = mapping_result.max_batch_size

            peak_gaussians = max(peak_gaussians, cloud.n_total)
            record = FrameRecord(
                frame_index=frame_index,
                is_keyframe=is_keyframe,
                resolution_fraction=fraction,
                n_gaussians_after=cloud.n_total,
                tracking_loss=tracking.losses[-1] if tracking.losses else 0.0,
                tracking_iterations=tracking.iterations_run,
                mapping_iterations=mapping_iterations,
                mapping_batch_size=mapping_batch_size,
                snapshots=snapshots,
            )
            frame_records.append(record)
            if launched_job is not None:
                # The job's snapshots/iteration counts are backfilled into
                # this record when the job lands (next keyframe, or end of
                # run).
                launched_job.record = record

        # End-of-run barrier: land the last mapping job and retire any
        # speculative window the mapper still has in flight, so the returned
        # cloud and engine hold no background state.
        finish_mapping()
        if self._async_overlap:
            self.engine.drain()

        gt_trajectory = [sequence.frame(i).gt_pose_cw for i in range(total_frames)]
        return self._build_result(
            estimated, gt_trajectory, keyframe_indices, frame_records, cloud, peak_gaussians
        )

    @staticmethod
    def _predict_pose(estimated: list[SE3]) -> SE3:
        """Constant-velocity motion model: extrapolate the last relative motion.

        Implausibly large inter-frame motions (which indicate a tracking
        failure on the previous frame) are not extrapolated; the previous pose
        is reused instead so a single bad frame cannot launch the prediction
        far outside the mapped region.
        """
        if len(estimated) < 2:
            return estimated[-1]
        delta = estimated[-1] @ estimated[-2].inverse()
        twist = delta.log()
        if np.linalg.norm(twist[:3]) > 0.3 or np.linalg.norm(twist[3:]) > 0.3:
            return estimated[-1]
        return delta @ estimated[-1]

    def _build_result(
        self,
        estimated: list[SE3],
        gt_trajectory: list[SE3],
        keyframe_indices: list[int],
        frame_records: list[FrameRecord],
        cloud: GaussianCloud,
        peak_gaussians: int,
    ) -> SLAMResult:
        return SLAMResult(
            config_name=self.config.name,
            estimated_trajectory=estimated,
            gt_trajectory=gt_trajectory,
            keyframe_indices=keyframe_indices,
            frame_records=frame_records,
            cloud=cloud,
            peak_gaussian_count=peak_gaussians,
            engine=self.engine,
        )
