"""SLAM tracking: per-frame camera pose optimisation.

Two trackers are provided, matching the base algorithms of the paper:

* :class:`GradientTracker` - the fully differentiable tracking used by
  GS-SLAM, MonoGS and SplaTAM: render, compute the photometric + geometric
  loss, backpropagate to a camera-pose twist gradient, and take Adam steps
  for a fixed number of iterations.
* :class:`GeometricTracker` - Photo-SLAM-style tracking that aligns the
  back-projected depth of the current frame against the previous frame with a
  closed-form rigid fit and therefore needs no rendering backpropagation.

Both accept a :class:`TrackingHook`, the integration point through which
RTGS's adaptive Gaussian pruning observes the gradients that tracking already
computes (Sec. 4.1: importance evaluation reuses existing gradients).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import RenderEngine, default_engine
from repro.gaussians.backward import CloudGradients
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.rasterizer import RenderResult
from repro.gaussians.se3 import SE3
from repro.slam.frame import Frame
from repro.slam.losses import photometric_geometric_loss
from repro.slam.optimizer import Adam
from repro.slam.records import WorkloadSnapshot


@dataclass
class TrackingConfig:
    """Hyper-parameters of gradient-based tracking."""

    n_iterations: int = 15
    pose_learning_rate: float = 2e-3
    lambda_photometric: float = 0.6
    use_depth: bool = True
    convergence_threshold: float = 1e-7
    record_workloads: bool = True
    # Tile granularity of the tracking renders; None inherits the engine's
    # configuration (and with it REPRO_TILE_SIZE / REPRO_SUBTILE_SIZE),
    # independent of the mapping tile sizes even when both share one engine.
    tile_size: int | None = None
    subtile_size: int | None = None


class TrackingHook:
    """No-op hook; RTGS's pruner subclasses this to reuse tracking gradients."""

    def begin_frame(self, cloud: GaussianCloud, frame: Frame) -> None:
        """Called once before the first tracking iteration of a frame."""

    def after_backward(
        self,
        cloud: GaussianCloud,
        gradients: CloudGradients,
        render: RenderResult,
        iteration: int,
    ) -> None:
        """Called after every backward pass with the freshly computed gradients."""

    def end_frame(self, cloud: GaussianCloud, is_keyframe: bool) -> None:
        """Called once after the last tracking iteration of a frame."""


@dataclass
class TrackingResult:
    """Outcome of tracking one frame."""

    pose_cw: SE3
    losses: list[float]
    snapshots: list[WorkloadSnapshot] = field(default_factory=list)
    iterations_run: int = 0
    converged: bool = False


class GradientTracker:
    """Differentiable tracking via rendering + backpropagation (MonoGS-style).

    Renders through an injected :class:`repro.engine.RenderEngine` (the
    process-default engine when none is given), so backend selection and
    profiling are owned in one place instead of per call site.
    """

    def __init__(self, config: TrackingConfig | None = None, engine: RenderEngine | None = None):
        self.config = config or TrackingConfig()
        self.engine = engine if engine is not None else default_engine()

    def track(
        self,
        cloud: GaussianCloud,
        frame: Frame,
        initial_pose: SE3,
        hook: TrackingHook | None = None,
        is_keyframe: bool = False,
        learning_rate_scale: float = 1.0,
        iteration_scale: float = 1.0,
    ) -> TrackingResult:
        """Optimise the camera pose of ``frame`` starting from ``initial_pose``.

        ``learning_rate_scale`` and ``iteration_scale`` let the pipeline boost
        the very first tracked frame, which has no motion-model prediction yet
        and therefore starts from a larger pose error than later frames.
        """
        config = self.config
        hook = hook or TrackingHook()
        optimizer = Adam()
        pose = initial_pose
        n_iterations = max(1, int(round(config.n_iterations * iteration_scale)))
        learning_rate = config.pose_learning_rate * learning_rate_scale
        losses: list[float] = []
        snapshots: list[WorkloadSnapshot] = []
        converged = False
        hook.begin_frame(cloud, frame)

        iteration = 0
        for iteration in range(n_iterations):
            render = self.engine.render(
                cloud,
                frame.camera,
                pose,
                tile_size=config.tile_size,
                subtile_size=config.subtile_size,
            )
            loss = photometric_geometric_loss(
                render,
                frame,
                lambda_photometric=config.lambda_photometric,
                use_depth=config.use_depth,
            )
            gradients = self.engine.backward(
                render,
                cloud,
                loss.dL_dimage,
                loss.dL_ddepth,
                compute_pose_gradient=True,
            )
            hook.after_backward(cloud, gradients, render, iteration)
            losses.append(loss.total)
            if config.record_workloads:
                snapshots.append(
                    self.engine.snapshot(
                        render,
                        gradients,
                        stage="tracking",
                        frame_index=frame.index,
                        iteration=iteration,
                        is_keyframe=is_keyframe,
                        loss=loss.total,
                        n_gaussians_total=cloud.n_total,
                        n_gaussians_active=cloud.n_active,
                        resolution_fraction=frame.resolution_fraction,
                    )
                )

            step = optimizer.step("pose", gradients.pose_twist, learning_rate)
            pose = pose.retract(step)

            if len(losses) >= 2 and abs(losses[-2] - losses[-1]) < config.convergence_threshold:
                converged = True
                break

        hook.end_frame(cloud, is_keyframe)
        return TrackingResult(
            pose_cw=pose,
            losses=losses,
            snapshots=snapshots,
            iterations_run=iteration + 1,
            converged=converged,
        )


@dataclass
class GeometricTrackingConfig:
    """Hyper-parameters of Photo-SLAM-style geometric tracking."""

    depth_stride: int = 2
    min_valid_points: int = 20
    icp_iterations: int = 3
    record_workloads: bool = True
    # Tile granularity of the workload-recording render; None inherits the
    # engine's configuration.
    tile_size: int | None = None
    subtile_size: int | None = None


class GeometricTracker:
    """Photo-SLAM-style tracking: closed-form rigid alignment of depth maps.

    The current frame's back-projected points are aligned to the previous
    frame's points (same pixel lattice) with a Umeyama fit, producing the
    relative camera motion; no rendering backpropagation is needed, which is
    why Photo-SLAM's tracking is fast in Tab. 2.
    """

    def __init__(
        self,
        config: GeometricTrackingConfig | None = None,
        engine: RenderEngine | None = None,
    ):
        self.config = config or GeometricTrackingConfig()
        self.engine = engine if engine is not None else default_engine()
        self._previous_frame: Frame | None = None

    def reset(self) -> None:
        self._previous_frame = None

    def track(
        self,
        cloud: GaussianCloud,
        frame: Frame,
        initial_pose: SE3,
        hook: TrackingHook | None = None,
        is_keyframe: bool = False,
    ) -> TrackingResult:
        """Estimate the pose of ``frame`` from depth alignment with the previous frame."""
        config = self.config
        previous = self._previous_frame
        pose = initial_pose
        if previous is not None and previous.estimated_pose_cw is not None:
            relative = self._relative_motion(previous, frame)
            if relative is not None:
                # T_cw(current) = T_rel @ T_cw(previous).
                pose = relative @ previous.estimated_pose_cw

        snapshots: list[WorkloadSnapshot] = []
        losses: list[float] = []
        if config.record_workloads:
            render = self.engine.render(
                cloud,
                frame.camera,
                pose,
                tile_size=config.tile_size,
                subtile_size=config.subtile_size,
            )
            loss = photometric_geometric_loss(render, frame)
            losses.append(loss.total)
            snapshots.append(
                self.engine.snapshot(
                    render,
                    None,
                    stage="tracking",
                    frame_index=frame.index,
                    iteration=0,
                    is_keyframe=is_keyframe,
                    loss=loss.total,
                    n_gaussians_total=cloud.n_total,
                    n_gaussians_active=cloud.n_active,
                    resolution_fraction=frame.resolution_fraction,
                )
            )

        self._previous_frame = frame.with_pose(pose)
        return TrackingResult(
            pose_cw=pose,
            losses=losses,
            snapshots=snapshots,
            iterations_run=1,
            converged=True,
        )

    def _relative_motion(self, previous: Frame, current: Frame) -> SE3 | None:
        """Projective ICP estimating the previous-to-current camera transform.

        Previous-frame depth pixels are back-projected, transformed by the
        current motion estimate, projected into the current frame, and matched
        against the current depth at the landing pixel.  A closed-form rigid
        fit refines the estimate; a few such iterations suffice for the small
        inter-frame motions of a 30 FPS sequence.
        """
        if previous.image.shape != current.image.shape:
            return None
        stride = self.config.depth_stride
        camera = current.camera
        depth_prev = previous.depth
        vs = np.arange(0, camera.height, stride)
        us = np.arange(0, camera.width, stride)
        grid_u, grid_v = np.meshgrid(us, vs)
        flat_u, flat_v = grid_u.ravel(), grid_v.ravel()
        d_prev = depth_prev[flat_v, flat_u]
        valid_prev = d_prev > 1e-6
        if int(valid_prev.sum()) < self.config.min_valid_points:
            return None
        pixels_prev = np.stack([flat_u[valid_prev] + 0.5, flat_v[valid_prev] + 0.5], axis=1)
        points_prev = camera.unproject(pixels_prev, d_prev[valid_prev])

        relative = SE3.identity()
        for _ in range(self.config.icp_iterations):
            transformed = relative.apply(points_prev)
            in_front = transformed[:, 2] > 1e-3
            projected = camera.project(transformed)
            u_idx = np.round(projected[:, 0] - 0.5).astype(int)
            v_idx = np.round(projected[:, 1] - 0.5).astype(int)
            in_bounds = (
                in_front
                & (u_idx >= 0)
                & (u_idx < camera.width)
                & (v_idx >= 0)
                & (v_idx < camera.height)
            )
            if int(in_bounds.sum()) < self.config.min_valid_points:
                return None
            d_curr = np.zeros(len(points_prev))
            d_curr[in_bounds] = current.depth[v_idx[in_bounds], u_idx[in_bounds]]
            matched = in_bounds & (d_curr > 1e-6)
            if int(matched.sum()) < self.config.min_valid_points:
                return None
            pixels_curr = np.stack(
                [u_idx[matched] + 0.5, v_idx[matched] + 0.5], axis=1
            )
            points_curr = camera.unproject(pixels_curr, d_curr[matched])
            rotation, translation = _umeyama_rigid(points_prev[matched], points_curr)
            relative = SE3(rotation, translation)
        return relative


def _umeyama_rigid(source: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares rigid transform mapping ``source`` points onto ``target``."""
    mu_source = source.mean(axis=0)
    mu_target = target.mean(axis=0)
    source_c = source - mu_source
    target_c = target - mu_target
    covariance = target_c.T @ source_c / source.shape[0]
    u, _, vt = np.linalg.svd(covariance)
    sign = np.sign(np.linalg.det(u @ vt))
    rotation = u @ np.diag([1.0, 1.0, sign]) @ vt
    translation = mu_target - rotation @ mu_source
    return rotation, translation
