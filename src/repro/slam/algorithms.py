"""Base 3DGS-SLAM algorithm configurations.

The paper evaluates RTGS on four base algorithms that share the same
tracking/mapping skeleton and differ in a handful of knobs (Sec. 2.3 and
Tab. 2).  Each factory below captures those distinguishing characteristics:

* :func:`gs_slam` - keyframes on scene change (pose distance), moderate
  Gaussian counts.
* :func:`mono_gs` - fixed keyframe interval, denser maps (more Gaussians for
  monocular detail recovery).
* :func:`photo_slam` - classical geometric tracking (no rendering BP for the
  pose), photometric keyframe selection, lighter maps.
* :func:`splatam` - tracking *and* mapping on every frame, no keyframing.

The ``fast`` flag shrinks iteration counts for unit tests and CI; the default
profile follows the paper's 15-100 iterations-per-frame regime scaled to the
synthetic datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.slam.mapping import MappingConfig
from repro.slam.tracking import GeometricTrackingConfig, TrackingConfig


@dataclass
class SLAMConfig:
    """Complete configuration of one base 3DGS-SLAM algorithm."""

    name: str
    tracker: str = "gradient"  # "gradient" or "geometric"
    tracking: TrackingConfig = field(default_factory=TrackingConfig)
    geometric_tracking: GeometricTrackingConfig = field(default_factory=GeometricTrackingConfig)
    mapping: MappingConfig = field(default_factory=MappingConfig)
    keyframe_policy: str = "interval"
    keyframe_kwargs: dict = field(default_factory=dict)
    map_every_frame: bool = False
    init_stride: int = 4

    def iterations_per_frame(self) -> int:
        """Nominal optimisation iterations per frame (tracking + mapping)."""
        tracking = 1 if self.tracker == "geometric" else self.tracking.n_iterations
        return tracking + self.mapping.n_iterations


def gs_slam(fast: bool = False) -> SLAMConfig:
    """GS-SLAM: keyframing on scene change via pose distance."""
    tracking_iters = 12 if fast else 20
    mapping_iters = 8 if fast else 14
    return SLAMConfig(
        name="gs_slam",
        tracker="gradient",
        tracking=TrackingConfig(n_iterations=tracking_iters, pose_learning_rate=3e-3),
        mapping=MappingConfig(n_iterations=mapping_iters, densify_stride=5),
        keyframe_policy="pose_distance",
        keyframe_kwargs={"translation_threshold": 0.22, "rotation_threshold": 0.3},
        init_stride=4,
    )


def mono_gs(fast: bool = False) -> SLAMConfig:
    """MonoGS: fixed keyframe interval and denser maps."""
    tracking_iters = 12 if fast else 22
    mapping_iters = 8 if fast else 16
    return SLAMConfig(
        name="mono_gs",
        tracker="gradient",
        tracking=TrackingConfig(n_iterations=tracking_iters, pose_learning_rate=3e-3),
        mapping=MappingConfig(n_iterations=mapping_iters, densify_stride=4),
        keyframe_policy="interval",
        keyframe_kwargs={"interval": 4},
        init_stride=3,
    )


def photo_slam(fast: bool = False) -> SLAMConfig:
    """Photo-SLAM: geometric tracking, photometric keyframing, lighter maps."""
    mapping_iters = 6 if fast else 12
    return SLAMConfig(
        name="photo_slam",
        tracker="geometric",
        geometric_tracking=GeometricTrackingConfig(depth_stride=2),
        mapping=MappingConfig(n_iterations=mapping_iters, densify_stride=6),
        keyframe_policy="photometric",
        keyframe_kwargs={"rmse_threshold": 0.06},
        init_stride=5,
    )


def splatam(fast: bool = False) -> SLAMConfig:
    """SplaTAM: per-frame tracking and mapping, no keyframe distinction."""
    tracking_iters = 10 if fast else 15
    mapping_iters = 5 if fast else 10
    return SLAMConfig(
        name="splatam",
        tracker="gradient",
        tracking=TrackingConfig(n_iterations=tracking_iters, pose_learning_rate=3e-3),
        mapping=MappingConfig(n_iterations=mapping_iters, densify_stride=5),
        keyframe_policy="every_frame",
        map_every_frame=True,
        init_stride=5,
    )


BASE_ALGORITHMS = {
    "gs_slam": gs_slam,
    "mono_gs": mono_gs,
    "photo_slam": photo_slam,
    "splatam": splatam,
}


def make_algorithm(name: str, fast: bool = False) -> SLAMConfig:
    """Look up an algorithm factory by name."""
    if name not in BASE_ALGORITHMS:
        raise ValueError(f"unknown algorithm '{name}'; options: {sorted(BASE_ALGORITHMS)}")
    return BASE_ALGORITHMS[name](fast=fast)
