"""Workload records emitted by the SLAM pipeline.

Every tracking/mapping iteration produces a :class:`WorkloadSnapshot` that
captures the quantities the paper's profiling section measures (per-pixel
fragment counts, tile-Gaussian intersection counts, gradient-aggregation
update counts).  The profiling module turns them into the Fig. 3-6/10
observations and the hardware model turns them into cycle and energy
estimates; the SLAM code itself never depends on either consumer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.backward import CloudGradients, GradientTrace
from repro.gaussians.rasterizer import RenderResult


@dataclass
class WorkloadSnapshot:
    """All workload statistics of one rendering + backprop iteration.

    Batched mapping emits one snapshot per *view* of each fused iteration;
    ``batch_size`` and ``view_index`` identify the window so the hardware
    model can amortise the shared per-Gaussian preprocessing (Step 1) across
    the views of one batch.  Single-view iterations keep the defaults.
    """

    stage: str  # "tracking" or "mapping"
    frame_index: int
    iteration: int
    is_keyframe: bool
    height: int
    width: int
    tile_size: int
    subtile_size: int
    resolution_fraction: float
    n_gaussians_total: int
    n_gaussians_active: int
    n_projected: int
    n_tile_pairs: int
    loss: float
    fragments_per_pixel: np.ndarray  # (H, W) int
    per_tile_gaussian_ids: list[np.ndarray] = field(default_factory=list)
    per_tile_update_counts: list[np.ndarray] = field(default_factory=list)
    includes_backward: bool = True
    batch_size: int = 1  # views rendered by the fused iteration this belongs to
    view_index: int = 0  # position of this view within its batch
    # Geometry-cache outcome of the render behind this snapshot ("uncached",
    # "miss", "hit", "refresh" or "incremental"); the hardware model uses it
    # to amortise the Step 1-2 cost the cache skipped, and profiling
    # aggregates it into hit/miss accounting.
    cache_status: str = "uncached"
    # Per-shard attribution of a sharded batch render (repro.engine.sharded):
    # how many workers executed the batch, which worker rasterized this view,
    # its measured shard wall-clock, and this view's share of the parent-side
    # stitch overhead.  The hardware model amortises the fragment-parallel
    # stages across shard_workers; batch_amortization_report aggregates the
    # rest.  Serial renders keep the defaults.
    shard_workers: int = 1
    shard_worker_id: int = 0
    shard_seconds: float = 0.0
    shard_stitch_seconds: float = 0.0
    # Where this view's Step 1-2 planning ran: "parent" (serial and
    # parent-planned batches) or "worker" (sharded batches with
    # worker-resident planning), with the measured per-view planning time.
    shard_plan_seconds: float = 0.0
    plan_site: str = "parent"
    # Fault accounting of the sharded batch behind this snapshot (engine
    # ShardAttribution.fault_*).  The batch-level counts are carried on every
    # view of the batch — aggregate them from ``view_index == 0`` snapshots to
    # avoid double counting.  ``fault_escalated`` is per view: True when this
    # view fell back to serial flat execution in the parent.
    fault_events: int = 0
    fault_retries: int = 0
    fault_quarantines: int = 0
    fault_escalated: bool = False
    # Multi-tenant attribution (repro.service.RenderService): the owning
    # session, how long this view waited in the session queue before its
    # dispatch round, and the wall-clock of that round.  Defaults outside
    # the service; batch_amortization_report rolls these up per session.
    session_id: str = ""
    queue_wait_seconds: float = 0.0
    service_seconds: float = 0.0
    # Async-pipeline publication points (repro.slam.SLAMPipeline with
    # ``async_pipeline``): ``async_published`` marks the snapshot of a mapping
    # job whose result cloud was published for the tracker, ``published_epoch``
    # pins the cloud epoch the tracker sees from then on, and
    # ``async_overlap_seconds`` is the mapping wall-clock that ran concurrently
    # with tracking (mapping duration minus the drain wait the next keyframe
    # paid).  batch_amortization_report aggregates these into the overlap
    # fraction.  Serial pipelines keep the defaults.
    async_published: bool = False
    published_epoch: int = -1
    async_overlap_seconds: float = 0.0
    # Total wall-clock of that mapping job; overlap/total is the fraction of
    # background mapping hidden behind tracking.
    async_mapping_seconds: float = 0.0

    @staticmethod
    def from_iteration(
        render: RenderResult,
        gradients: CloudGradients | None,
        stage: str,
        frame_index: int,
        iteration: int,
        is_keyframe: bool,
        loss: float,
        n_gaussians_total: int,
        n_gaussians_active: int,
        resolution_fraction: float = 1.0,
        trace: GradientTrace | None = None,
        batch_size: int = 1,
        view_index: int = 0,
        shard_workers: int = 1,
        shard_worker_id: int = 0,
        shard_seconds: float = 0.0,
        shard_stitch_seconds: float = 0.0,
        shard_plan_seconds: float = 0.0,
        plan_site: str = "parent",
        fault_events: int = 0,
        fault_retries: int = 0,
        fault_quarantines: int = 0,
        fault_escalated: bool = False,
        session_id: str = "",
        queue_wait_seconds: float = 0.0,
        service_seconds: float = 0.0,
        async_published: bool = False,
        published_epoch: int = -1,
        async_overlap_seconds: float = 0.0,
        async_mapping_seconds: float = 0.0,
    ) -> "WorkloadSnapshot":
        """Build a snapshot from a render result and (optionally) its gradients.

        ``trace`` overrides the gradient trace; batched mapping passes each
        view's own trace because the fused gradients only carry the merged
        one.  The ``shard_*`` fields carry the per-shard attribution of a
        sharded batch (worker count, owning worker, shard wall-clock, stitch
        share); serial renders keep the defaults.
        """
        grid = render.grid
        if trace is None and gradients is not None:
            trace = gradients.trace
        if trace is not None:
            gaussian_ids = [ids.copy() for ids in trace.per_tile_source_indices]
            update_counts = [counts.copy() for counts in trace.per_tile_pixel_counts]
            includes_backward = True
        else:
            gaussian_ids = []
            update_counts = []
            includes_backward = False
        return WorkloadSnapshot(
            stage=stage,
            frame_index=frame_index,
            iteration=iteration,
            is_keyframe=is_keyframe,
            height=render.camera.height,
            width=render.camera.width,
            tile_size=grid.tile_size,
            subtile_size=grid.subtile_size,
            resolution_fraction=resolution_fraction,
            n_gaussians_total=n_gaussians_total,
            n_gaussians_active=n_gaussians_active,
            n_projected=render.projected.n_visible,
            n_tile_pairs=render.intersections.n_pairs,
            loss=float(loss),
            fragments_per_pixel=render.fragments_per_pixel.copy(),
            per_tile_gaussian_ids=gaussian_ids,
            per_tile_update_counts=update_counts,
            includes_backward=includes_backward,
            batch_size=batch_size,
            view_index=view_index,
            cache_status=render.cache_status,
            shard_workers=shard_workers,
            shard_worker_id=shard_worker_id,
            shard_seconds=shard_seconds,
            shard_stitch_seconds=shard_stitch_seconds,
            shard_plan_seconds=shard_plan_seconds,
            plan_site=plan_site,
            fault_events=fault_events,
            fault_retries=fault_retries,
            fault_quarantines=fault_quarantines,
            fault_escalated=fault_escalated,
            session_id=session_id,
            queue_wait_seconds=queue_wait_seconds,
            service_seconds=service_seconds,
            async_published=async_published,
            published_epoch=published_epoch,
            async_overlap_seconds=async_overlap_seconds,
            async_mapping_seconds=async_mapping_seconds,
        )

    # -- aggregate statistics -------------------------------------------------
    @property
    def n_pixels(self) -> int:
        return self.height * self.width

    @property
    def total_fragments(self) -> int:
        """Forward rendering workload (fragments processed)."""
        return int(self.fragments_per_pixel.sum())

    @property
    def total_pixel_level_updates(self) -> int:
        """Pixel-level gradient contributions (GPU atomic adds in Step 4)."""
        return int(sum(int(c.sum()) for c in self.per_tile_update_counts))

    @property
    def total_tile_level_updates(self) -> int:
        """(tile, Gaussian) pairs carrying a merged gradient."""
        return int(sum(len(ids) for ids in self.per_tile_gaussian_ids))

    def fragments_per_subtile(self) -> np.ndarray:
        """Per-subtile fragment totals, flattened over all tiles."""
        sub = self.subtile_size
        n_sub_y = (self.height + sub - 1) // sub
        n_sub_x = (self.width + sub - 1) // sub
        padded = np.zeros((n_sub_y * sub, n_sub_x * sub), dtype=np.int64)
        padded[: self.height, : self.width] = self.fragments_per_pixel
        blocks = padded.reshape(n_sub_y, sub, n_sub_x, sub)
        return blocks.sum(axis=(1, 3)).ravel()

    def pixel_workloads_per_subtile(self) -> list[np.ndarray]:
        """Per-subtile arrays of per-pixel fragment counts (the WSU's input)."""
        sub = self.subtile_size
        n_sub_y = (self.height + sub - 1) // sub
        n_sub_x = (self.width + sub - 1) // sub
        padded = np.zeros((n_sub_y * sub, n_sub_x * sub), dtype=np.int64)
        padded[: self.height, : self.width] = self.fragments_per_pixel
        out: list[np.ndarray] = []
        for sy in range(n_sub_y):
            for sx in range(n_sub_x):
                block = padded[sy * sub : (sy + 1) * sub, sx * sub : (sx + 1) * sub]
                out.append(block.ravel().copy())
        return out

    def gaussian_update_histogram(self) -> np.ndarray:
        """Pixel-level update counts per Gaussian, summed over tiles."""
        counts = np.zeros(max(self.n_gaussians_total, 1), dtype=np.int64)
        for ids, updates in zip(self.per_tile_gaussian_ids, self.per_tile_update_counts):
            np.add.at(counts, ids, updates)
        return counts


@dataclass
class FrameRecord:
    """Per-frame summary: poses, timing-relevant counts and iteration snapshots."""

    frame_index: int
    is_keyframe: bool
    resolution_fraction: float
    n_gaussians_after: int
    tracking_loss: float
    tracking_iterations: int
    mapping_iterations: int
    mapping_batch_size: int = 1  # keyframe views per fused mapping iteration
    snapshots: list[WorkloadSnapshot] = field(default_factory=list)

    def tracking_snapshots(self) -> list[WorkloadSnapshot]:
        return [s for s in self.snapshots if s.stage == "tracking"]

    def mapping_snapshots(self) -> list[WorkloadSnapshot]:
        return [s for s in self.snapshots if s.stage == "mapping"]
