"""Seeded random number generation helpers.

Every stochastic component of the reproduction (scene generation, trajectory
noise, workload synthesis) takes an explicit ``numpy.random.Generator`` so
that experiments are deterministic end to end.  These helpers centralise the
conventions for creating and deriving generators.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 20251018  # MICRO'25 presentation date, purely a mnemonic.


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` seeded deterministically.

    Parameters
    ----------
    seed:
        Explicit seed.  When ``None`` the library-wide default seed is used so
        repeated runs produce identical results.
    """
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_seed(base: int | None, worker_id: int) -> int:
    """Derive a deterministic per-worker seed from ``base`` and ``worker_id``.

    Used by the ``sharded`` render backend's pool initializer: every worker
    process seeds its generators from ``derive_seed(base, worker_id)``, so a
    sharded run is reproducible regardless of how views are scheduled across
    workers or in which order workers start.  ``base=None`` uses the
    library-wide default seed.  Distinct ``(base, worker_id)`` pairs produce
    decorrelated seeds (via ``numpy.random.SeedSequence``), and the function
    is pure: it does not consume entropy from any shared generator.
    """
    if base is None:
        base = _DEFAULT_SEED
    base = int(base)
    # SeedSequence accepts arbitrary-size non-negative ints, so the full base
    # participates (no truncation); the sign flag keeps -x and x distinct.
    sequence = np.random.SeedSequence([abs(base), int(base < 0), int(worker_id)])
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def derive_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive a child generator from ``rng`` and a sequence of keys.

    The derivation is deterministic given the parent state and keys, which lets
    independent subsystems (e.g. per-frame noise and per-scene geometry) draw
    from decorrelated streams without sharing mutable state.
    """
    material = [int(rng.integers(0, 2**31 - 1))]
    for key in keys:
        if isinstance(key, str):
            material.append(abs(hash(key)) % (2**31 - 1))
        else:
            material.append(int(key) % (2**31 - 1))
    seed_seq = np.random.SeedSequence(material)
    return np.random.default_rng(seed_seq)
