"""Seeded random number generation helpers.

Every stochastic component of the reproduction (scene generation, trajectory
noise, workload synthesis) takes an explicit ``numpy.random.Generator`` so
that experiments are deterministic end to end.  These helpers centralise the
conventions for creating and deriving generators.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 20251018  # MICRO'25 presentation date, purely a mnemonic.


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` seeded deterministically.

    Parameters
    ----------
    seed:
        Explicit seed.  When ``None`` the library-wide default seed is used so
        repeated runs produce identical results.
    """
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive a child generator from ``rng`` and a sequence of keys.

    The derivation is deterministic given the parent state and keys, which lets
    independent subsystems (e.g. per-frame noise and per-scene geometry) draw
    from decorrelated streams without sharing mutable state.
    """
    material = [int(rng.integers(0, 2**31 - 1))]
    for key in keys:
        if isinstance(key, str):
            material.append(abs(hash(key)) % (2**31 - 1))
        else:
            material.append(int(key) % (2**31 - 1))
    seed_seq = np.random.SeedSequence(material)
    return np.random.default_rng(seed_seq)
