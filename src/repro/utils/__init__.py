"""Small shared utilities: seeding, validation, and numeric helpers."""

from repro.utils.random import default_rng, derive_rng, derive_seed
from repro.utils.validation import (
    check_array,
    check_finite,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "default_rng",
    "derive_rng",
    "derive_seed",
    "check_array",
    "check_finite",
    "check_positive",
    "check_probability",
    "check_shape",
]
