"""Input validation helpers used across the library.

All public entry points validate their inputs eagerly so that shape or value
errors surface at the API boundary with a readable message instead of deep
inside vectorised numpy code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_array(value, name: str, dtype=np.float64) -> np.ndarray:
    """Convert ``value`` to a contiguous ndarray of ``dtype``."""
    arr = np.asarray(value, dtype=dtype)
    return np.ascontiguousarray(arr)


def check_shape(arr: np.ndarray, shape: Sequence[int | None], name: str) -> np.ndarray:
    """Validate that ``arr`` matches ``shape`` where ``None`` means "any size"."""
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {arr.shape}"
        )
    for axis, expected in enumerate(shape):
        if expected is not None and arr.shape[axis] != expected:
            raise ValueError(
                f"{name} must have size {expected} on axis {axis}, got shape {arr.shape}"
            )
    return arr


def check_finite(arr: np.ndarray, name: str) -> np.ndarray:
    """Raise if ``arr`` contains NaN or infinity."""
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate a scalar is positive (strictly by default)."""
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate a scalar lies in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value
