"""Deprecation helper for the legacy free-function render shims.

The engine rework (`repro.engine`) replaced the module-level render entry
points (``rasterize``, ``rasterize_batch``, ``render_backward``,
``render_backward_batch``) with methods on an owned :class:`RenderEngine`.
The free functions survive as thin shims so downstream code and the test
suite keep working, but every call announces itself with a
``DeprecationWarning`` attributed to the *caller* — which is what lets the
test configuration promote shim usage inside ``repro.*`` production code to
a hard error while tests remain free to exercise the legacy surface.
"""

from __future__ import annotations

import warnings


def warn_render_shim(name: str, replacement: str) -> None:
    """Emit the standard shim deprecation warning, attributed to the caller.

    ``stacklevel=3`` skips this helper and the shim itself, so the warning
    (and therefore the warning-filter module match) lands on the code that
    invoked the deprecated free function.
    """
    warnings.warn(
        f"{name}() is a deprecated free-function shim; render through "
        f"{replacement} (see repro.engine) instead",
        DeprecationWarning,
        stacklevel=3,
    )
