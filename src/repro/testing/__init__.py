"""Differential and golden verification harness for the rendering pipeline.

This package is the repo's testing subsystem: deterministic render scenarios
(:mod:`repro.testing.scenarios`), a differential runner that proves the flat
fragment-list rasterizer equivalent to the reference per-tile backend
(:mod:`repro.testing.differential`), and golden ``.npz`` fixtures pinning the
reference outputs (:mod:`repro.testing.golden`, regenerated via
``python -m repro.testing.regold``).
"""

from repro.testing.differential import (
    GRADIENT_FIELDS,
    DifferentialRunner,
    ScenarioReport,
)
from repro.testing.golden import (
    GOLDEN_ATOL,
    GOLDEN_DIR,
    compare_to_golden,
    golden_path,
    load_golden,
    render_reference,
    save_golden,
)
from repro.testing.scenarios import (
    DEFAULT_LIBRARY,
    Scenario,
    ScenarioLibrary,
    SceneSpec,
)

__all__ = [
    "DEFAULT_LIBRARY",
    "DifferentialRunner",
    "GOLDEN_ATOL",
    "GOLDEN_DIR",
    "GRADIENT_FIELDS",
    "Scenario",
    "ScenarioLibrary",
    "ScenarioReport",
    "SceneSpec",
    "compare_to_golden",
    "golden_path",
    "load_golden",
    "render_reference",
    "save_golden",
]
