"""Differential and golden verification harness for the rendering pipeline.

This package is the repo's testing subsystem: deterministic render scenarios
(:mod:`repro.testing.scenarios`), a differential runner that proves the flat
fragment-list rasterizer equivalent to the reference per-tile backend
(:mod:`repro.testing.differential`), and golden ``.npz`` fixtures pinning the
reference outputs (:mod:`repro.testing.golden`, regenerated via
``python -m repro.testing.regold``), and the cross-backend scenario matrix
(:mod:`repro.testing.matrix`, runnable via ``python -m repro.testing.matrix``)
sweeping every scenario against backend/cache/batch/mapping axes.
"""

from repro.testing.differential import (
    GRADIENT_FIELDS,
    DifferentialRunner,
    ScenarioReport,
)
from repro.testing.golden import (
    GOLDEN_ATOL,
    GOLDEN_DIR,
    compare_to_golden,
    golden_path,
    load_golden,
    render_reference,
    save_golden,
)
from repro.testing.scenarios import (
    ADVERSARIAL_LIBRARY,
    DEFAULT_LIBRARY,
    Scenario,
    ScenarioLibrary,
    SceneSpec,
    matrix_library,
)

# The matrix names resolve lazily so `python -m repro.testing.matrix` does not
# re-import the module it is executing (runpy's sys.modules warning) and the
# mapper-adjacent machinery stays off the import path until actually used.
_MATRIX_EXPORTS = (
    "AXES",
    "MatrixCell",
    "MatrixOptions",
    "ScenarioCellResult",
    "ScenarioMatrix",
    "summary_table",
)


def __getattr__(name: str):
    if name in _MATRIX_EXPORTS:
        from repro.testing import matrix

        return getattr(matrix, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ADVERSARIAL_LIBRARY",
    "AXES",
    "DEFAULT_LIBRARY",
    "DifferentialRunner",
    "GOLDEN_ATOL",
    "GOLDEN_DIR",
    "GRADIENT_FIELDS",
    "MatrixCell",
    "MatrixOptions",
    "Scenario",
    "ScenarioCellResult",
    "ScenarioLibrary",
    "ScenarioMatrix",
    "ScenarioReport",
    "SceneSpec",
    "compare_to_golden",
    "golden_path",
    "load_golden",
    "matrix_library",
    "render_reference",
    "save_golden",
    "summary_table",
]
