"""Golden ``.npz`` fixtures pinning the reference rasterizer's outputs.

Each scenario of the default library has one committed fixture under
``src/repro/testing/goldens/`` holding the reference (tile backend) forward
outputs.  The golden tests re-render the scenario and compare against the
fixture, so any refactor of projection, sorting, tiling or compositing that
changes observable behaviour fails loudly instead of silently shifting every
downstream figure.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python -m repro.testing.regold

and commit the updated fixtures together with the change that motivated them.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.gaussians.rasterizer import RenderResult, rasterize_tile
from repro.testing.scenarios import Scenario, SceneSpec

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

# Committed goldens are compared with a small absolute tolerance rather than
# bitwise: BLAS/compiler differences across platforms legitimately perturb the
# last few ulps of the projection matmuls.
GOLDEN_ATOL = 1e-9


def golden_path(name: str, directory: Path | None = None) -> Path:
    return (directory or GOLDEN_DIR) / f"{name}.npz"


def render_reference(spec: SceneSpec) -> RenderResult:
    """Render ``spec`` with the reference backend (the golden source of truth)."""
    return rasterize_tile(
        spec.cloud,
        spec.camera,
        spec.pose_cw,
        background=spec.background,
        tile_size=spec.tile_size,
        subtile_size=spec.subtile_size,
    )


def save_golden(scenario: Scenario, directory: Path | None = None) -> Path:
    """Render ``scenario`` with the reference backend and write its fixture."""
    result = render_reference(scenario.build())
    path = golden_path(scenario.name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        image=result.image,
        depth=result.depth,
        alpha=result.alpha,
        fragments_per_pixel=result.fragments_per_pixel,
        fragments_per_subtile=result.fragments_per_subtile(),
        n_fragments=np.int64(result.n_fragments),
    )
    return path


def load_golden(name: str, directory: Path | None = None) -> dict[str, np.ndarray]:
    path = golden_path(name, directory)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden fixture for scenario {name!r} at {path}; "
            "run `PYTHONPATH=src python -m repro.testing.regold` to generate it"
        )
    with np.load(path) as data:
        return {key: data[key] for key in data.files}


def compare_to_golden(
    result: RenderResult, golden: dict[str, np.ndarray], atol: float = GOLDEN_ATOL
) -> list[str]:
    """Return a list of mismatch descriptions (empty when the render matches)."""
    failures: list[str] = []
    for key in ("image", "depth", "alpha"):
        current = getattr(result, key)
        expected = golden[key]
        if current.shape != expected.shape:
            failures.append(f"{key} shape {current.shape} != golden {expected.shape}")
            continue
        diff = float(np.max(np.abs(current - expected))) if expected.size else 0.0
        if not diff <= atol:
            failures.append(f"{key} drifted from golden by {diff:.3e} (atol {atol:.1e})")
    if not np.array_equal(result.fragments_per_pixel, golden["fragments_per_pixel"]):
        failures.append("per-pixel fragment counts differ from golden")
    if not np.array_equal(result.fragments_per_subtile(), golden["fragments_per_subtile"]):
        failures.append("per-subtile fragment counts differ from golden")
    if result.n_fragments != int(golden["n_fragments"]):
        failures.append(
            f"total fragments {result.n_fragments} != golden {int(golden['n_fragments'])}"
        )
    return failures
