"""Regenerate the golden rasterizer fixtures.

Usage::

    PYTHONPATH=src python -m repro.testing.regold            # all scenarios
    PYTHONPATH=src python -m repro.testing.regold -s dense_random -s alpha_clamp

Renders each scenario with the reference (tile) backend and rewrites the
``.npz`` fixture under ``src/repro/testing/goldens/``.  Only run this after an
intentional change to rendering behaviour, and commit the fixtures together
with that change.
"""

from __future__ import annotations

import argparse

from repro.testing.golden import GOLDEN_DIR, save_golden
from repro.testing.scenarios import DEFAULT_LIBRARY


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.regold", description=__doc__
    )
    parser.add_argument(
        "-s",
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="regenerate only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for scenario in DEFAULT_LIBRARY:
            print(f"{scenario.name:20s} {scenario.description}")
        return 0

    names = args.scenarios or DEFAULT_LIBRARY.names()
    try:
        scenarios = [DEFAULT_LIBRARY.get(name) for name in names]
    except KeyError as error:
        parser.error(str(error.args[0]))
    for scenario in scenarios:
        path = save_golden(scenario)
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent.parent.parent)}")
    print(f"{len(names)} golden fixture(s) regenerated under {GOLDEN_DIR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
