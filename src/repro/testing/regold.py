"""Regenerate or verify the golden rasterizer fixtures.

Usage::

    PYTHONPATH=src python -m repro.testing.regold            # all scenarios
    PYTHONPATH=src python -m repro.testing.regold -s dense_random -s alpha_clamp
    PYTHONPATH=src python -m repro.testing.regold --check    # drift check (CI)

Without ``--check``, renders each scenario with the reference (tile) backend
and rewrites the ``.npz`` fixture under ``src/repro/testing/goldens/``.  Only
run this after an intentional change to rendering behaviour, and commit the
fixtures together with that change.

With ``--check``, nothing is written: each scenario is re-rendered and
compared against its committed fixture, and the command exits non-zero when a
fixture is missing, has drifted, or no longer corresponds to any scenario —
the CI golden-drift gate.
"""

from __future__ import annotations

import argparse

from repro.testing.golden import (
    GOLDEN_DIR,
    compare_to_golden,
    load_golden,
    render_reference,
    save_golden,
)
from repro.testing.scenarios import DEFAULT_LIBRARY


def check_goldens(names: list[str]) -> int:
    """Verify committed fixtures for ``names``; returns the number of failures."""
    failures = 0
    for name in names:
        scenario = DEFAULT_LIBRARY.get(name)
        try:
            golden = load_golden(name)
        except FileNotFoundError:
            print(f"[MISSING] {name}: no committed fixture under {GOLDEN_DIR}")
            failures += 1
            continue
        mismatches = compare_to_golden(render_reference(scenario.build()), golden)
        if mismatches:
            print(f"[DRIFT] {name}: " + "; ".join(mismatches))
            failures += 1
        else:
            print(f"[ok] {name}")

    # Fixtures that no longer correspond to any scenario are also drift: they
    # would silently stop being checked.
    if set(names) == set(DEFAULT_LIBRARY.names()):
        known = {f"{name}.npz" for name in names}
        for path in sorted(GOLDEN_DIR.glob("*.npz")):
            if path.name not in known:
                print(f"[ORPHAN] {path.name}: fixture has no matching scenario")
                failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.regold", description=__doc__
    )
    parser.add_argument(
        "-s",
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="regenerate only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available scenarios and exit"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify committed fixtures instead of rewriting them; "
        "exit 1 on missing, drifted or orphaned fixtures",
    )
    args = parser.parse_args(argv)

    if args.list:
        for scenario in DEFAULT_LIBRARY:
            print(f"{scenario.name:20s} {scenario.description}")
        return 0

    names = args.scenarios or DEFAULT_LIBRARY.names()
    try:
        scenarios = [DEFAULT_LIBRARY.get(name) for name in names]
    except KeyError as error:
        parser.error(str(error.args[0]))

    if args.check:
        failures = check_goldens(names)
        if failures:
            print(
                f"{failures} golden fixture(s) out of sync; regenerate with "
                "`PYTHONPATH=src python -m repro.testing.regold` and commit "
                "them with the change that moved them"
            )
            return 1
        print(f"{len(names)} golden fixture(s) match the reference renderer")
        return 0

    for scenario in scenarios:
        path = save_golden(scenario)
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent.parent.parent)}")
    print(f"{len(names)} golden fixture(s) regenerated under {GOLDEN_DIR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
