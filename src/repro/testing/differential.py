"""Differential verification: render every scenario through two backends.

The :class:`DifferentialRunner` renders each scenario through a *reference*
backend (the per-tile loop) and a *candidate* backend (the flat fragment-list
fast path) — each driven by its own pinned :class:`repro.engine.RenderEngine`
— runs the full backward pass on both renders with a deterministic loss, and
reports the worst observed disagreement for every quantity the rest of the
system consumes: image, depth, accumulated alpha, per-pixel fragment counts,
per-subtile fragment counts, and all cloud/pose gradients.

Forward outputs must agree to ``forward_tol`` (default 1e-10; in practice the
flat backend is bit-identical), gradients to ``grad_tol`` (default 1e-8; the
flat backward pass regroups reductions, so tiny rounding drift is expected).
Fragment counts must match exactly — they define the hardware model's
workload and are integers.

Every scenario additionally pins the batched path
(:meth:`repro.engine.RenderEngine.render_batch`): a batch of one view must
match a single candidate-backend render (images to ``forward_tol``, gradients
to ``grad_tol``, fragment counts exactly), and a 3-view batch over
:meth:`SceneSpec.view_poses` must match three sequential single-view renders,
with the fused backward equal to the per-view gradient sum.

Every scenario also runs a cached-vs-uncached equivalence check against the
geometry cache (:mod:`repro.gaussians.geom_cache`) in its exact configuration
(zero tolerance, no refinement): renders and gradients served from an
engine-managed cache must be **bit-identical** to uncached renders before any
mutation, after a repeat lookup (cache hit), after an appearance-only update
(refresh tier), and after every invalidation path — an Adam-style parameter
step, densification, pruning, masking and ``notify_removed``-style removal.

Finally, :meth:`DifferentialRunner.verify_engine` pins the engine-mediated
path itself: for both backends *plus* the ``sharded`` multi-process backend,
cache on and off, an engine render (and its backward) must be bit-identical
to the legacy free-function implementation it wraps, and
:meth:`DifferentialRunner.verify_sharded` pins the sharded batch — forward
views, fragment counts, fused backward gradients and per-view pose twists —
bitwise against the flat batch on every scenario, cache off *and* on: the
sharded backend's worker-resident geometry caches must stay bit-identical to
the parent-resident flat cache through miss, hit and refresh rounds, and the
pose-quantised cross-window re-key tier must agree bitwise between the two
cache sites while staying within its documented screen-space tolerance of an
exact render.  A runner constructed with a ``fault_schedule``
(:mod:`repro.engine.faults` grammar) additionally re-renders each scenario's
window under that schedule and requires the self-healing sharded dispatch to
complete it bitwise-identical to the healthy run — the CI chaos job and the
fault-injection tests drive this phase.

A runner constructed with ``n_service_sessions > 0`` adds a multi-tenant
phase (:meth:`DifferentialRunner.verify_service`): that many concurrent
:mod:`repro.service` sessions — submitted first, then driven to completion so
the weighted-fair scheduler genuinely interleaves their work units over the
shared pool — must each produce a batch bitwise-identical to a solo private
engine rendering the same window, forward and fused backward, with the
geometry cache off and on (exact configuration, miss and hit rounds), and,
when the runner also carries a ``fault_schedule``, under injected faults
against the healthy solo run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import REGISTRY, EngineConfig, RenderEngine
from repro.gaussians.backward import (
    CloudGradients,
    preprocess_backward,
    rasterize_backward,
)
from repro.gaussians.fast_raster import rasterize_flat
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.geom_cache import GeomCacheConfig, GeometryCache
from repro.gaussians.rasterizer import RenderResult, rasterize_tile
from repro.testing.scenarios import DEFAULT_LIBRARY, Scenario, ScenarioLibrary, SceneSpec

GRADIENT_FIELDS = (
    "positions",
    "log_scales",
    "rotations",
    "opacity_logits",
    "colors",
    "cov3d",
    "pose_twist",
    "per_gaussian_pose",
)

# Exact-mode cache configuration: only the bit-identical reuse tiers.
_EXACT_CACHE = dict(tolerance_px=0.0, refine_margin=0.0, termination_margin=0.0)
_EXACT_ENGINE_CACHE = dict(
    cache_tolerance_px=0.0, cache_refine_margin=0.0, cache_termination_margin=0.0
)


def _max_abs_diff(a: np.ndarray, b: np.ndarray) -> float:
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


@dataclass
class ScenarioReport:
    """Worst-case disagreements observed for one scenario."""

    name: str
    n_fragments: int
    image_diff: float
    depth_diff: float
    alpha_diff: float
    fragments_equal: bool
    subtile_fragments_equal: bool
    gradient_diffs: dict[str, float]
    batch1_image_diff: float = 0.0
    batch1_gradient_diff: float = 0.0
    batch_image_diff: float = 0.0
    batch_gradient_diff: float = 0.0
    cache_image_diff: float = 0.0
    cache_gradient_diff: float = 0.0
    engine_image_diff: float = 0.0
    engine_gradient_diff: float = 0.0
    sharded_image_diff: float = 0.0
    sharded_gradient_diff: float = 0.0
    async_image_diff: float = 0.0
    async_gradient_diff: float = 0.0
    async_fault_diff: float = 0.0
    async_cached_diff: float = 0.0
    fault_image_diff: float = 0.0
    fault_gradient_diff: float = 0.0
    fault_events: int = 0  # fault events observed during the fault phase
    service_image_diff: float = 0.0
    service_gradient_diff: float = 0.0
    service_cached_image_diff: float = 0.0
    service_cached_gradient_diff: float = 0.0
    service_fault_diff: float = 0.0
    service_fault_events: int = 0  # fault events during the service fault phase
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def max_gradient_diff(self) -> float:
        return max(self.gradient_diffs.values()) if self.gradient_diffs else 0.0

    def summary(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return (
            f"[{status}] {self.name}: fragments={self.n_fragments} "
            f"image={self.image_diff:.3e} depth={self.depth_diff:.3e} "
            f"alpha={self.alpha_diff:.3e} grad={self.max_gradient_diff:.3e} "
            f"batch={max(self.batch1_image_diff, self.batch_image_diff):.3e}/"
            f"{max(self.batch1_gradient_diff, self.batch_gradient_diff):.3e} "
            f"cache={self.cache_image_diff:.3e}/{self.cache_gradient_diff:.3e} "
            f"engine={self.engine_image_diff:.3e}/{self.engine_gradient_diff:.3e} "
            f"sharded={self.sharded_image_diff:.3e}/{self.sharded_gradient_diff:.3e} "
            f"async={self.async_image_diff:.3e}/{self.async_gradient_diff:.3e}"
            + (
                f" faults={self.fault_events}"
                f" fault={self.fault_image_diff:.3e}/{self.fault_gradient_diff:.3e}"
                if self.fault_events
                else ""
            )
        )


@dataclass
class DifferentialRunner:
    """Renders scenarios through two engine-driven backends and asserts agreement.

    Parameters
    ----------
    forward_tol:
        Maximum allowed absolute difference on image / depth / alpha.
    grad_tol:
        Maximum allowed absolute difference on any backward gradient field.
    reference_backend, candidate_backend:
        Registered backend names; each side renders through its own pinned
        :class:`RenderEngine` and its backward pass is forced to the matching
        backend, so the comparison covers the full forward + backward
        pipeline of each implementation.
    """

    forward_tol: float = 1e-10
    grad_tol: float = 1e-8
    reference_backend: str = "tile"
    candidate_backend: str = "flat"
    sharded_backend: str = "sharded"  # multi-process backend pinned to flat batches
    async_backend: str = "async"  # speculative pipelining backend pinned to flat
    n_batch_views: int = 3  # views of the multi-view batch-vs-sequential check
    n_shard_workers: int = 2  # worker processes of the sharded checks
    # A REPRO_SHARD_FAULTS schedule (repro.engine.faults grammar).  When set,
    # verify_sharded adds a fault phase: the same batch re-rendered under the
    # schedule must complete, stay bitwise-identical to the healthy flat
    # batch (forward and fused backward), and surface its fault events on the
    # attribution.  None (the default) skips the phase.
    fault_schedule: str | None = None
    fault_deadline_s: float = 20.0  # shard deadline of the fault-phase engine
    # Sessions of the multi-tenant service phase (repro.service): that many
    # interleaved sessions each compared bitwise against a solo private
    # engine — cache off and on, plus under the fault schedule when one is
    # set.  0 (the default) skips the phase.
    n_service_sessions: int = 0
    n_service_views: int = 4  # views per service session's job

    def __post_init__(self) -> None:
        self._engines: dict[str, RenderEngine] = {}

    def engine_for(self, backend: str) -> RenderEngine:
        """The pinned, cache-less engine this runner renders ``backend`` through."""
        if backend not in self._engines:
            extra = (
                {"shard_workers": self.n_shard_workers}
                if backend in (self.sharded_backend, self.async_backend)
                else {}
            )
            self._engines[backend] = RenderEngine(
                EngineConfig(backend=backend, geom_cache=False, **extra)
            )
        return self._engines[backend]

    def _render(self, engine: RenderEngine, spec: SceneSpec, cloud=None, **kwargs) -> RenderResult:
        return engine.render(
            spec.cloud if cloud is None else cloud,
            spec.camera,
            spec.pose_cw,
            background=spec.background,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
            **kwargs,
        )

    def render_pair(self, spec: SceneSpec) -> tuple[RenderResult, RenderResult]:
        """Render ``spec`` through both backends."""
        reference = self._render(self.engine_for(self.reference_backend), spec)
        candidate = self._render(self.engine_for(self.candidate_backend), spec)
        return reference, candidate

    def backward_pair(
        self, spec: SceneSpec, reference: RenderResult, candidate: RenderResult
    ) -> tuple[CloudGradients, CloudGradients]:
        """Run the full backward pass on both renders with a deterministic loss."""
        rng = np.random.default_rng(abs(hash((spec.camera.width, spec.camera.height))) % (2**32))
        dL_dimage = rng.uniform(-1.0, 1.0, size=reference.image.shape)
        dL_ddepth = rng.uniform(-1.0, 1.0, size=reference.depth.shape)
        grads_ref = self.engine_for(self.reference_backend).backward(
            reference, spec.cloud, dL_dimage, dL_ddepth, backend=self.reference_backend
        )
        grads_cand = self.engine_for(self.candidate_backend).backward(
            candidate, spec.cloud, dL_dimage, dL_ddepth, backend=self.candidate_backend
        )
        return grads_ref, grads_cand

    def _loss_arrays(
        self, spec: SceneSpec, image_shape, depth_shape, salt: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        seed = abs(hash((spec.camera.width, spec.camera.height, salt))) % (2**32)
        rng = np.random.default_rng(seed)
        return (
            rng.uniform(-1.0, 1.0, size=image_shape),
            rng.uniform(-1.0, 1.0, size=depth_shape),
        )

    def verify_batch(
        self, spec: SceneSpec, base_render: RenderResult | None = None
    ) -> tuple[dict[str, float], list[str]]:
        """Pin the engine batch path against sequential candidate-backend renders.

        Checks batch-of-1 ≡ single view and an ``n_batch_views``-view batch ≡
        the same views rendered sequentially, forward and backward (the fused
        backward against the per-view gradient sum).  ``base_render`` lets the
        caller donate an existing candidate-backend render of the scenario's
        base pose (``run_scenario`` reuses the one from ``render_pair``)
        instead of re-rendering it.  Returns the worst diffs and the failure
        descriptions.
        """
        engine = self.engine_for(self.candidate_backend)
        failures: list[str] = []
        diffs = {
            "batch1_image": 0.0,
            "batch1_grad": 0.0,
            "batch_image": 0.0,
            "batch_grad": 0.0,
        }

        def forward_diff(batch_view: RenderResult, single: RenderResult, label: str) -> float:
            worst = max(
                _max_abs_diff(batch_view.image, single.image),
                _max_abs_diff(batch_view.depth, single.depth),
                _max_abs_diff(batch_view.alpha, single.alpha),
            )
            if not worst <= self.forward_tol:
                failures.append(
                    f"{label}: forward diff {worst:.3e} exceeds tolerance "
                    f"{self.forward_tol:.1e}"
                )
            if not np.array_equal(
                batch_view.fragments_per_pixel, single.fragments_per_pixel
            ):
                failures.append(f"{label}: fragment counts differ from single view")
            return worst

        def gradient_diff(
            batch_cloud_grads, summed_fields: dict[str, np.ndarray], label: str
        ) -> float:
            worst = 0.0
            for name, expected in summed_fields.items():
                value = _max_abs_diff(np.asarray(getattr(batch_cloud_grads, name)), expected)
                worst = max(worst, value)
                if not value <= self.grad_tol:
                    failures.append(
                        f"{label}: gradient {name} diff {value:.3e} exceeds "
                        f"tolerance {self.grad_tol:.1e}"
                    )
            return worst

        for n_views, prefix in ((1, "batch1"), (self.n_batch_views, "batch")):
            poses = spec.view_poses(n_views)
            # view_poses(n)[0] is always the scenario's own pose, so the
            # donated base render stands in for the first sequential call.
            singles = [
                base_render
                if index == 0 and base_render is not None
                else engine.render(
                    spec.cloud,
                    spec.camera,
                    pose,
                    background=spec.background,
                    tile_size=spec.tile_size,
                    subtile_size=spec.subtile_size,
                )
                for index, pose in enumerate(poses)
            ]
            batch = engine.render_batch(
                spec.cloud,
                [spec.camera] * n_views,
                poses,
                backgrounds=[spec.background] * n_views,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
            )
            image_worst = max(
                forward_diff(batch_view, single, f"{prefix} view {index}")
                for index, (batch_view, single) in enumerate(zip(batch.views, singles))
            )
            diffs[f"{prefix}_image"] = image_worst

            losses = [
                self._loss_arrays(spec, single.image.shape, single.depth.shape, salt=index)
                for index, single in enumerate(singles)
            ]
            sequential = [
                engine.backward(
                    single,
                    spec.cloud,
                    dL_dimage,
                    dL_ddepth,
                    backend=self.candidate_backend,
                )
                for single, (dL_dimage, dL_ddepth) in zip(singles, losses)
            ]
            fused = engine.backward_batch(
                batch,
                spec.cloud,
                [dL_dimage for dL_dimage, _ in losses],
                [dL_ddepth for _, dL_ddepth in losses],
                compute_pose_gradient=True,
            )
            summed = {
                name: sum(np.asarray(getattr(grads, name)) for grads in sequential)
                for name in (
                    "positions",
                    "log_scales",
                    "rotations",
                    "opacity_logits",
                    "colors",
                    "cov3d",
                    "per_gaussian_pose",
                    "pose_twist",
                )
            }
            diffs[f"{prefix}_grad"] = gradient_diff(fused.cloud, summed, prefix)
            twist_diff = _max_abs_diff(
                fused.per_view_pose_twists,
                np.stack([grads.pose_twist for grads in sequential]),
            )
            diffs[f"{prefix}_grad"] = max(diffs[f"{prefix}_grad"], twist_diff)
            if not twist_diff <= self.grad_tol:
                failures.append(
                    f"{prefix}: per-view pose twists diff {twist_diff:.3e} exceeds "
                    f"tolerance {self.grad_tol:.1e}"
                )
        return diffs, failures

    def verify_cache(self, spec: SceneSpec) -> tuple[dict[str, float], list[str]]:
        """Pin engine-cached renders bit-identical to uncached ones across mutations.

        Runs an engine whose geometry cache is in its exact configuration
        (``tolerance_px=0``, ``refine_margin=0``) on a private copy of the
        scenario cloud and, for every stage of a mutation sequence covering
        all invalidation paths — repeat render (hit), appearance-only step
        (refresh), Adam-style parameter step, densify, prune, mask +
        ``remove_inactive`` (the ``notify_removed`` path) — asserts the
        cached forward outputs equal an uncached render *bitwise* and the
        backward gradients match to ``grad_tol`` (the flat backward on
        identical caches is bit-identical in practice).  Returns worst diffs
        and failure descriptions.
        """
        failures: list[str] = []
        diffs = {"cache_image": 0.0, "cache_grad": 0.0}
        cloud = spec.cloud.copy()
        cached_engine = RenderEngine(
            EngineConfig(
                backend=self.candidate_backend,
                geom_cache=True,
                cache_tolerance_px=0.0,
                cache_refine_margin=0.0,
                cache_termination_margin=0.0,
            )
        )
        plain_engine = self.engine_for(self.candidate_backend)
        expected_statuses = {
            "initial": "miss",
            "repeat": "hit",
            "opacity-step": "refresh",
            "color-step": "refresh",
        }

        def compare(label: str) -> None:
            cached = self._render(cached_engine, spec, cloud=cloud, managed=True)
            plain = self._render(plain_engine, spec, cloud=cloud)
            expected = expected_statuses.get(label, "miss")
            if cached.cache_status != expected:
                failures.append(
                    f"cache {label}: expected status {expected!r}, got "
                    f"{cached.cache_status!r}"
                )
            for name in ("image", "depth", "alpha"):
                a, b = getattr(cached, name), getattr(plain, name)
                if not np.array_equal(a, b):
                    worst = _max_abs_diff(a, b)
                    diffs["cache_image"] = max(diffs["cache_image"], worst)
                    failures.append(
                        f"cache {label}: {name} differs from uncached render "
                        f"(max diff {worst:.3e})"
                    )
            if not np.array_equal(cached.fragments_per_pixel, plain.fragments_per_pixel):
                failures.append(f"cache {label}: fragment counts differ from uncached")
            # Backward on the cached render before the next lookup reuses the
            # arena its tile caches alias (this also releases the engine's
            # arena claim).
            dL_dimage, dL_ddepth = self._loss_arrays(
                spec, plain.image.shape, plain.depth.shape, salt=17
            )
            grads_cached = cached_engine.backward(cached, cloud, dL_dimage, dL_ddepth)
            grads_plain = plain_engine.backward(plain, cloud, dL_dimage, dL_ddepth)
            for name in GRADIENT_FIELDS:
                value = _max_abs_diff(
                    np.asarray(getattr(grads_cached, name)),
                    np.asarray(getattr(grads_plain, name)),
                )
                diffs["cache_grad"] = max(diffs["cache_grad"], value)
                if not value <= self.grad_tol:
                    failures.append(
                        f"cache {label}: gradient {name} diff {value:.3e} exceeds "
                        f"tolerance {self.grad_tol:.1e}"
                    )

        compare("initial")
        compare("repeat")

        rng = np.random.default_rng(97)
        n = len(cloud)
        if n:
            cloud.apply_parameter_step(d_opacity_logits=rng.normal(0.0, 0.05, size=n))
            compare("opacity-step")
            cloud.apply_parameter_step(d_colors=rng.normal(0.0, 0.02, size=(n, 3)))
            compare("color-step")
            # A full Adam-style step moves geometry too: exact mode must rebuild.
            cloud.apply_parameter_step(
                d_positions=rng.normal(0.0, 1e-3, size=(n, 3)),
                d_log_scales=rng.normal(0.0, 1e-3, size=(n, 3)),
                d_opacity_logits=rng.normal(0.0, 0.05, size=n),
                d_colors=rng.normal(0.0, 0.02, size=(n, 3)),
            )
            compare("adam-step")
        cloud.extend(
            GaussianCloud.from_points(
                np.array([[0.05, -0.03, 0.08], [-0.1, 0.06, 0.2]]),
                np.array([[0.8, 0.3, 0.2], [0.2, 0.6, 0.9]]),
                scale=0.12,
                opacity=0.75,
            )
        )
        compare("densify")
        cloud.remove(np.array([len(cloud) - 1]))
        compare("prune")
        cloud.mask(np.array([0]))
        compare("mask")
        cloud.remove_inactive()  # the notify_removed removal path
        compare("remove-inactive")
        return diffs, failures

    # -- engine-vs-legacy equivalence ----------------------------------------
    def _legacy_render(
        self, backend: str, spec: SceneSpec, cache: GeometryCache | None
    ) -> RenderResult | None:
        """The pre-engine free-function implementation of ``backend``, if known."""
        kwargs = dict(
            background=spec.background,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
        )
        if backend == "tile":
            # The reference loop ignores caches (its legacy contract).
            return rasterize_tile(spec.cloud, spec.camera, spec.pose_cw, **kwargs)
        if backend == "flat":
            if cache is not None:
                return cache.render_single(spec.cloud, spec.camera, spec.pose_cw, **kwargs)
            return rasterize_flat(spec.cloud, spec.camera, spec.pose_cw, **kwargs)
        if backend == "sharded":
            # Single-view sharded renders run the serial flat fast path by
            # contract, parent-resident cache included.
            if cache is not None:
                return cache.render_single(spec.cloud, spec.camera, spec.pose_cw, **kwargs)
            return rasterize_flat(spec.cloud, spec.camera, spec.pose_cw, **kwargs)
        return None

    def verify_engine(self, spec: SceneSpec) -> tuple[dict[str, float], list[str]]:
        """Pin engine-mediated renders bit-identical to the legacy path.

        For each of the runner's backends — reference, candidate and the
        ``sharded`` multi-process backend (whose single-view renders degrade
        to the flat fast path by contract) — with the geometry cache off and
        on (exact configuration), the engine render — first call (miss) and
        repeat call (hit) — must equal the legacy free-function
        implementation bitwise on every forward output, agree on
        ``cache_status``, and produce bitwise-equal backward gradients.
        Backends the runner does not recognise as built-ins are skipped.
        """
        failures: list[str] = []
        diffs = {"engine_image": 0.0, "engine_grad": 0.0}
        for backend in dict.fromkeys(
            (self.reference_backend, self.candidate_backend, self.sharded_backend)
        ):
            if backend not in ("tile", "flat", "sharded") or backend not in REGISTRY:
                continue
            for cached in (False, True):
                engine = RenderEngine(
                    EngineConfig(
                        backend=backend,
                        geom_cache=cached,
                        shard_workers=self.n_shard_workers,
                        **_EXACT_ENGINE_CACHE,
                    )
                )
                supports_cache = engine.capabilities().cache
                legacy_cache = (
                    GeometryCache(GeomCacheConfig(**_EXACT_CACHE))
                    if cached and supports_cache
                    else None
                )
                for round_label in ("first", "repeat"):
                    label = f"engine {backend} cache={'on' if cached else 'off'} {round_label}"
                    engine_render = self._render(engine, spec, managed=cached)
                    legacy_render = self._legacy_render(backend, spec, legacy_cache)
                    for name in ("image", "depth", "alpha"):
                        a = getattr(engine_render, name)
                        b = getattr(legacy_render, name)
                        if not np.array_equal(a, b):
                            worst = _max_abs_diff(a, b)
                            diffs["engine_image"] = max(diffs["engine_image"], worst)
                            failures.append(
                                f"{label}: {name} differs from the legacy path "
                                f"(max diff {worst:.3e})"
                            )
                    if not np.array_equal(
                        engine_render.fragments_per_pixel, legacy_render.fragments_per_pixel
                    ):
                        failures.append(f"{label}: fragment counts differ from the legacy path")
                    if engine_render.cache_status != legacy_render.cache_status:
                        failures.append(
                            f"{label}: cache status {engine_render.cache_status!r} != "
                            f"legacy {legacy_render.cache_status!r}"
                        )
                    dL_dimage, dL_ddepth = self._loss_arrays(
                        spec, engine_render.image.shape, engine_render.depth.shape, salt=29
                    )
                    engine_grads = engine.backward(
                        engine_render, spec.cloud, dL_dimage, dL_ddepth
                    )
                    # The sharded backend's single-view legacy equivalent is
                    # the flat pipeline, Step 4 included.
                    legacy_step4 = "flat" if backend == "sharded" else backend
                    legacy_screen = rasterize_backward(
                        legacy_render, dL_dimage, dL_ddepth, backend=legacy_step4
                    )
                    legacy_grads = preprocess_backward(
                        legacy_screen, spec.cloud, compute_pose_gradient=True
                    )
                    for name in GRADIENT_FIELDS:
                        a = np.asarray(getattr(engine_grads, name))
                        b = np.asarray(getattr(legacy_grads, name))
                        if not np.array_equal(a, b):
                            worst = _max_abs_diff(a, b)
                            diffs["engine_grad"] = max(diffs["engine_grad"], worst)
                            failures.append(
                                f"{label}: gradient {name} differs from the legacy "
                                f"path (max diff {worst:.3e})"
                            )
        return diffs, failures

    def verify_sharded(self, spec: SceneSpec) -> tuple[dict[str, float], list[str]]:
        """Pin the sharded batch bitwise against the flat batch.

        Renders an ``n_batch_views``-view batch through an engine pinned to
        the ``sharded`` backend (``n_shard_workers`` worker processes) and
        through the flat engine, and requires every forward output, the
        per-view fragment counts, the fused backward's cloud gradients and
        the per-view pose twists to be **bit-identical** — the sharded
        backend executes the very same work units the flat backend runs
        serially, so any divergence is a real defect, not rounding.  On
        platforms where worker processes cannot spawn the sharded engine
        degrades to the serial flat path and the check still pins that
        degradation's equivalence.
        """
        failures: list[str] = []
        diffs = {
            "sharded_image": 0.0,
            "sharded_grad": 0.0,
            "fault_image": 0.0,
            "fault_grad": 0.0,
            "fault_events": 0.0,
        }
        if self.sharded_backend not in REGISTRY:
            return diffs, failures
        sharded_engine = self.engine_for(self.sharded_backend)
        flat_engine = self.engine_for(self.candidate_backend)
        poses = spec.view_poses(self.n_batch_views)
        cameras = [spec.camera] * self.n_batch_views
        backgrounds = [spec.background] * self.n_batch_views

        def batch_through(engine: RenderEngine):
            return engine.render_batch(
                spec.cloud,
                cameras,
                poses,
                backgrounds=backgrounds,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
            )

        sharded = batch_through(sharded_engine)
        flat = batch_through(flat_engine)
        for index, (sharded_view, flat_view) in enumerate(zip(sharded.views, flat.views)):
            for name in ("image", "depth", "alpha"):
                a = getattr(sharded_view, name)
                b = getattr(flat_view, name)
                if not np.array_equal(a, b):
                    worst = _max_abs_diff(a, b)
                    diffs["sharded_image"] = max(diffs["sharded_image"], worst)
                    failures.append(
                        f"sharded view {index}: {name} differs from the flat batch "
                        f"(max diff {worst:.3e})"
                    )
            if not np.array_equal(
                sharded_view.fragments_per_pixel, flat_view.fragments_per_pixel
            ):
                failures.append(
                    f"sharded view {index}: fragment counts differ from the flat batch"
                )

        losses = [
            self._loss_arrays(spec, view.image.shape, view.depth.shape, salt=41 + index)
            for index, view in enumerate(flat.views)
        ]
        sharded_grads = sharded_engine.backward_batch(
            sharded,
            spec.cloud,
            [dL_dimage for dL_dimage, _ in losses],
            [dL_ddepth for _, dL_ddepth in losses],
            compute_pose_gradient=True,
        )
        flat_grads = flat_engine.backward_batch(
            flat,
            spec.cloud,
            [dL_dimage for dL_dimage, _ in losses],
            [dL_ddepth for _, dL_ddepth in losses],
            compute_pose_gradient=True,
        )
        for name in GRADIENT_FIELDS:
            a = np.asarray(getattr(sharded_grads.cloud, name))
            b = np.asarray(getattr(flat_grads.cloud, name))
            if not np.array_equal(a, b):
                worst = _max_abs_diff(a, b)
                diffs["sharded_grad"] = max(diffs["sharded_grad"], worst)
                failures.append(
                    f"sharded batch: gradient {name} differs from the flat batch "
                    f"(max diff {worst:.3e})"
                )
        if not np.array_equal(
            sharded_grads.per_view_pose_twists, flat_grads.per_view_pose_twists
        ):
            worst = _max_abs_diff(
                sharded_grads.per_view_pose_twists, flat_grads.per_view_pose_twists
            )
            diffs["sharded_grad"] = max(diffs["sharded_grad"], worst)
            failures.append(
                f"sharded batch: per-view pose twists differ from the flat batch "
                f"(max diff {worst:.3e})"
            )
        if self.fault_schedule:
            failures.extend(
                self._verify_sharded_faulted(spec, flat, losses, flat_grads, diffs)
            )
        cached_failures = self._verify_sharded_cached(spec, diffs)
        failures.extend(cached_failures)
        return diffs, failures

    def _verify_sharded_faulted(
        self, spec: SceneSpec, flat, losses, flat_grads, diffs: dict[str, float]
    ) -> list[str]:
        """The fault phase: the batch under ``fault_schedule`` must still match.

        Re-renders the same window through a dedicated sharded engine (short
        deadline, so injected hangs cost seconds, not minutes) while the
        runner's fault schedule is active.  The self-healing dispatch must
        complete the batch with forward outputs and fused backward gradients
        **bit-identical** to the healthy flat batch, and any events it logged
        must be visible on the attribution.
        """
        from repro.engine import fault_plan

        failures: list[str] = []
        engine = RenderEngine(
            EngineConfig(
                backend=self.sharded_backend,
                geom_cache=False,
                shard_workers=self.n_shard_workers,
                shard_deadline_s=self.fault_deadline_s,
                shard_backoff_s=1.0,
            )
        )
        poses = spec.view_poses(self.n_batch_views)
        with fault_plan(self.fault_schedule):
            faulted = engine.render_batch(
                spec.cloud,
                [spec.camera] * self.n_batch_views,
                poses,
                backgrounds=[spec.background] * self.n_batch_views,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
                managed=False,
            )
        for index, (faulted_view, flat_view) in enumerate(zip(faulted.views, flat.views)):
            for name in ("image", "depth", "alpha"):
                a = getattr(faulted_view, name)
                b = getattr(flat_view, name)
                if not np.array_equal(a, b):
                    worst = _max_abs_diff(a, b)
                    diffs["fault_image"] = max(diffs["fault_image"], worst)
                    failures.append(
                        f"fault phase view {index}: {name} differs from the "
                        f"healthy flat batch (max diff {worst:.3e})"
                    )
            if not np.array_equal(
                faulted_view.fragments_per_pixel, flat_view.fragments_per_pixel
            ):
                failures.append(
                    f"fault phase view {index}: fragment counts differ from "
                    "the healthy flat batch"
                )
        if faulted.sharding is not None:
            diffs["fault_events"] += float(len(faulted.sharding.fault_events))
        faulted_grads = engine.backward_batch(
            faulted,
            spec.cloud,
            [dL_dimage for dL_dimage, _ in losses],
            [dL_ddepth for _, dL_ddepth in losses],
            compute_pose_gradient=True,
        )
        for name in GRADIENT_FIELDS:
            a = np.asarray(getattr(faulted_grads.cloud, name))
            b = np.asarray(getattr(flat_grads.cloud, name))
            if not np.array_equal(a, b):
                worst = _max_abs_diff(a, b)
                diffs["fault_grad"] = max(diffs["fault_grad"], worst)
                failures.append(
                    f"fault phase: gradient {name} differs from the healthy "
                    f"flat batch (max diff {worst:.3e})"
                )
        if not np.array_equal(
            faulted_grads.per_view_pose_twists, flat_grads.per_view_pose_twists
        ):
            failures.append(
                "fault phase: per-view pose twists differ from the healthy flat batch"
            )
        return failures

    def _verify_sharded_cached(self, spec: SceneSpec, diffs: dict[str, float]) -> list[str]:
        """Pin worker-resident sharded caching bitwise against the flat cache.

        The same batch rendered through a sharded engine (worker-resident
        geometry caches, exact configuration) and a flat engine (parent-
        resident cache, same configuration) must agree bitwise on every
        forward output, report identical per-view cache statuses, and produce
        bitwise-equal fused backward gradients — across a miss round, a hit
        round and a refresh round (appearance-only mutation).  A second pair
        of engines with pose-quantised keys then re-renders the window at
        nudged poses: both cache sites must make the same re-key decision
        (predicted parent-side from the quantised buckets), agree bitwise
        with each other, and stay within the configured screen-space
        tolerance of an exact uncached render.
        """
        from repro.gaussians.geom_cache import view_key

        failures: list[str] = []
        poses = spec.view_poses(self.n_batch_views)
        cameras = [spec.camera] * self.n_batch_views
        backgrounds = [spec.background] * self.n_batch_views
        cloud = spec.cloud.copy()

        sharded_engine = RenderEngine(
            EngineConfig(
                backend=self.sharded_backend,
                geom_cache=True,
                shard_workers=self.n_shard_workers,
                **_EXACT_ENGINE_CACHE,
            )
        )
        flat_engine = RenderEngine(
            EngineConfig(
                backend=self.candidate_backend, geom_cache=True, **_EXACT_ENGINE_CACHE
            )
        )

        def batch_through(engine: RenderEngine):
            return engine.render_batch(
                cloud,
                cameras,
                poses,
                backgrounds=backgrounds,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
            )

        def compare_round(label: str, expected_statuses: set[str]) -> None:
            sharded = batch_through(sharded_engine)
            flat = batch_through(flat_engine)
            sharded_statuses = [view.cache_status for view in sharded.views]
            flat_statuses = [view.cache_status for view in flat.views]
            if sharded_statuses != flat_statuses:
                failures.append(
                    f"sharded cache {label}: statuses {sharded_statuses} != "
                    f"flat cache statuses {flat_statuses}"
                )
            if not set(sharded_statuses) <= expected_statuses:
                failures.append(
                    f"sharded cache {label}: statuses {sharded_statuses} outside "
                    f"expected {sorted(expected_statuses)}"
                )
            for index, (sharded_view, flat_view) in enumerate(
                zip(sharded.views, flat.views)
            ):
                for name in ("image", "depth", "alpha"):
                    a = getattr(sharded_view, name)
                    b = getattr(flat_view, name)
                    if not np.array_equal(a, b):
                        worst = _max_abs_diff(a, b)
                        diffs["sharded_image"] = max(diffs["sharded_image"], worst)
                        failures.append(
                            f"sharded cache {label} view {index}: {name} differs "
                            f"from the flat-cached batch (max diff {worst:.3e})"
                        )
                if not np.array_equal(
                    sharded_view.fragments_per_pixel, flat_view.fragments_per_pixel
                ):
                    failures.append(
                        f"sharded cache {label} view {index}: fragment counts "
                        "differ from the flat-cached batch"
                    )
            losses = [
                self._loss_arrays(spec, view.image.shape, view.depth.shape, salt=53 + index)
                for index, view in enumerate(flat.views)
            ]
            sharded_grads = sharded_engine.backward_batch(
                sharded,
                cloud,
                [dL_dimage for dL_dimage, _ in losses],
                [dL_ddepth for _, dL_ddepth in losses],
                compute_pose_gradient=True,
            )
            flat_grads = flat_engine.backward_batch(
                flat,
                cloud,
                [dL_dimage for dL_dimage, _ in losses],
                [dL_ddepth for _, dL_ddepth in losses],
                compute_pose_gradient=True,
            )
            for name in GRADIENT_FIELDS:
                a = np.asarray(getattr(sharded_grads.cloud, name))
                b = np.asarray(getattr(flat_grads.cloud, name))
                if not np.array_equal(a, b):
                    worst = _max_abs_diff(a, b)
                    diffs["sharded_grad"] = max(diffs["sharded_grad"], worst)
                    failures.append(
                        f"sharded cache {label}: gradient {name} differs from the "
                        f"flat-cached batch (max diff {worst:.3e})"
                    )

        compare_round("miss", {"miss"})
        compare_round("hit", {"hit"})
        if len(cloud):
            cloud.apply_parameter_step(
                d_colors=np.full((len(cloud), 3), 0.01),
            )
            compare_round("refresh", {"refresh"})
        # Eagerly free the per-scenario worker-resident entries (also
        # exercises the cross-process invalidation broadcast).
        sharded_engine.invalidate_cache()

        # Pose-quantised cross-window re-keying: nudged poses must re-key
        # onto the built entries and serve the toleranced stale-geometry
        # tier, identically at both cache sites.
        quantum, tolerance_px = 0.05, 2.0
        quantised_config = dict(
            geom_cache=True,
            cache_tolerance_px=tolerance_px,
            cache_refine_margin=0.0,
            cache_termination_margin=0.0,
            cache_pose_quantum=quantum,
        )
        sharded_quantised = RenderEngine(
            EngineConfig(
                backend=self.sharded_backend,
                shard_workers=self.n_shard_workers,
                **quantised_config,
            )
        )
        flat_quantised = RenderEngine(
            EngineConfig(backend=self.candidate_backend, **quantised_config)
        )
        build_cloud = spec.cloud.copy()
        nudge = 1e-5
        nudged_poses = [
            type(pose)(pose.rotation, pose.translation + nudge) for pose in poses
        ]
        # Pose buckets predict each view's tier: a nudge that stays inside
        # the build pose's quantised bucket re-keys (incremental); the rare
        # boundary crossing is an honest miss at both sites.
        expected = [
            "incremental"
            if view_key(
                camera, built, spec.tile_size, spec.subtile_size, True,
                pose_quantum=quantum,
            )
            == view_key(
                camera, nudged, spec.tile_size, spec.subtile_size, True,
                pose_quantum=quantum,
            )
            else "miss"
            for camera, built, nudged in zip(cameras, poses, nudged_poses)
        ]
        for engine in (sharded_quantised, flat_quantised):
            built = engine.render_batch(
                build_cloud,
                cameras,
                poses,
                backgrounds=backgrounds,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
            )
            engine.release(built)
        sharded_nudged = sharded_quantised.render_batch(
            build_cloud,
            cameras,
            nudged_poses,
            backgrounds=backgrounds,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
        )
        flat_nudged = flat_quantised.render_batch(
            build_cloud,
            cameras,
            nudged_poses,
            backgrounds=backgrounds,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
        )
        statuses = [view.cache_status for view in sharded_nudged.views]
        if statuses != expected:
            failures.append(
                f"sharded pose-quantised re-key: statuses {statuses} != "
                f"bucket-predicted {expected}"
            )
        if statuses != [view.cache_status for view in flat_nudged.views]:
            failures.append(
                "sharded pose-quantised re-key: statuses diverge from the "
                "flat-cached engine"
            )
        uncached_engine = self.engine_for(self.candidate_backend)
        exact = uncached_engine.render_batch(
            build_cloud,
            cameras,
            nudged_poses,
            backgrounds=backgrounds,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
            managed=False,
        )
        # The re-keyed tier serves geometry built at the quantised pose: it
        # is approximate, bounded by the configured screen-space tolerance
        # (generous here, so the documented bound is what gates).
        documented_bound = 0.05
        for index, (sharded_view, flat_view, exact_view) in enumerate(
            zip(sharded_nudged.views, flat_nudged.views, exact.views)
        ):
            for name in ("image", "depth", "alpha"):
                a = getattr(sharded_view, name)
                if not np.array_equal(a, getattr(flat_view, name)):
                    worst = _max_abs_diff(a, getattr(flat_view, name))
                    diffs["sharded_image"] = max(diffs["sharded_image"], worst)
                    failures.append(
                        f"sharded pose-quantised view {index}: {name} differs "
                        f"from the flat-cached engine (max diff {worst:.3e})"
                    )
            drift = _max_abs_diff(sharded_view.image, exact_view.image)
            if not drift <= documented_bound:
                failures.append(
                    f"sharded pose-quantised view {index}: image drift "
                    f"{drift:.3e} vs an exact render exceeds the documented "
                    f"bound {documented_bound:.1e} (tolerance_px={tolerance_px})"
                )
        sharded_quantised.release(sharded_nudged)
        flat_quantised.release(flat_nudged)
        sharded_quantised.invalidate_cache()
        return failures

    def verify_async(self, spec: SceneSpec) -> tuple[dict[str, float], list[str]]:
        """Pin the async pipelining backend bitwise against the flat batch.

        Four phases, all required **bit-identical** to the flat serial batch:

        1. a plain batch with no speculation (empty pending list == plain
           sharded behaviour), forward and fused backward;
        2. the speculate -> consume path: the batch is speculated first, the
           matching render must adopt it (handle ``consumed``) and still
           equal flat — the speculation is the same pure function evaluated
           early on another thread;
        3. invalidation: a cloud epoch bump between speculation and render
           must *discard* the speculative plan (handle ``discarded``, never
           stitched) and the synchronous re-render must still equal flat;
        4. the ``drain()`` barrier retires a pending speculation (handle
           ``drained``) and the next render equals flat.

        With a ``fault_schedule`` set, phase 2 is repeated under injected
        faults through a dedicated short-deadline engine; a cached variant
        re-runs speculate -> consume with exact-configuration geometry caches
        on both sides.  On platforms where worker processes cannot spawn, the
        inner sharded backend degrades to the serial flat path and the checks
        pin that degradation's equivalence instead.
        """
        diffs = {
            "async_image": 0.0,
            "async_grad": 0.0,
            "async_fault": 0.0,
            "async_cached": 0.0,
        }
        failures: list[str] = []
        if self.async_backend not in REGISTRY:
            return diffs, failures
        async_engine = self.engine_for(self.async_backend)
        flat_engine = self.engine_for(self.candidate_backend)
        poses = spec.view_poses(self.n_batch_views)
        cameras = [spec.camera] * self.n_batch_views
        backgrounds = [spec.background] * self.n_batch_views

        def batch_through(engine: RenderEngine):
            return engine.render_batch(
                spec.cloud,
                cameras,
                poses,
                backgrounds=backgrounds,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
            )

        def speculate(engine: RenderEngine):
            return engine.speculate_batch(
                spec.cloud,
                cameras,
                poses,
                backgrounds=backgrounds,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
            )

        def compare_forward(batch, flat, phase: str, key: str) -> None:
            for index, (async_view, flat_view) in enumerate(zip(batch.views, flat.views)):
                for name in ("image", "depth", "alpha"):
                    a = getattr(async_view, name)
                    b = getattr(flat_view, name)
                    if not np.array_equal(a, b):
                        worst = _max_abs_diff(a, b)
                        diffs[key] = max(diffs[key], worst)
                        failures.append(
                            f"async {phase} view {index}: {name} differs from the "
                            f"flat batch (max diff {worst:.3e})"
                        )
                if not np.array_equal(
                    async_view.fragments_per_pixel, flat_view.fragments_per_pixel
                ):
                    failures.append(
                        f"async {phase} view {index}: fragment counts differ "
                        "from the flat batch"
                    )

        # Phase 1: no speculation — plain batch, forward + fused backward.
        flat = batch_through(flat_engine)
        plain = batch_through(async_engine)
        compare_forward(plain, flat, "plain", "async_image")
        losses = [
            self._loss_arrays(spec, view.image.shape, view.depth.shape, salt=61 + index)
            for index, view in enumerate(flat.views)
        ]
        flat_grads = flat_engine.backward_batch(
            flat,
            spec.cloud,
            [dL_dimage for dL_dimage, _ in losses],
            [dL_ddepth for _, dL_ddepth in losses],
            compute_pose_gradient=True,
        )
        async_grads = async_engine.backward_batch(
            plain,
            spec.cloud,
            [dL_dimage for dL_dimage, _ in losses],
            [dL_ddepth for _, dL_ddepth in losses],
            compute_pose_gradient=True,
        )
        for name in GRADIENT_FIELDS:
            a = np.asarray(getattr(async_grads.cloud, name))
            b = np.asarray(getattr(flat_grads.cloud, name))
            if not np.array_equal(a, b):
                worst = _max_abs_diff(a, b)
                diffs["async_grad"] = max(diffs["async_grad"], worst)
                failures.append(
                    f"async batch: gradient {name} differs from the flat batch "
                    f"(max diff {worst:.3e})"
                )
        if not np.array_equal(
            async_grads.per_view_pose_twists, flat_grads.per_view_pose_twists
        ):
            failures.append(
                "async batch: per-view pose twists differ from the flat batch"
            )

        # Phase 2: speculate -> consume.
        handle = speculate(async_engine)
        consumed = batch_through(async_engine)
        if handle is None or not handle.consumed:
            failures.append(
                "async speculate->consume: speculative plan was not consumed "
                f"(status {handle.status if handle else 'none'})"
            )
        compare_forward(consumed, flat, "speculated", "async_image")
        async_engine.release()

        # Phase 3: mutate between speculation and render — must discard.
        handle = speculate(async_engine)
        spec.cloud.bump_epoch()  # content-free epoch bump: caches/speculation stale
        discarded = batch_through(async_engine)
        if handle is not None and handle.status != "discarded":
            failures.append(
                "async invalidation: epoch bump did not discard the "
                f"speculative plan (status {handle.status})"
            )
        compare_forward(discarded, flat, "post-discard", "async_image")
        async_engine.release()

        # Phase 4: drain() barrier.
        handle = speculate(async_engine)
        async_engine.drain()
        if handle is not None and handle.status != "drained":
            failures.append(
                f"async drain: handle not drained (status {handle.status})"
            )
        drained = batch_through(async_engine)
        compare_forward(drained, flat, "post-drain", "async_image")
        async_engine.release()

        if self.fault_schedule:
            failures.extend(self._verify_async_faulted(spec, flat, diffs))
        failures.extend(self._verify_async_cached(spec, diffs))
        flat_engine.release()
        return diffs, failures

    def _verify_async_faulted(self, spec: SceneSpec, flat, diffs) -> list[str]:
        """Speculate -> consume under injected faults: still bitwise to flat.

        The speculation thread dispatches over the pool while the fault plan
        is active, so injected worker deaths/hangs/poisons hit the
        speculative path itself; the self-healing dispatch must deliver a
        bit-identical batch through the consume anyway.
        """
        from repro.engine import fault_plan

        failures: list[str] = []
        engine = RenderEngine(
            EngineConfig(
                backend=self.async_backend,
                geom_cache=False,
                shard_workers=self.n_shard_workers,
                shard_deadline_s=self.fault_deadline_s,
                shard_backoff_s=1.0,
            )
        )
        poses = spec.view_poses(self.n_batch_views)
        cameras = [spec.camera] * self.n_batch_views
        backgrounds = [spec.background] * self.n_batch_views
        with fault_plan(self.fault_schedule):
            handle = engine.speculate_batch(
                spec.cloud,
                cameras,
                poses,
                backgrounds=backgrounds,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
            )
            faulted = engine.render_batch(
                spec.cloud,
                cameras,
                poses,
                backgrounds=backgrounds,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
            )
        if handle is not None and not handle.consumed:
            failures.append(
                "async fault phase: speculative plan was not consumed "
                f"(status {handle.status})"
            )
        for index, (faulted_view, flat_view) in enumerate(zip(faulted.views, flat.views)):
            for name in ("image", "depth", "alpha"):
                a = getattr(faulted_view, name)
                b = getattr(flat_view, name)
                if not np.array_equal(a, b):
                    worst = _max_abs_diff(a, b)
                    diffs["async_fault"] = max(diffs["async_fault"], worst)
                    failures.append(
                        f"async fault phase view {index}: {name} differs from "
                        f"the healthy flat batch (max diff {worst:.3e})"
                    )
        engine.release()
        engine.drain()
        return failures

    def _verify_async_cached(self, spec: SceneSpec, diffs) -> list[str]:
        """Speculate -> consume with exact-configuration caches on both sides.

        Two rounds (a miss round, then a speculated round over warm caches):
        the async engine's worker-resident cache entries are keyed by the
        same cloud epochs the flat parent cache uses, so in exact mode both
        sides must stay bit-identical regardless of which tier served them.
        """
        failures: list[str] = []
        async_cached = RenderEngine(
            EngineConfig(
                backend=self.async_backend,
                geom_cache=True,
                shard_workers=self.n_shard_workers,
                **_EXACT_ENGINE_CACHE,
            )
        )
        flat_cached = RenderEngine(
            EngineConfig(
                backend=self.candidate_backend, geom_cache=True, **_EXACT_ENGINE_CACHE
            )
        )
        poses = spec.view_poses(self.n_batch_views)
        cameras = [spec.camera] * self.n_batch_views
        backgrounds = [spec.background] * self.n_batch_views

        def batch_through(engine: RenderEngine):
            return engine.render_batch(
                spec.cloud,
                cameras,
                poses,
                backgrounds=backgrounds,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
            )

        for round_label in ("miss", "warm"):
            if round_label == "warm":
                handle = async_cached.speculate_batch(
                    spec.cloud,
                    cameras,
                    poses,
                    backgrounds=backgrounds,
                    tile_size=spec.tile_size,
                    subtile_size=spec.subtile_size,
                )
            else:
                handle = None
            async_batch = batch_through(async_cached)
            flat_batch = batch_through(flat_cached)
            if round_label == "warm" and handle is not None and not handle.consumed:
                failures.append(
                    "async cached warm round: speculative plan was not "
                    f"consumed (status {handle.status})"
                )
            for index, (async_view, flat_view) in enumerate(
                zip(async_batch.views, flat_batch.views)
            ):
                for name in ("image", "depth", "alpha"):
                    a = getattr(async_view, name)
                    b = getattr(flat_view, name)
                    if not np.array_equal(a, b):
                        worst = _max_abs_diff(a, b)
                        diffs["async_cached"] = max(diffs["async_cached"], worst)
                        failures.append(
                            f"async cached {round_label} round view {index}: "
                            f"{name} differs from the flat cached batch "
                            f"(max diff {worst:.3e})"
                        )
            async_cached.release(async_batch)
            flat_cached.release(flat_batch)
        async_cached.drain()
        async_cached.invalidate_cache()
        flat_cached.invalidate_cache()
        return failures

    def verify_service(self, spec: SceneSpec) -> tuple[dict[str, float], list[str]]:
        """Pin interleaved service sessions bitwise against solo engines.

        Opens ``n_service_sessions`` sessions on one :class:`RenderService`
        (round quantum 2, so every round is a genuine sub-batch over the
        shared pool), submits every session's ``n_service_views``-view job
        *before* consuming any result — the weighted-fair scheduler then
        truly interleaves the tenants — and requires each session's stitched
        batch to be **bit-identical**, forward and fused backward, to a solo
        private engine rendering the same window.  The cached variant runs
        the same tenants with per-session exact-configuration geometry caches
        (a miss round then a hit round; the parent-resident cached path is
        bitwise against uncached by the cache phase's guarantee), and a
        ``fault_schedule`` adds a run under injected faults compared against
        the healthy solo batches.  Each batch must also carry its session's
        id on the attribution.
        """
        diffs = {
            "service_image": 0.0,
            "service_grad": 0.0,
            "service_cached_image": 0.0,
            "service_cached_grad": 0.0,
            "service_fault": 0.0,
            "service_fault_events": 0.0,
        }
        failures: list[str] = []
        if self.n_service_sessions <= 0 or self.sharded_backend not in REGISTRY:
            return diffs, failures
        from repro.service import RenderService

        n_sessions = self.n_service_sessions
        n_views = self.n_service_views
        # Overlapping per-session windows: distinct poses per tenant catch
        # cross-session result contamination that identical windows would
        # mask, while every pose still comes from the scenario's orbit.
        poses_all = spec.view_poses(n_views + n_sessions - 1)
        windows = [poses_all[i : i + n_views] for i in range(n_sessions)]
        cameras = [spec.camera] * n_views
        batch_kwargs = dict(
            backgrounds=[spec.background] * n_views,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
        )

        solo_engine = self.engine_for(self.sharded_backend)
        solos = [
            solo_engine.render_batch(
                spec.cloud, cameras, window, **batch_kwargs, managed=False
            )
            for window in windows
        ]
        losses = [
            [
                self._loss_arrays(
                    spec, view.image.shape, view.depth.shape, salt=71 + 16 * s + v
                )
                for v, view in enumerate(solo.views)
            ]
            for s, solo in enumerate(solos)
        ]
        solo_grads = [
            solo_engine.backward_batch(
                solo,
                spec.cloud,
                [image for image, _ in loss],
                [depth for _, depth in loss],
                compute_pose_gradient=True,
            )
            for solo, loss in zip(solos, losses)
        ]

        def interleave(service: RenderService, label: str):
            sessions = [
                service.open_session(f"svc-{label}-{s}") for s in range(n_sessions)
            ]
            jobs = [
                session.submit(spec.cloud, cameras, window, **batch_kwargs)
                for session, window in zip(sessions, windows)
            ]
            return sessions, [job.result() for job in jobs]

        def compare(label, sessions, batches, image_key, grad_key) -> None:
            for s, (session, batch, solo) in enumerate(zip(sessions, batches, solos)):
                sharding = batch.sharding
                if sharding is None or sharding.session_id != session.session_id:
                    failures.append(
                        f"service {label} session {s}: attribution does not "
                        "carry its session id"
                    )
                for v, (view, solo_view) in enumerate(zip(batch.views, solo.views)):
                    for name in ("image", "depth", "alpha"):
                        a = getattr(view, name)
                        b = getattr(solo_view, name)
                        if not np.array_equal(a, b):
                            worst = _max_abs_diff(a, b)
                            diffs[image_key] = max(diffs[image_key], worst)
                            failures.append(
                                f"service {label} session {s} view {v}: {name} "
                                f"differs from the solo engine (max diff "
                                f"{worst:.3e})"
                            )
                    if not np.array_equal(
                        view.fragments_per_pixel, solo_view.fragments_per_pixel
                    ):
                        failures.append(
                            f"service {label} session {s} view {v}: fragment "
                            "counts differ from the solo engine"
                        )
                grads = session.backward_batch(
                    batch,
                    spec.cloud,
                    [image for image, _ in losses[s]],
                    [depth for _, depth in losses[s]],
                    compute_pose_gradient=True,
                )
                for name in GRADIENT_FIELDS:
                    a = np.asarray(getattr(grads.cloud, name))
                    b = np.asarray(getattr(solo_grads[s].cloud, name))
                    if not np.array_equal(a, b):
                        worst = _max_abs_diff(a, b)
                        diffs[grad_key] = max(diffs[grad_key], worst)
                        failures.append(
                            f"service {label} session {s}: gradient {name} "
                            f"differs from the solo engine (max diff "
                            f"{worst:.3e})"
                        )
                if not np.array_equal(
                    grads.per_view_pose_twists, solo_grads[s].per_view_pose_twists
                ):
                    failures.append(
                        f"service {label} session {s}: per-view pose twists "
                        "differ from the solo engine"
                    )

        # -- cache-off tenants over the shared pool ------------------------
        service = RenderService(
            EngineConfig(
                backend=self.sharded_backend,
                geom_cache=False,
                shard_workers=self.n_shard_workers,
            ),
            round_quantum=2,
        )
        sessions, batches = interleave(service, "pool")
        compare("pool", sessions, batches, "service_image", "service_grad")
        if not any(
            units < n_views for _sid, units in service.dispatch_log
        ) and n_sessions > 1:
            failures.append(
                "service pool: the dispatch log shows no sub-batch rounds — "
                "the sessions were not interleaved"
            )
        service.close()

        # -- cache-on tenants (parent-resident exact caches) ---------------
        service = RenderService(
            EngineConfig(
                backend=self.sharded_backend,
                geom_cache=True,
                shard_workers=self.n_shard_workers,
                **_EXACT_ENGINE_CACHE,
            ),
            round_quantum=2,
        )
        sessions, batches = interleave(service, "cached")
        for s, batch in enumerate(batches):
            statuses = [view.cache_status for view in batch.views]
            if statuses != ["miss"] * n_views:
                failures.append(
                    f"service cached session {s}: first-round statuses "
                    f"{statuses}, expected all misses"
                )
        # Exact-mode cached renders are bitwise against uncached, so the solo
        # uncached batches remain the reference.  compare() also runs the
        # backward, which consumes each session's arena claim and unblocks
        # the hit round below.
        compare("cached", sessions, batches, "service_cached_image", "service_cached_grad")
        jobs = [
            session.submit(spec.cloud, cameras, window, **batch_kwargs)
            for session, window in zip(sessions, windows)
        ]
        repeats = [job.result() for job in jobs]
        for s, batch in enumerate(repeats):
            statuses = [view.cache_status for view in batch.views]
            if statuses != ["hit"] * n_views:
                failures.append(
                    f"service cached session {s}: repeat-round statuses "
                    f"{statuses}, expected all hits"
                )
        compare(
            "cached-hit", sessions, repeats, "service_cached_image", "service_cached_grad"
        )
        service.close()

        # -- the same tenants under the fault schedule ----------------------
        if self.fault_schedule:
            from repro.engine import fault_plan

            service = RenderService(
                EngineConfig(
                    backend=self.sharded_backend,
                    geom_cache=False,
                    shard_workers=self.n_shard_workers,
                    shard_deadline_s=self.fault_deadline_s,
                    shard_backoff_s=1.0,
                ),
                round_quantum=2,
            )
            with fault_plan(self.fault_schedule):
                sessions, batches = interleave(service, "fault")
            for batch in batches:
                if batch.sharding is not None:
                    diffs["service_fault_events"] += float(
                        len(batch.sharding.fault_events)
                    )
            compare("fault", sessions, batches, "service_fault", "service_fault")
            service.close()
        return diffs, failures

    def run_scenario(self, scenario: Scenario) -> ScenarioReport:
        """Render + backprop ``scenario`` through both backends and compare."""
        spec = scenario.build()
        reference, candidate = self.render_pair(spec)
        grads_ref, grads_cand = self.backward_pair(spec, reference, candidate)
        batch_diffs, batch_failures = self.verify_batch(spec, base_render=candidate)
        cache_diffs, cache_failures = self.verify_cache(spec)
        engine_diffs, engine_failures = self.verify_engine(spec)
        sharded_diffs, sharded_failures = self.verify_sharded(spec)
        async_diffs, async_failures = self.verify_async(spec)
        service_diffs, service_failures = self.verify_service(spec)

        image_diff = _max_abs_diff(reference.image, candidate.image)
        depth_diff = _max_abs_diff(reference.depth, candidate.depth)
        alpha_diff = _max_abs_diff(reference.alpha, candidate.alpha)
        fragments_equal = np.array_equal(
            reference.fragments_per_pixel, candidate.fragments_per_pixel
        )
        subtile_equal = np.array_equal(
            reference.fragments_per_subtile(), candidate.fragments_per_subtile()
        )
        gradient_diffs = {
            name: _max_abs_diff(
                np.asarray(getattr(grads_ref, name)), np.asarray(getattr(grads_cand, name))
            )
            for name in GRADIENT_FIELDS
        }

        failures: list[str] = []
        for label, value in (("image", image_diff), ("depth", depth_diff), ("alpha", alpha_diff)):
            if not value <= self.forward_tol:
                failures.append(
                    f"{label} diff {value:.3e} exceeds forward tolerance {self.forward_tol:.1e}"
                )
        if not fragments_equal:
            failures.append("per-pixel fragment counts differ")
        if not subtile_equal:
            failures.append("per-subtile fragment counts differ")
        for name, value in gradient_diffs.items():
            if not value <= self.grad_tol:
                failures.append(
                    f"gradient {name} diff {value:.3e} exceeds tolerance {self.grad_tol:.1e}"
                )
        if reference.n_fragments != candidate.n_fragments:
            failures.append(
                f"total fragment count differs: {reference.n_fragments} vs {candidate.n_fragments}"
            )
        failures.extend(batch_failures)
        failures.extend(cache_failures)
        failures.extend(engine_failures)
        failures.extend(sharded_failures)
        failures.extend(async_failures)
        failures.extend(service_failures)

        return ScenarioReport(
            name=scenario.name,
            n_fragments=reference.n_fragments,
            image_diff=image_diff,
            depth_diff=depth_diff,
            alpha_diff=alpha_diff,
            fragments_equal=fragments_equal,
            subtile_fragments_equal=subtile_equal,
            gradient_diffs=gradient_diffs,
            batch1_image_diff=batch_diffs["batch1_image"],
            batch1_gradient_diff=batch_diffs["batch1_grad"],
            batch_image_diff=batch_diffs["batch_image"],
            batch_gradient_diff=batch_diffs["batch_grad"],
            cache_image_diff=cache_diffs["cache_image"],
            cache_gradient_diff=cache_diffs["cache_grad"],
            engine_image_diff=engine_diffs["engine_image"],
            engine_gradient_diff=engine_diffs["engine_grad"],
            sharded_image_diff=sharded_diffs["sharded_image"],
            sharded_gradient_diff=sharded_diffs["sharded_grad"],
            async_image_diff=async_diffs["async_image"],
            async_gradient_diff=async_diffs["async_grad"],
            async_fault_diff=async_diffs["async_fault"],
            async_cached_diff=async_diffs["async_cached"],
            fault_image_diff=sharded_diffs["fault_image"],
            fault_gradient_diff=sharded_diffs["fault_grad"],
            fault_events=int(sharded_diffs["fault_events"]),
            service_image_diff=service_diffs["service_image"],
            service_gradient_diff=service_diffs["service_grad"],
            service_cached_image_diff=service_diffs["service_cached_image"],
            service_cached_gradient_diff=service_diffs["service_cached_grad"],
            service_fault_diff=service_diffs["service_fault"],
            service_fault_events=int(service_diffs["service_fault_events"]),
            failures=failures,
        )

    def run_all(self, library: ScenarioLibrary | None = None) -> list[ScenarioReport]:
        """Run every scenario of ``library`` (the default library if ``None``)."""
        return [self.run_scenario(s) for s in (library or DEFAULT_LIBRARY)]

    def assert_all(self, library: ScenarioLibrary | None = None) -> list[ScenarioReport]:
        """Like :meth:`run_all`, but raises ``AssertionError`` on any failure."""
        reports = self.run_all(library)
        failed = [r for r in reports if not r.passed]
        if failed:
            lines = [f"{r.name}: {'; '.join(r.failures)}" for r in failed]
            raise AssertionError(
                "differential verification failed:\n  " + "\n  ".join(lines)
            )
        return reports
