"""Deterministic render scenarios for differential and golden testing.

Every scenario is a fully reproducible scene (cloud + camera + pose +
background + tiling): building the same scenario twice yields bitwise
identical inputs, so renders are comparable across backends, across runs and
against committed golden fixtures.  The default :class:`ScenarioLibrary`
covers the rasterizer's behavioural corners:

* empty / all-culled clouds (no fragments at all),
* a single splat (the minimal compositing case),
* stacked opaque splats that trigger early termination,
* near-saturated opacities that hit the 0.99 alpha clamp,
* off-screen and behind-camera culling,
* dense random scenes (the realistic workload),
* degenerate tilings (single-tile image, 1x1-pixel image / 1x1 tiles,
  ragged tiles where the image is not a multiple of the tile size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.se3 import SE3


def _look_at_origin(distance: float = 2.0) -> SE3:
    return SE3.look_at(
        np.array([0.0, 0.0, -distance]), np.array([0.0, 0.0, 0.0]), up=(0, 1, 0)
    )


@dataclass(frozen=True)
class SceneSpec:
    """Everything :func:`repro.gaussians.rasterize` needs for one render."""

    cloud: GaussianCloud
    camera: Camera
    pose_cw: SE3
    background: np.ndarray
    tile_size: int = 16
    subtile_size: int = 4

    def view_poses(self, n_views: int) -> list[SE3]:
        """Deterministic multi-view poses for batched-rasterizer testing.

        The first pose is the scenario's own; subsequent poses apply small,
        fixed left perturbations (a shrinking orbit around the base view), so
        a batch over them exercises genuinely different projections while
        staying reproducible — the same property the single-view scenarios
        guarantee.
        """
        poses = [self.pose_cw]
        for k in range(1, n_views):
            twist = 0.5 ** (k - 1) * np.array(
                [0.04 * k, -0.03 * k, 0.02 * k, 0.05 * k, -0.04 * k, 0.03 * k]
            )
            poses.append(SE3.exp(twist) @ self.pose_cw)
        return poses


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic scene builder."""

    name: str
    description: str
    builder: Callable[[], SceneSpec]

    def build(self) -> SceneSpec:
        return self.builder()


class ScenarioLibrary:
    """Ordered registry of scenarios, addressable by name."""

    def __init__(self, scenarios: list[Scenario] | None = None):
        self._scenarios: dict[str, Scenario] = {}
        for scenario in scenarios or []:
            self.register(scenario)

    def register(self, scenario: Scenario) -> Scenario:
        if scenario.name in self._scenarios:
            raise ValueError(f"scenario {scenario.name!r} is already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def add(self, name: str, description: str):
        """Decorator form of :meth:`register` for builder functions."""

        def wrap(builder: Callable[[], SceneSpec]) -> Scenario:
            return self.register(Scenario(name=name, description=description, builder=builder))

        return wrap

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        return list(self._scenarios)

    def __iter__(self):
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)


DEFAULT_LIBRARY = ScenarioLibrary()


@DEFAULT_LIBRARY.add("empty_cloud", "zero Gaussians: background-only render, no fragments")
def _empty_cloud() -> SceneSpec:
    return SceneSpec(
        cloud=GaussianCloud.empty(),
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.2, 0.1, 0.3]),
    )


@DEFAULT_LIBRARY.add("single_gaussian", "one splat at the image centre")
def _single_gaussian() -> SceneSpec:
    cloud = GaussianCloud.from_points(
        np.array([[0.0, 0.0, 0.0]]),
        np.array([[0.9, 0.4, 0.2]]),
        scale=0.15,
        opacity=0.8,
    )
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.zeros(3),
    )


@DEFAULT_LIBRARY.add(
    "overlapping_opaque",
    "opaque splats stacked in depth: transmittance collapses, early termination",
)
def _overlapping_opaque() -> SceneSpec:
    n = 8
    points = np.zeros((n, 3))
    points[:, 2] = np.linspace(-0.3, 0.4, n)  # stacked along the view axis
    rng = np.random.default_rng(11)
    colors = rng.uniform(0.1, 0.9, size=(n, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.25, opacity=0.98)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.05, 0.05, 0.05]),
    )


@DEFAULT_LIBRARY.add(
    "alpha_clamp", "near-saturated opacity: raw alpha exceeds the 0.99 clamp"
)
def _alpha_clamp() -> SceneSpec:
    cloud = GaussianCloud.from_points(
        np.array([[0.0, 0.0, 0.0], [0.05, 0.02, 0.1]]),
        np.array([[0.8, 0.8, 0.2], [0.2, 0.6, 0.9]]),
        scale=0.3,
        opacity=0.9995,
    )
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.zeros(3),
    )


@DEFAULT_LIBRARY.add(
    "offscreen_culling",
    "mixture of visible, off-screen and behind-camera splats exercising culling",
)
def _offscreen_culling() -> SceneSpec:
    points = np.array(
        [
            [0.0, 0.0, 0.0],  # visible
            [0.3, -0.2, 0.1],  # visible
            [50.0, 0.0, 0.0],  # far off-screen laterally
            [0.0, 80.0, 0.0],  # far off-screen vertically
            [0.0, 0.0, -10.0],  # behind the camera
            [0.0, 0.0, -5.0],  # behind the camera
        ]
    )
    colors = np.linspace(0.1, 0.9, points.shape[0] * 3).reshape(-1, 3)
    cloud = GaussianCloud.from_points(points, colors, scale=0.12, opacity=0.7)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.0, 0.1, 0.0]),
    )


@DEFAULT_LIBRARY.add("all_culled", "every Gaussian behind the camera: nothing projects")
def _all_culled() -> SceneSpec:
    points = np.array([[0.0, 0.0, -8.0], [0.5, 0.2, -6.0], [-0.4, 0.1, -12.0]])
    colors = np.full((3, 3), 0.5)
    cloud = GaussianCloud.from_points(points, colors, scale=0.1, opacity=0.7)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.3, 0.3, 0.3]),
    )


@DEFAULT_LIBRARY.add("dense_random", "dense random cloud: the realistic mixed workload")
def _dense_random() -> SceneSpec:
    rng = np.random.default_rng(42)
    points = rng.uniform(-0.6, 0.6, size=(150, 3))
    points[:, 2] *= 0.4
    colors = rng.uniform(0.05, 0.95, size=(150, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.1, opacity=0.65)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(64, 48, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.1, 0.2, 0.3]),
    )


@DEFAULT_LIBRARY.add("single_tile", "image exactly one tile wide and tall")
def _single_tile() -> SceneSpec:
    rng = np.random.default_rng(5)
    points = rng.uniform(-0.3, 0.3, size=(12, 3))
    points[:, 2] *= 0.3
    colors = rng.uniform(0.1, 0.9, size=(12, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.12, opacity=0.7)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(16, 16, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.zeros(3),
        tile_size=16,
        subtile_size=4,
    )


@DEFAULT_LIBRARY.add("one_pixel", "1x1-pixel image with 1x1 tiles: the smallest grid")
def _one_pixel() -> SceneSpec:
    cloud = GaussianCloud.from_points(
        np.array([[0.0, 0.0, 0.0], [0.01, 0.01, 0.2]]),
        np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]),
        scale=0.2,
        opacity=0.8,
    )
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(1, 1, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.5, 0.5, 0.5]),
        tile_size=1,
        subtile_size=1,
    )


@DEFAULT_LIBRARY.add(
    "ragged_tiles", "image size not a multiple of the tile size: partial edge tiles"
)
def _ragged_tiles() -> SceneSpec:
    rng = np.random.default_rng(23)
    points = rng.uniform(-0.5, 0.5, size=(40, 3))
    points[:, 2] *= 0.3
    colors = rng.uniform(0.1, 0.9, size=(40, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.13, opacity=0.6)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(21, 13, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.0, 0.0, 0.2]),
        tile_size=8,
        subtile_size=4,
    )
