"""Deterministic render scenarios for differential and golden testing.

Every scenario is a fully reproducible scene (cloud + camera + pose +
background + tiling): building the same scenario twice yields bitwise
identical inputs, so renders are comparable across backends, across runs and
against committed golden fixtures.  The default :class:`ScenarioLibrary`
covers the rasterizer's behavioural corners:

* empty / all-culled clouds (no fragments at all),
* a single splat (the minimal compositing case),
* stacked opaque splats that trigger early termination,
* near-saturated opacities that hit the 0.99 alpha clamp,
* off-screen and behind-camera culling,
* dense random scenes (the realistic workload),
* degenerate tilings (single-tile image, 1x1-pixel image / 1x1 tiles,
  ragged tiles where the image is not a multiple of the tile size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.se3 import SE3


def _look_at_origin(distance: float = 2.0) -> SE3:
    return SE3.look_at(
        np.array([0.0, 0.0, -distance]), np.array([0.0, 0.0, 0.0]), up=(0, 1, 0)
    )


@dataclass(frozen=True)
class SceneSpec:
    """Everything :func:`repro.gaussians.rasterize` needs for one render.

    ``extra_view_poses`` / ``extra_view_cameras`` let a scenario prescribe
    its *own* multi-view geometry (trajectory scenarios, mixed-resolution
    batches) instead of the default small-perturbation orbit; both default to
    empty, which preserves the historical single-camera behaviour bitwise.
    """

    cloud: GaussianCloud
    camera: Camera
    pose_cw: SE3
    background: np.ndarray
    tile_size: int = 16
    subtile_size: int = 4
    extra_view_poses: tuple[SE3, ...] = ()
    extra_view_cameras: tuple[Camera, ...] = ()

    def view_poses(self, n_views: int) -> list[SE3]:
        """Deterministic multi-view poses for batched-rasterizer testing.

        The first pose is the scenario's own.  When the scenario carries
        ``extra_view_poses`` (trajectory / aggressive-motion scenes) those are
        used, cycling if more views are requested than prescribed; otherwise
        subsequent poses apply small, fixed left perturbations (a shrinking
        orbit around the base view), so a batch over them exercises genuinely
        different projections while staying reproducible — the same property
        the single-view scenarios guarantee.
        """
        if self.extra_view_poses:
            pool = [self.pose_cw, *self.extra_view_poses]
            return [pool[k % len(pool)] for k in range(n_views)]
        poses = [self.pose_cw]
        for k in range(1, n_views):
            twist = 0.5 ** (k - 1) * np.array(
                [0.04 * k, -0.03 * k, 0.02 * k, 0.05 * k, -0.04 * k, 0.03 * k]
            )
            poses.append(SE3.exp(twist) @ self.pose_cw)
        return poses

    def view_cameras(self, n_views: int) -> list[Camera]:
        """Per-view cameras matching :meth:`view_poses`.

        The base camera everywhere unless the scenario prescribes
        ``extra_view_cameras`` (the mixed-resolution workload), which cycle
        in after the base exactly like the extra poses do.
        """
        pool = [self.camera, *self.extra_view_cameras]
        return [pool[k % len(pool)] for k in range(n_views)]

    @property
    def n_prescribed_views(self) -> int:
        """Views this scenario natively describes (1 + prescribed extras)."""
        return 1 + max(len(self.extra_view_poses), len(self.extra_view_cameras))


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic scene builder."""

    name: str
    description: str
    builder: Callable[[], SceneSpec]

    def build(self) -> SceneSpec:
        return self.builder()


class ScenarioLibrary:
    """Ordered registry of scenarios, addressable by name."""

    def __init__(self, scenarios: list[Scenario] | None = None):
        self._scenarios: dict[str, Scenario] = {}
        for scenario in scenarios or []:
            self.register(scenario)

    def register(self, scenario: Scenario) -> Scenario:
        if scenario.name in self._scenarios:
            raise ValueError(f"scenario {scenario.name!r} is already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def add(self, name: str, description: str):
        """Decorator form of :meth:`register` for builder functions."""

        def wrap(builder: Callable[[], SceneSpec]) -> Scenario:
            return self.register(Scenario(name=name, description=description, builder=builder))

        return wrap

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        return list(self._scenarios)

    def __iter__(self):
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)


DEFAULT_LIBRARY = ScenarioLibrary()


@DEFAULT_LIBRARY.add("empty_cloud", "zero Gaussians: background-only render, no fragments")
def _empty_cloud() -> SceneSpec:
    return SceneSpec(
        cloud=GaussianCloud.empty(),
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.2, 0.1, 0.3]),
    )


@DEFAULT_LIBRARY.add("single_gaussian", "one splat at the image centre")
def _single_gaussian() -> SceneSpec:
    cloud = GaussianCloud.from_points(
        np.array([[0.0, 0.0, 0.0]]),
        np.array([[0.9, 0.4, 0.2]]),
        scale=0.15,
        opacity=0.8,
    )
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.zeros(3),
    )


@DEFAULT_LIBRARY.add(
    "overlapping_opaque",
    "opaque splats stacked in depth: transmittance collapses, early termination",
)
def _overlapping_opaque() -> SceneSpec:
    n = 8
    points = np.zeros((n, 3))
    points[:, 2] = np.linspace(-0.3, 0.4, n)  # stacked along the view axis
    rng = np.random.default_rng(11)
    colors = rng.uniform(0.1, 0.9, size=(n, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.25, opacity=0.98)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.05, 0.05, 0.05]),
    )


@DEFAULT_LIBRARY.add(
    "alpha_clamp", "near-saturated opacity: raw alpha exceeds the 0.99 clamp"
)
def _alpha_clamp() -> SceneSpec:
    cloud = GaussianCloud.from_points(
        np.array([[0.0, 0.0, 0.0], [0.05, 0.02, 0.1]]),
        np.array([[0.8, 0.8, 0.2], [0.2, 0.6, 0.9]]),
        scale=0.3,
        opacity=0.9995,
    )
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.zeros(3),
    )


@DEFAULT_LIBRARY.add(
    "offscreen_culling",
    "mixture of visible, off-screen and behind-camera splats exercising culling",
)
def _offscreen_culling() -> SceneSpec:
    points = np.array(
        [
            [0.0, 0.0, 0.0],  # visible
            [0.3, -0.2, 0.1],  # visible
            [50.0, 0.0, 0.0],  # far off-screen laterally
            [0.0, 80.0, 0.0],  # far off-screen vertically
            [0.0, 0.0, -10.0],  # behind the camera
            [0.0, 0.0, -5.0],  # behind the camera
        ]
    )
    colors = np.linspace(0.1, 0.9, points.shape[0] * 3).reshape(-1, 3)
    cloud = GaussianCloud.from_points(points, colors, scale=0.12, opacity=0.7)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.0, 0.1, 0.0]),
    )


@DEFAULT_LIBRARY.add("all_culled", "every Gaussian behind the camera: nothing projects")
def _all_culled() -> SceneSpec:
    points = np.array([[0.0, 0.0, -8.0], [0.5, 0.2, -6.0], [-0.4, 0.1, -12.0]])
    colors = np.full((3, 3), 0.5)
    cloud = GaussianCloud.from_points(points, colors, scale=0.1, opacity=0.7)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.3, 0.3, 0.3]),
    )


@DEFAULT_LIBRARY.add("dense_random", "dense random cloud: the realistic mixed workload")
def _dense_random() -> SceneSpec:
    rng = np.random.default_rng(42)
    points = rng.uniform(-0.6, 0.6, size=(150, 3))
    points[:, 2] *= 0.4
    colors = rng.uniform(0.05, 0.95, size=(150, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.1, opacity=0.65)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(64, 48, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.1, 0.2, 0.3]),
    )


@DEFAULT_LIBRARY.add("single_tile", "image exactly one tile wide and tall")
def _single_tile() -> SceneSpec:
    rng = np.random.default_rng(5)
    points = rng.uniform(-0.3, 0.3, size=(12, 3))
    points[:, 2] *= 0.3
    colors = rng.uniform(0.1, 0.9, size=(12, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.12, opacity=0.7)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(16, 16, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.zeros(3),
        tile_size=16,
        subtile_size=4,
    )


@DEFAULT_LIBRARY.add("one_pixel", "1x1-pixel image with 1x1 tiles: the smallest grid")
def _one_pixel() -> SceneSpec:
    cloud = GaussianCloud.from_points(
        np.array([[0.0, 0.0, 0.0], [0.01, 0.01, 0.2]]),
        np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]),
        scale=0.2,
        opacity=0.8,
    )
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(1, 1, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.5, 0.5, 0.5]),
        tile_size=1,
        subtile_size=1,
    )


@DEFAULT_LIBRARY.add(
    "ragged_tiles", "image size not a multiple of the tile size: partial edge tiles"
)
def _ragged_tiles() -> SceneSpec:
    rng = np.random.default_rng(23)
    points = rng.uniform(-0.5, 0.5, size=(40, 3))
    points[:, 2] *= 0.3
    colors = rng.uniform(0.1, 0.9, size=(40, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.13, opacity=0.6)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(21, 13, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.0, 0.0, 0.2]),
        tile_size=8,
        subtile_size=4,
    )


# ---------------------------------------------------------------------------
# Adversarial library: the scenario-matrix growth set.
#
# These scenes extend the behavioural corners above with the workloads the
# cross-backend matrix (:mod:`repro.testing.matrix`) sweeps: near-degenerate
# Gaussians, sparse and trajectory-driven multi-view batches, mixed camera
# resolutions, and a churn scene whose mapper cells densify/prune mid-window.
# They live in their own library (not ``DEFAULT_LIBRARY``) so the committed
# golden fixtures and the per-scenario differential gates keep their exact
# historical scope; :func:`matrix_library` merges both for matrix consumers.
# ---------------------------------------------------------------------------

ADVERSARIAL_LIBRARY = ScenarioLibrary()


@ADVERSARIAL_LIBRARY.add(
    "zero_opacity",
    "near-degenerate opacities: splats at the sigmoid floor contribute ~nothing",
)
def _zero_opacity() -> SceneSpec:
    rng = np.random.default_rng(31)
    points = rng.uniform(-0.4, 0.4, size=(20, 3))
    points[:, 2] *= 0.3
    colors = rng.uniform(0.1, 0.9, size=(20, 3))
    opacity = np.full(20, 1e-6)
    opacity[::7] = 0.7  # a few real splats so the render is not pure background
    cloud = GaussianCloud.from_points(points, colors, scale=0.12, opacity=opacity)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.1, 0.1, 0.1]),
    )


@ADVERSARIAL_LIBRARY.add(
    "collapsed_covariance",
    "near-collapsed 3D covariances: sub-pixel footprints stress the radius floors",
)
def _collapsed_covariance() -> SceneSpec:
    rng = np.random.default_rng(37)
    points = rng.uniform(-0.3, 0.3, size=(15, 3))
    points[:, 2] *= 0.3
    colors = rng.uniform(0.2, 0.9, size=(15, 3))
    scales = np.full(15, 1e-6)
    scales[::5] = 0.15  # mix collapsed and healthy footprints in one scene
    cloud = GaussianCloud.from_points(points, colors, scale=scales, opacity=0.8)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(32, 24, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.zeros(3),
    )


@ADVERSARIAL_LIBRARY.add(
    "sparse_wide", "a handful of splats scattered wide: mostly-empty tiles"
)
def _sparse_wide() -> SceneSpec:
    points = np.array(
        [
            [-0.9, -0.6, 0.1],
            [0.95, 0.55, 0.0],
            [0.0, 0.0, 0.3],
            [-0.8, 0.7, -0.1],
            [0.7, -0.75, 0.2],
        ]
    )
    colors = np.linspace(0.15, 0.9, 15).reshape(5, 3)
    cloud = GaussianCloud.from_points(points, colors, scale=0.08, opacity=0.75)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(72, 54, fov_x_degrees=85.0),
        pose_cw=_look_at_origin(2.4),
        background=np.array([0.02, 0.02, 0.05]),
    )


def _trajectory_spec(n_views: int, aggressive: bool, seed: int) -> SceneSpec:
    from repro.datasets.trajectory import scenario_trajectory

    rng = np.random.default_rng(seed)
    points = rng.uniform(-0.55, 0.55, size=(80, 3))
    points[:, 2] *= 0.5
    colors = rng.uniform(0.1, 0.9, size=(80, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.11, opacity=0.65)
    poses = scenario_trajectory(n_views, aggressive=aggressive, seed=seed)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(40, 30, fov_x_degrees=70.0),
        pose_cw=poses[0],
        background=np.array([0.08, 0.12, 0.18]),
        extra_view_poses=tuple(poses[1:]),
    )


@ADVERSARIAL_LIBRARY.add(
    "long_trajectory",
    "12-view smooth orbit of one cloud: the long multi-view window workload",
)
def _long_trajectory() -> SceneSpec:
    return _trajectory_spec(n_views=12, aggressive=False, seed=43)


@ADVERSARIAL_LIBRARY.add(
    "aggressive_motion",
    "large rotations + positional jitter between views: projection/tiling churn",
)
def _aggressive_motion() -> SceneSpec:
    return _trajectory_spec(n_views=6, aggressive=True, seed=47)


@ADVERSARIAL_LIBRARY.add(
    "mixed_resolution",
    "one batch, three camera resolutions: per-view output shapes diverge",
)
def _mixed_resolution() -> SceneSpec:
    rng = np.random.default_rng(53)
    points = rng.uniform(-0.5, 0.5, size=(60, 3))
    points[:, 2] *= 0.4
    colors = rng.uniform(0.1, 0.9, size=(60, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.11, opacity=0.7)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(48, 36, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.05, 0.1, 0.05]),
        extra_view_cameras=(
            Camera.from_fov(24, 18, fov_x_degrees=70.0),
            Camera.from_fov(64, 44, fov_x_degrees=70.0),
        ),
    )


@ADVERSARIAL_LIBRARY.add(
    "camera_distortion",
    "anamorphic and decentered intrinsics: fx != fy, principal point off-centre",
)
def _camera_distortion() -> SceneSpec:
    # The rectified-crop proxy for lens distortion: real pipelines undistort
    # and crop, leaving anamorphic focal lengths (fx != fy) and a principal
    # point well away from the image centre.  The projection model stays
    # pinhole (the rasterizer's contract), but every x/y symmetry assumption
    # in projection, tiling and culling is broken per view.
    rng = np.random.default_rng(61)
    points = rng.uniform(-0.5, 0.5, size=(50, 3))
    points[:, 2] *= 0.4
    colors = rng.uniform(0.1, 0.9, size=(50, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.11, opacity=0.7)
    base = Camera.from_fov(40, 30, fov_x_degrees=70.0)
    return SceneSpec(
        cloud=cloud,
        camera=base,
        pose_cw=_look_at_origin(),
        background=np.array([0.06, 0.04, 0.1]),
        extra_view_cameras=(
            # Anamorphic: squeezed vertically, principal point pushed toward
            # the top-left quadrant (an off-centre rectified crop).
            Camera(40, 30, fx=base.fx, fy=0.6 * base.fy, cx=11.0, cy=7.5),
            # Stretched horizontally with the principal point near the
            # bottom-right corner: splats spill across the opposite tiles.
            Camera(40, 30, fx=1.45 * base.fx, fy=base.fy, cx=31.0, cy=24.0),
        ),
    )


@ADVERSARIAL_LIBRARY.add(
    "rolling_shutter",
    "per-row capture-time poses: one fast intra-frame motion sampled row by row",
)
def _rolling_shutter() -> SceneSpec:
    # Rolling-shutter proxy for a global-shutter rasterizer: a rolling
    # sensor captures each scanline at a slightly later time, so under fast
    # motion every row sees the scene from a different pose.  The rasterizer
    # renders rigid views only, so the scenario samples that intra-frame
    # trajectory instead — one prescribed view per row *band*, posed at the
    # band's capture time by interpolating a single fast twist on SE(3).
    # Batching the prescribed views is then exactly the per-row-band render
    # a rolling-shutter-aware pipeline would stitch, and the large pose
    # spread across an otherwise identical scene stresses the speculation
    # key (every view differs only by pose bytes) and the planner's tiling.
    rng = np.random.default_rng(67)
    points = rng.uniform(-0.5, 0.5, size=(70, 3))
    points[:, 2] *= 0.4
    colors = rng.uniform(0.1, 0.9, size=(70, 3))
    cloud = GaussianCloud.from_points(points, colors, scale=0.11, opacity=0.7)
    base = _look_at_origin()
    # One readout's worth of motion: a strong yaw + lateral translation, the
    # classic rolling-shutter "wobble" direction.  Band k is captured at
    # normalised time t_k and posed at exp(t_k * twist) @ base, the constant
    # velocity interpolation between shutter open (t=0) and close (t=1).
    readout_twist = np.array([0.02, 0.22, 0.05, 0.12, -0.03, 0.04])
    n_bands = 6
    band_times = np.linspace(0.0, 1.0, n_bands)
    band_poses = tuple(
        SE3.exp(float(t) * readout_twist) @ base for t in band_times[1:]
    )
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(40, 30, fov_x_degrees=70.0),
        pose_cw=base,  # band 0: shutter open, t=0
        background=np.array([0.07, 0.09, 0.12]),
        extra_view_poses=band_poses,
    )


@ADVERSARIAL_LIBRARY.add(
    "densify_churn",
    "under-covered scene whose mapper cells densify and prune mid-window",
)
def _densify_churn() -> SceneSpec:
    rng = np.random.default_rng(59)
    # Deliberately under-covered (few, small splats) so mapping's coverage
    # densification fires, plus low-opacity splats the transparency prune
    # removes: matrix mapper cells on this scene mutate the cloud mid-window.
    points = rng.uniform(-0.4, 0.4, size=(12, 3))
    points[:, 2] *= 0.3
    colors = rng.uniform(0.2, 0.8, size=(12, 3))
    opacity = np.full(12, 0.7)
    opacity[::3] = 0.05
    cloud = GaussianCloud.from_points(points, colors, scale=0.07, opacity=opacity)
    return SceneSpec(
        cloud=cloud,
        camera=Camera.from_fov(36, 28, fov_x_degrees=70.0),
        pose_cw=_look_at_origin(),
        background=np.array([0.1, 0.05, 0.05]),
    )


def matrix_library() -> ScenarioLibrary:
    """The scenario-matrix sweep set: every default + every adversarial scene.

    Returns a fresh merged library so callers may register additional
    scenarios without mutating either source library.
    """
    return ScenarioLibrary(list(DEFAULT_LIBRARY) + list(ADVERSARIAL_LIBRARY))
