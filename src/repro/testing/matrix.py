"""Cross-backend scenario matrix: every scenario × every engine configuration.

The :class:`ScenarioMatrix` declaratively crosses the merged scenario library
(:func:`repro.testing.scenarios.matrix_library` — behavioural corners plus the
adversarial growth set) against four execution axes:

* ``backend`` — ``tile`` (reference loop), ``flat`` (fragment-list fast
  path), ``sharded`` (multi-process flat), ``async`` (speculative
  double-buffered pipelining over the sharded pool — its mapper cells
  exercise the speculate/consume/discard machinery end-to-end);
* ``cache`` — geometry cache ``off`` / ``on`` (exact configuration: only the
  bit-identical reuse tiers);
* ``batch`` — ``single`` view / ``multi`` view
  (:meth:`repro.engine.RenderEngine.render_batch`);
* ``mapping`` — a direct ``render`` or a short
  :class:`repro.slam.mapping.StreamingMapper` window driven end-to-end
  through the cell's engine.

Each cell executes through a pinned :class:`repro.engine.RenderEngine` and is
compared against the memoized **flat cache-off reference** of the same
workload shape, recording a structured :class:`ScenarioCellResult` — status,
max abs diff, the tolerance it was judged against, wall-clock and the
per-view :class:`~repro.slam.records.WorkloadSnapshot` attribution.

Cells a backend *cannot* execute are skipped with a machine-readable reason
instead of silently running a substitute:

* ``capability:*`` — the backend's typed capabilities report ``cache=False``
  / ``batch=False`` (e.g. tile batch cells, where the engine would silently
  fall back to a flat batch and the cell would not exercise tile; sharded
  cache-on cells execute — worker-resident caches — so tile is the only
  backend skipping cache cells);
* ``backend-unavailable:*`` — :meth:`repro.engine.RenderEngine.availability`
  reported a config/host limitation (e.g. the sharded backend resolving to
  fewer than two worker processes, with the knob and core count named);
* ``fault-schedule:*`` — the cell is not meaningfully comparable under an
  active fault schedule (cache-on mapper cells: losing worker-resident
  entries to a fault legitimately diverges from an uninterrupted cached
  reference at Adam-amplified ulp scale).

Tolerances are inherited from :class:`repro.testing.differential
.DifferentialRunner` and documented per cell: flat and sharded cells must
match the reference **bitwise** (tolerance 0 — same work units, and the exact
cache configuration keeps only bit-identical reuse tiers); tile cells inherit
``forward_tol`` (reduction regrouping).  Cached mapper cells are pinned
bitwise against an *independent* cached flat run (determinism + engine-state
isolation) rather than the uncached run: Adam's gradient normalisation
amplifies the cached backward's last-ulp regrouping unboundedly on
near-degenerate scenes, so cache-vs-uncached equivalence is pinned at render
level instead.

A matrix constructed with a ``fault_schedule`` (the
:mod:`repro.engine.faults` grammar, also reachable via ``--faults`` or the
``REPRO_SHARD_FAULTS`` environment variable) runs every cell with that fault
plan active: sharded cells exercise the self-healing dispatch
(retry/redispatch/quarantine/escalation) and must still pass their bitwise
gates, and each cell's fault-event counts land in the attribution of the
markdown/JSON reports — this is the CI ``chaos`` job.

CLI::

    python -m repro.testing.matrix --filter backend=sharded
    python -m repro.testing.matrix --tier long --markdown matrix.md --json matrix.json
    python -m repro.testing.matrix --faults "random:1234:0.25" --filter backend=sharded,async
"""

from __future__ import annotations

import argparse
import json
import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace

import numpy as np

from repro.engine import EngineConfig, RenderEngine, fault_plan
from repro.testing.differential import (
    _EXACT_ENGINE_CACHE,
    DifferentialRunner,
    _max_abs_diff,
)
from repro.testing.scenarios import ScenarioLibrary, SceneSpec, matrix_library

# The declarative axes every scenario is crossed against, in display order.
AXES: dict[str, tuple[str, ...]] = {
    "backend": ("tile", "flat", "sharded", "async"),
    "cache": ("off", "on"),
    "batch": ("single", "multi"),
    "mapping": ("render", "mapper"),
}

TIERS = ("fast", "long")


@dataclass(frozen=True)
class MatrixOptions:
    """Per-scenario matrix parameters (views, tier, mapper behaviour)."""

    n_views: int = 3  # views of multi cells and frames of mapper cells
    tier: str = "fast"  # "fast" runs on every push; "long" on schedule/label
    churn: bool = False  # mapper cells densify + prune mid-window
    mapper_iterations: int = 2


# Scenario-specific overrides; everything else uses the defaults above.
SCENARIO_OPTIONS: dict[str, MatrixOptions] = {
    "long_trajectory": MatrixOptions(n_views=12, tier="long", mapper_iterations=3),
    "aggressive_motion": MatrixOptions(n_views=6),
    "mixed_resolution": MatrixOptions(n_views=3),
    # Distorted per-view intrinsics stay pinhole-projected, so every cell
    # keeps its backend's documented tolerance (bitwise flat/sharded,
    # forward_tol on tile) — tolerance_for needs no scenario carve-out.
    "camera_distortion": MatrixOptions(n_views=3),
    # All six row-band poses of the readout in one window: multi cells batch
    # the full intra-frame motion, mapper cells speculate across it.
    "rolling_shutter": MatrixOptions(n_views=6),
    "densify_churn": MatrixOptions(churn=True),
}


@dataclass(frozen=True)
class MatrixCell:
    """One (scenario, backend, cache, batch, mapping) point of the sweep."""

    scenario: str
    backend: str
    cache: str  # "off" | "on"
    batch: str  # "single" | "multi"
    mapping: str  # "render" | "mapper"
    tier: str = "fast"

    @property
    def cache_enabled(self) -> bool:
        return self.cache == "on"

    @property
    def id(self) -> str:
        """Stable identifier, also the pytest parametrization id."""
        return (
            f"{self.scenario}/{self.backend}/cache-{self.cache}/"
            f"{self.batch}/{self.mapping}"
        )

    def axis_value(self, key: str) -> str:
        if key == "scenario":
            return self.scenario
        if key == "tier":
            return self.tier
        if key in AXES:
            return getattr(self, key)
        raise KeyError(f"unknown matrix axis {key!r}; known: scenario, tier, {', '.join(AXES)}")


@dataclass
class ScenarioCellResult:
    """Structured outcome of one matrix cell."""

    cell: MatrixCell
    status: str  # "pass" | "fail" | "skip"
    skip_reason: str | None = None  # machine-readable, always set for skips
    max_abs_diff: float = 0.0  # worst diff vs the flat cache-off reference
    tolerance: float = 0.0  # the documented tolerance the diff was judged against
    wall_seconds: float = 0.0
    n_fragments: int = 0
    n_views: int = 1
    failures: list[str] = field(default_factory=list)
    notes: str = ""  # e.g. cache statuses observed, degradation remarks
    snapshots: list = field(default_factory=list)  # WorkloadSnapshot attribution

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    @property
    def explained(self) -> bool:
        """Skips must carry a machine-readable reason; pass/fail are explained."""
        return self.status != "skip" or bool(self.skip_reason)

    @property
    def plan_site(self) -> str:
        """Where Step 1-2 planning ran for this cell's renders.

        ``worker`` when any snapshot reports worker-resident planning (sharded
        batches), ``parent`` for executed serial/parent-planned cells, ``-``
        for skips and cells that emitted no snapshots.
        """
        sites = {snap.plan_site for snap in self.snapshots}
        if not sites:
            return "-"
        return "worker" if "worker" in sites else "parent"

    @property
    def fault_events(self) -> int:
        """Total fault events of this cell's batches (0 on a healthy run)."""
        return sum(snap.fault_events for snap in self.snapshots if snap.view_index == 0)

    def attribution(self) -> dict[str, object]:
        """Aggregate of the per-view workload snapshots (JSON-friendly)."""
        workers = {snap.shard_workers for snap in self.snapshots}
        statuses: dict[str, int] = {}
        for snap in self.snapshots:
            statuses[snap.cache_status] = statuses.get(snap.cache_status, 0) + 1
        return {
            "n_snapshots": len(self.snapshots),
            "shard_workers": sorted(workers) if workers else [1],
            "cache_statuses": statuses,
            "plan_site": self.plan_site,
            # Batch-level fault counts ride on every view of a batch, so sum
            # them from view_index == 0 snapshots; escalation is per view.
            "faults": {
                "events": self.fault_events,
                "retries": sum(
                    snap.fault_retries
                    for snap in self.snapshots
                    if snap.view_index == 0
                ),
                "quarantines": sum(
                    snap.fault_quarantines
                    for snap in self.snapshots
                    if snap.view_index == 0
                ),
                "escalated_views": sum(
                    1 for snap in self.snapshots if snap.fault_escalated
                ),
            },
        }

    def to_json(self) -> dict[str, object]:
        return {
            "id": self.cell.id,
            "scenario": self.cell.scenario,
            "backend": self.cell.backend,
            "cache": self.cell.cache,
            "batch": self.cell.batch,
            "mapping": self.cell.mapping,
            "tier": self.cell.tier,
            "status": self.status,
            "skip_reason": self.skip_reason,
            "max_abs_diff": self.max_abs_diff,
            "tolerance": self.tolerance,
            "wall_seconds": self.wall_seconds,
            "n_fragments": self.n_fragments,
            "n_views": self.n_views,
            "failures": self.failures,
            "notes": self.notes,
            "plan_site": self.plan_site,
            "attribution": self.attribution(),
        }


class ScenarioMatrix:
    """Execute scenario × configuration cells through pinned render engines.

    ``shard_workers`` pins the sharded backend's worker-process count (two by
    default, matching :class:`DifferentialRunner`) so sharded cells execute
    their multi-process path even on small hosts; passing ``0`` lets the
    backend's cpu-count default decide, in which case under-provisioned hosts
    skip sharded cells with the machine-readable ``workers:...`` reason.
    """

    def __init__(
        self,
        library: ScenarioLibrary | None = None,
        runner: DifferentialRunner | None = None,
        shard_workers: int | None = 2,
        backends: tuple[str, ...] | None = None,
        fault_schedule: str | None = None,
    ):
        self.library = library if library is not None else matrix_library()
        self.shard_workers = shard_workers
        self.runner = runner if runner is not None else DifferentialRunner(
            n_shard_workers=shard_workers if shard_workers else 2
        )
        self.backends = backends if backends is not None else AXES["backend"]
        # A repro.engine.faults schedule kept active while cells execute (the
        # chaos job): sharded cells must heal and still pass their gates.
        self.fault_schedule = fault_schedule
        self._cache_engines: dict[str, RenderEngine] = {}
        self._specs: dict[str, SceneSpec] = {}
        self._frames: dict[str, list] = {}
        self._render_refs: dict[tuple[str, str], list] = {}
        self._mapper_refs: dict[tuple[str, str], tuple] = {}

    # -- declarative enumeration --------------------------------------------
    def options_for(self, scenario: str) -> MatrixOptions:
        return SCENARIO_OPTIONS.get(scenario, MatrixOptions())

    def cells(
        self,
        tier: str = "fast",
        filters: dict[str, set[str]] | None = None,
    ) -> list[MatrixCell]:
        """Every cell of the sweep, optionally restricted by tier and filters.

        ``tier`` is ``"fast"``, ``"long"`` or ``"all"``; ``filters`` maps an
        axis name (``scenario``/``backend``/``cache``/``batch``/``mapping``/
        ``tier``) to the set of accepted values.
        """
        cells = []
        for name in self.library.names():
            scenario_tier = self.options_for(name).tier
            if tier != "all" and scenario_tier != tier:
                continue
            for backend in self.backends:
                for cache in AXES["cache"]:
                    for batch in AXES["batch"]:
                        for mapping in AXES["mapping"]:
                            cell = MatrixCell(
                                scenario=name,
                                backend=backend,
                                cache=cache,
                                batch=batch,
                                mapping=mapping,
                                tier=scenario_tier,
                            )
                            if filters and not all(
                                cell.axis_value(key) in accepted
                                for key, accepted in filters.items()
                            ):
                                continue
                            cells.append(cell)
        return cells

    # -- engines ------------------------------------------------------------
    def engine_for(self, cell: MatrixCell) -> RenderEngine:
        """The pinned engine executing ``cell`` (shared across same-config cells).

        Cache-off cells share the :class:`DifferentialRunner` engines (the
        very engines the per-scenario differential gates run through);
        cache-on cells get a per-backend engine whose geometry cache is in
        its exact configuration, so cached cells stay bitwise-comparable.
        """
        if not cell.cache_enabled:
            return self.runner.engine_for(cell.backend)
        if cell.backend not in self._cache_engines:
            extra = (
                {"shard_workers": self.shard_workers}
                if cell.backend
                in (self.runner.sharded_backend, self.runner.async_backend)
                and self.shard_workers
                else {}
            )
            self._cache_engines[cell.backend] = RenderEngine(
                EngineConfig(
                    backend=cell.backend,
                    geom_cache=True,
                    **_EXACT_ENGINE_CACHE,
                    **extra,
                )
            )
        return self._cache_engines[cell.backend]

    def _reference_engine(self) -> RenderEngine:
        return self.runner.engine_for(self.runner.candidate_backend)

    # -- capability-aware planning ------------------------------------------
    def plan_cell(self, cell: MatrixCell) -> str | None:
        """``None`` when the cell executes; else the machine-readable skip reason."""
        engine = self.engine_for(cell)
        unavailable = engine.availability()
        if unavailable is not None:
            return f"backend-unavailable:{unavailable}"
        capabilities = engine.capabilities()
        if cell.cache_enabled and not capabilities.cache:
            return (
                f"capability:no-cache-support (backend {cell.backend!r} reports "
                "cache=False)"
            )
        if (cell.batch == "multi" or cell.mapping == "mapper") and not (
            capabilities.batch
        ):
            return (
                f"capability:no-batch-support (backend {cell.backend!r} reports "
                "batch=False; the engine would silently substitute a flat "
                "batch, so the cell would not exercise this backend)"
            )
        if (
            self.fault_schedule
            and cell.cache_enabled
            and cell.mapping == "mapper"
            and cell.backend
            in (self.runner.sharded_backend, self.runner.async_backend)
        ):
            # A fault irrecoverably loses worker-resident cache entries, so
            # later iterations legitimately rebuild tiers the healthy cached
            # reference serves from its retained fragment schedule; the
            # cached backward's last-ulp regrouping then diverges, and Adam
            # amplifies it unboundedly on near-degenerate scenes (the same
            # reason cache-on mapper cells are pinned against an independent
            # *cached* run rather than an uncached one).  Faulted cached
            # coverage stays at render granularity, where every tier is
            # bitwise.
            return (
                "fault-schedule:cached-mapper-not-comparable (a fault drops "
                "worker-resident cache entries, so the run legitimately "
                "diverges from an uninterrupted cached mapper at Adam-"
                "amplified ulp scale; faulted cache-on coverage is pinned "
                "at render granularity instead)"
            )
        return None

    # -- tolerances ----------------------------------------------------------
    def tolerance_for(self, cell: MatrixCell) -> tuple[float, str]:
        """The documented tolerance of ``cell`` and why it applies."""
        if cell.backend == self.runner.reference_backend:
            return (
                self.runner.forward_tol,
                "tile reduction regrouping (DifferentialRunner.forward_tol)",
            )
        if cell.mapping == "mapper" and cell.cache_enabled:
            return (
                0.0,
                "bitwise (vs an independent cached flat mapper run: pins cached-mapper "
                "determinism and engine-state isolation; cache-vs-uncached equivalence "
                "is pinned at render level, where Adam cannot amplify rounding)",
            )
        return 0.0, "bitwise (same work units as the flat reference)"

    # -- memoized scenario state --------------------------------------------
    def spec(self, scenario: str) -> SceneSpec:
        if scenario not in self._specs:
            self._specs[scenario] = self.library.get(scenario).build()
        return self._specs[scenario]

    def frames(self, scenario: str) -> list:
        """Synthetic keyframes of ``scenario``: reference renders as observations.

        Each of the scenario's prescribed views is rendered once through the
        flat cache-off reference engine; the resulting RGB-D images become
        ground-truth observations for the mapper cells, so every cell's
        mapper optimises against identical, deterministic targets.
        """
        if scenario not in self._frames:
            from repro.slam.frame import Frame

            spec = self.spec(scenario)
            n_frames = self.options_for(scenario).n_views
            engine = self._reference_engine()
            frames = []
            for index, (pose, camera) in enumerate(
                zip(spec.view_poses(n_frames), spec.view_cameras(n_frames))
            ):
                observation = engine.render(
                    spec.cloud,
                    camera,
                    pose,
                    background=spec.background,
                    tile_size=spec.tile_size,
                    subtile_size=spec.subtile_size,
                )
                frames.append(
                    Frame(
                        index=index,
                        image=observation.image,
                        depth=observation.depth,
                        camera=camera,
                        estimated_pose_cw=pose,
                        is_keyframe=True,
                    )
                )
            self._frames[scenario] = frames
        return self._frames[scenario]

    def _render_reference(self, scenario: str, batch: str) -> list:
        """Flat cache-off reference views of the cell's exact workload shape.

        ``single`` cells compare against one unmanaged flat render of the
        base pose; ``multi`` cells against an unmanaged flat batch over the
        scenario's prescribed views (``managed=False`` keeps the memoized
        results off the engine's recycled arena).
        """
        key = (scenario, batch)
        if key not in self._render_refs:
            spec = self.spec(scenario)
            engine = self._reference_engine()
            if batch == "single":
                views = [
                    engine.render(
                        spec.cloud,
                        spec.camera,
                        spec.pose_cw,
                        background=spec.background,
                        tile_size=spec.tile_size,
                        subtile_size=spec.subtile_size,
                    )
                ]
            else:
                n_views = self.options_for(scenario).n_views
                reference = engine.render_batch(
                    spec.cloud,
                    spec.view_cameras(n_views),
                    spec.view_poses(n_views),
                    backgrounds=[spec.background] * n_views,
                    tile_size=spec.tile_size,
                    subtile_size=spec.subtile_size,
                    managed=False,
                )
                views = list(reference.views)
            self._render_refs[key] = views
        return self._render_refs[key]

    def _mapper_config(self, cell: MatrixCell, options: MatrixOptions):
        from repro.slam.mapping import MappingConfig

        spec = self.spec(cell.scenario)
        n_frames = len(self.frames(cell.scenario))
        churn = options.churn
        return MappingConfig(
            n_iterations=options.mapper_iterations,
            batch_views=1 if cell.batch == "single" else min(3, n_frames),
            keyframe_window=3,
            tile_size=spec.tile_size,
            subtile_size=spec.subtile_size,
            record_workloads=True,
            densify_stride=4,
            # Non-churn cells freeze the cloud's structure so every backend
            # optimises the same rows; churn cells keep thresholds that fire.
            densify_alpha_threshold=0.5 if churn else 0.0,
            densify_depth_error=0.15 if churn else 1e9,
            opacity_prune_threshold=0.1 if churn else 0.0,
        )

    def _run_mapper(self, cell: MatrixCell, engine: RenderEngine):
        from repro.slam.mapping import StreamingMapper

        spec = self.spec(cell.scenario)
        config = self._mapper_config(cell, self.options_for(cell.scenario))
        cloud = spec.cloud.copy()
        mapper = StreamingMapper(config, engine=engine)
        result = mapper.map(cloud, self.frames(cell.scenario))
        return cloud, result

    def _mapper_reference(self, cell: MatrixCell) -> tuple:
        """The flat mapper run this cell's mapper outcome must match bitwise.

        Cache-off cells share one memoized flat cache-off run.  Cache-on
        cells compare against an *independent* flat run with the same exact
        cache configuration (a fresh engine, so cross-cell engine state
        cannot leak into the reference): comparing a cached mapper against an
        uncached one is not meaningful at mapper granularity, because Adam's
        gradient normalisation amplifies the cached backward's last-ulp
        reduction regrouping unboundedly on near-degenerate scenes
        (collapsed covariances drive the second-moment estimate toward zero).
        """
        key = (cell.scenario, cell.batch, cell.cache)
        if key not in self._mapper_refs:
            reference_cell = replace(cell, backend=self.runner.candidate_backend)
            if cell.cache_enabled:
                engine = RenderEngine(
                    EngineConfig(
                        backend=self.runner.candidate_backend,
                        geom_cache=True,
                        **_EXACT_ENGINE_CACHE,
                    )
                )
            else:
                engine = self._reference_engine()
            self._mapper_refs[key] = self._run_mapper(reference_cell, engine)
        return self._mapper_refs[key]

    # -- execution -----------------------------------------------------------
    def run_cell(self, cell: MatrixCell) -> ScenarioCellResult:
        """Execute one cell (or skip it with its machine-readable reason)."""
        skip_reason = self.plan_cell(cell)
        tolerance, tolerance_why = self.tolerance_for(cell)
        if skip_reason is not None:
            return ScenarioCellResult(
                cell=cell, status="skip", skip_reason=skip_reason, tolerance=tolerance
            )
        result = ScenarioCellResult(
            cell=cell, status="pass", tolerance=tolerance, notes=f"tolerance: {tolerance_why}"
        )
        start = time.perf_counter()
        try:
            with fault_plan(self.fault_schedule) if self.fault_schedule else nullcontext():
                if cell.mapping == "render":
                    self._execute_render_cell(cell, result)
                else:
                    self._execute_mapper_cell(cell, result)
        except Exception as error:  # a crashing cell fails; the sweep continues
            result.failures.append(f"crashed: {error!r}")
        result.wall_seconds = time.perf_counter() - start
        result.status = "pass" if not result.failures else "fail"
        return result

    def _execute_render_cell(self, cell: MatrixCell, result: ScenarioCellResult) -> None:
        spec = self.spec(cell.scenario)
        engine = self.engine_for(cell)
        reference_views = self._render_reference(cell.scenario, cell.batch)
        managed = cell.cache_enabled
        if cell.batch == "single":
            renders = [
                engine.render(
                    spec.cloud,
                    spec.camera,
                    spec.pose_cw,
                    background=spec.background,
                    tile_size=spec.tile_size,
                    subtile_size=spec.subtile_size,
                    managed=managed,
                )
            ]
            sharding = None
            claimed = renders[0] if managed else None
        else:
            n_views = self.options_for(cell.scenario).n_views
            batch = engine.render_batch(
                spec.cloud,
                spec.view_cameras(n_views),
                spec.view_poses(n_views),
                backgrounds=[spec.background] * n_views,
                tile_size=spec.tile_size,
                subtile_size=spec.subtile_size,
                managed=managed,
            )
            renders = list(batch.views)
            sharding = batch.sharding
            claimed = batch if managed else None
        try:
            result.n_views = len(renders)
            result.n_fragments = sum(view.n_fragments for view in renders)
            statuses = sorted({view.cache_status for view in renders})
            result.notes += f"; cache_status={','.join(statuses)}"
            for index, (view, reference) in enumerate(zip(renders, reference_views)):
                label = f"view {index}"
                for name in ("image", "depth", "alpha"):
                    diff = _max_abs_diff(getattr(view, name), getattr(reference, name))
                    result.max_abs_diff = max(result.max_abs_diff, diff)
                    if not diff <= result.tolerance:
                        result.failures.append(
                            f"{label}: {name} diff {diff:.3e} exceeds tolerance "
                            f"{result.tolerance:.1e} vs the flat reference"
                        )
                if not np.array_equal(
                    view.fragments_per_pixel, reference.fragments_per_pixel
                ):
                    result.failures.append(
                        f"{label}: per-pixel fragment counts differ from the flat reference"
                    )
                result.snapshots.append(
                    engine.snapshot(
                        view,
                        None,
                        stage="matrix",
                        frame_index=0,
                        iteration=0,
                        is_keyframe=True,
                        loss=0.0,
                        n_gaussians_total=spec.cloud.n_total,
                        n_gaussians_active=spec.cloud.n_active,
                        batch_size=len(renders),
                        view_index=index,
                        shard_workers=1 if sharding is None else sharding.n_workers,
                        shard_worker_id=(
                            0 if sharding is None else sharding.worker_ids[index]
                        ),
                        shard_seconds=(
                            0.0 if sharding is None else sharding.view_shard_seconds[index]
                        ),
                        shard_stitch_seconds=(
                            0.0
                            if sharding is None
                            else sharding.stitch_seconds / max(len(renders), 1)
                        ),
                        shard_plan_seconds=(
                            sharding.view_plan_seconds[index]
                            if sharding is not None and sharding.view_plan_seconds
                            else 0.0
                        ),
                        plan_site="parent" if sharding is None else sharding.plan_site,
                        fault_events=(
                            0 if sharding is None else len(sharding.fault_events)
                        ),
                        fault_retries=(
                            0 if sharding is None else sharding.fault_retries
                        ),
                        fault_quarantines=(
                            0
                            if sharding is None
                            else len(sharding.fault_quarantined_workers)
                        ),
                        fault_escalated=(
                            sharding is not None
                            and index in sharding.escalated_views
                        ),
                    )
                )
        finally:
            if claimed is not None:
                engine.release(claimed)

    def _execute_mapper_cell(self, cell: MatrixCell, result: ScenarioCellResult) -> None:
        cloud, mapped = self._run_mapper(cell, self.engine_for(cell))
        reference_cloud, reference_mapped = self._mapper_reference(cell)
        result.n_views = len(self.frames(cell.scenario))
        result.snapshots = list(mapped.snapshots)
        result.n_fragments = sum(
            int(snap.fragments_per_pixel.sum()) for snap in mapped.snapshots
        )
        if len(cloud) != len(reference_cloud):
            result.failures.append(
                f"final cloud size {len(cloud)} != reference {len(reference_cloud)} "
                "(densify/prune decisions diverged)"
            )
            result.max_abs_diff = float("inf")
            return
        for name in ("positions", "log_scales", "opacity_logits", "colors"):
            diff = _max_abs_diff(getattr(cloud, name), getattr(reference_cloud, name))
            result.max_abs_diff = max(result.max_abs_diff, diff)
            if not diff <= result.tolerance:
                result.failures.append(
                    f"final cloud {name} diff {diff:.3e} exceeds tolerance "
                    f"{result.tolerance:.1e} vs the flat-reference mapper run"
                )
        loss_diff = _max_abs_diff(
            np.asarray(mapped.losses), np.asarray(reference_mapped.losses)
        )
        result.max_abs_diff = max(result.max_abs_diff, loss_diff)
        if not loss_diff <= max(result.tolerance, 1e-12):
            result.failures.append(
                f"per-iteration losses diff {loss_diff:.3e} exceeds tolerance "
                f"{result.tolerance:.1e} vs the flat-reference mapper run"
            )
        if (mapped.n_added, mapped.n_pruned) != (
            reference_mapped.n_added,
            reference_mapped.n_pruned,
        ):
            result.failures.append(
                f"densify/prune counts ({mapped.n_added}, {mapped.n_pruned}) != "
                f"reference ({reference_mapped.n_added}, {reference_mapped.n_pruned})"
            )

    def run(
        self,
        cells: list[MatrixCell] | None = None,
        tier: str = "fast",
        filters: dict[str, set[str]] | None = None,
        progress=None,
    ) -> list[ScenarioCellResult]:
        """Run ``cells`` (or the tier/filter selection) and return all results."""
        if cells is None:
            cells = self.cells(tier=tier, filters=filters)
        results = []
        for cell in cells:
            outcome = self.run_cell(cell)
            if progress is not None:
                progress(outcome)
            results.append(outcome)
        return results


# -- reporting ----------------------------------------------------------------
def parse_filters(pairs: list[str]) -> dict[str, set[str]]:
    """Parse repeated ``key=value[,value...]`` CLI filters into axis sets."""
    known = ("scenario", "tier", *AXES)
    filters: dict[str, set[str]] = {}
    for pair in pairs:
        key, separator, values = pair.partition("=")
        if not separator or not values:
            raise ValueError(f"filter {pair!r} is not of the form key=value")
        if key not in known:
            raise ValueError(f"unknown filter axis {key!r}; known: {', '.join(known)}")
        filters.setdefault(key, set()).update(values.split(","))
    return filters


def summarize(results: list[ScenarioCellResult]) -> dict[str, int]:
    counts = {"pass": 0, "fail": 0, "skip": 0, "unexplained_skips": 0}
    for result in results:
        counts[result.status] += 1
        if not result.explained:
            counts["unexplained_skips"] += 1
    return counts


def summary_table(results: list[ScenarioCellResult]) -> str:
    """Per-cell markdown table (the CI job-summary artifact)."""
    counts = summarize(results)
    lines = [
        f"**Scenario matrix**: {len(results)} cells — "
        f"{counts['pass']} passed, {counts['fail']} failed, "
        f"{counts['skip']} skipped (all with machine-readable reasons)"
        if not counts["unexplained_skips"]
        else f"**Scenario matrix**: {len(results)} cells — "
        f"{counts['pass']} passed, {counts['fail']} failed, "
        f"{counts['skip']} skipped — {counts['unexplained_skips']} UNEXPLAINED",
        "",
        "| scenario | backend | cache | batch | mapping | plan_site | status "
        "| faults | max diff | tolerance | wall (ms) | fragments | detail |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for result in results:
        cell = result.cell
        if result.status == "skip":
            detail = result.skip_reason or "UNEXPLAINED"
        elif result.failures:
            detail = "; ".join(result.failures)
        else:
            detail = result.notes
        detail = detail.replace("|", "\\|")
        lines.append(
            f"| {cell.scenario} | {cell.backend} | {cell.cache} | {cell.batch} "
            f"| {cell.mapping} | {result.plan_site} | {result.status} "
            f"| {result.fault_events} "
            f"| {result.max_abs_diff:.2e} | {result.tolerance:.1e} "
            f"| {result.wall_seconds * 1e3:.1f} | {result.n_fragments} | {detail} |"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.matrix",
        description="Run the cross-backend scenario matrix (or any filtered slice).",
    )
    parser.add_argument(
        "--filter",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="restrict an axis, e.g. backend=sharded or scenario=dense_random,one_pixel; "
        "repeatable (axes AND together, comma-separated values OR together)",
    )
    parser.add_argument(
        "--tier",
        choices=("fast", "long", "all"),
        default="fast",
        help="scenario tier to run (default: fast; 'long' adds trajectory-scale scenes)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes pinned for the sharded backend (default: 2; "
        "0 defers to the backend's cpu-count default)",
    )
    parser.add_argument(
        "--faults",
        metavar="SCHEDULE",
        default=None,
        help="run every cell under this fault schedule (repro.engine.faults "
        "grammar, e.g. 'random:1234:0.25'); sharded cells must self-heal and "
        "still pass their bitwise gates (the CI chaos job)",
    )
    parser.add_argument("--list", action="store_true", help="list selected cell ids and exit")
    parser.add_argument(
        "--markdown", metavar="PATH", help="write the per-cell markdown summary table here"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write per-cell structured results (JSON) here"
    )
    args = parser.parse_args(argv)

    try:
        filters = parse_filters(args.filter)
    except ValueError as error:
        parser.error(str(error))

    matrix = ScenarioMatrix(
        shard_workers=args.shard_workers or None, fault_schedule=args.faults
    )
    cells = matrix.cells(tier=args.tier, filters=filters)
    if args.list:
        for cell in cells:
            print(cell.id)
        print(f"{len(cells)} cells")
        return 0

    def progress(result: ScenarioCellResult) -> None:
        marker = {"pass": "ok", "fail": "FAIL", "skip": "skip"}[result.status]
        detail = (
            result.skip_reason
            if result.status == "skip"
            else f"diff={result.max_abs_diff:.2e} tol={result.tolerance:.1e} "
            f"wall={result.wall_seconds * 1e3:.1f}ms"
        )
        print(f"[{marker:>4}] {result.cell.id}: {detail}")

    results = matrix.run(cells, progress=progress)
    counts = summarize(results)
    print(
        f"\n{len(results)} cells: {counts['pass']} passed, {counts['fail']} failed, "
        f"{counts['skip']} skipped ({counts['unexplained_skips']} unexplained)"
    )
    for result in results:
        if result.status == "fail":
            print(f"  FAIL {result.cell.id}: {'; '.join(result.failures)}")
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(summary_table(results) + "\n")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump([result.to_json() for result in results], handle, indent=2)
    return 1 if counts["fail"] or counts["unexplained_skips"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
